"""Unified benchmark harness: every headline workload, one ``BENCH_all.json``.

One seeded run measures the repository's five headline performance claims
plus the cost-model routing gate, and emits a single machine-readable
artifact (committed at the repository root, regenerated per PR):

* **api** — batched ``Device.run()`` vs a per-circuit ``sample()`` loop
  (the ``BENCH_api.json`` workload);
* **sweep** — compile-once parameter sweep vs per-point recompilation;
* **stabilizer** — 56-qubit depth-120 Clifford sampling latency;
* **optimizer** — circuit-rewrite pipeline compile/sweep reductions
  (the ``BENCH_optimizer.json`` workload);
* **robustness** — fault-free overhead of retries + checkpointing
  (the ``BENCH_robustness.json`` workload);
* **cost_routing** — calibrates the backend cost model from a seeded
  sweep, persists the versioned artifact consumed by
  ``select_backend(mode="cost")``, and scores its routing decisions
  against measured-fastest on the 50-circuit holdout suite.

Every workload is seeded; wall-clock numbers vary by machine but the
schema and the seeded circuits do not.  ``tools/check_bench_trajectory.py``
gates a fresh run against the committed artifact's floors.

Usage::

    PYTHONPATH=src python benchmarks/bench_all.py
    PYTHONPATH=src python benchmarks/bench_all.py --only api,stabilizer

``--only`` exists for local iteration; a partial artifact fails the
trajectory check, so it cannot be committed unnoticed.
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.bench import emit_bench  # noqa: E402

SECTIONS = ("api", "sweep", "stabilizer", "optimizer", "robustness", "cost_routing")

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_all.json"
DEFAULT_MODEL_ARTIFACT = REPO_ROOT / "src" / "repro" / "api" / "costmodel_default.json"


def _qaoa_workload(num_points, seed=13):
    """The shared-topology QAOA sweep behind the api/robustness workloads."""
    from repro.variational import QAOACircuit, random_regular_maxcut

    ansatz = QAOACircuit(random_regular_maxcut(6, seed=9), iterations=1)
    rng = np.random.default_rng(seed)
    grid = rng.uniform(0.15, 1.4, size=(num_points, ansatz.num_parameters))
    return ansatz, [ansatz.resolver(list(row)) for row in grid]


def bench_api():
    """Batched ``Device.run()`` vs the legacy per-circuit ``sample()`` loop."""
    from repro.api.device import Device
    from repro.knowledge.cache import CompiledCircuitCache
    from repro.simulator.kc_simulator import KnowledgeCompilationSimulator

    num_points, repetitions = 100, 64
    ansatz, points = _qaoa_workload(num_points)

    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    start = time.perf_counter()
    for index, resolver in enumerate(points):
        simulator.sample(ansatz.circuit, repetitions, resolver=resolver, seed=index)
    loop_seconds = time.perf_counter() - start

    dev = Device(
        backend="knowledge_compilation",
        instances={
            "knowledge_compilation": KnowledgeCompilationSimulator(
                seed=1, cache=CompiledCircuitCache()
            )
        },
    )
    start = time.perf_counter()
    rows = dev.run(ansatz.circuit, params=points, repetitions=repetitions, seed=0).result()
    batched_seconds = time.perf_counter() - start
    assert len(rows) == num_points

    speedup = loop_seconds / max(batched_seconds, 1e-9)
    return {
        "workload": f"qaoa maxcut n=6, {num_points}-point batch, {repetitions} shots",
        "per_circuit_loop_seconds": round(loop_seconds, 6),
        "batched_run_seconds": round(batched_seconds, 6),
        "speedup": round(speedup, 3),
    }


def bench_sweep():
    """Compile-once parameter sweep vs per-point recompilation."""
    from repro.knowledge.cache import CompiledCircuitCache
    from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
    from repro.simulator.sweep import ParameterSweep
    from repro.variational import QAOACircuit, random_regular_maxcut

    num_points = 24
    ansatz = QAOACircuit(random_regular_maxcut(6, seed=9), iterations=1)
    rng = np.random.default_rng(7)
    grid = rng.uniform(0.15, 1.4, size=(num_points, ansatz.num_parameters))
    points = [ansatz.resolver(list(row)) for row in grid]

    start = time.perf_counter()
    fresh = []
    for resolver in points:
        simulator = KnowledgeCompilationSimulator(seed=1, cache=None)
        resolved = ansatz.circuit.resolve_parameters(resolver)
        fresh.append(simulator.compile_circuit(resolved).probabilities())
    recompile_seconds = time.perf_counter() - start

    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    sweep = ParameterSweep(ansatz.circuit, simulator)
    start = time.perf_counter()
    cached = sweep.run(points, observables=["probabilities"]).probabilities()
    sweep_seconds = time.perf_counter() - start
    assert float(np.max(np.abs(cached - np.stack(fresh)))) < 1e-10

    speedup = recompile_seconds / max(sweep_seconds, 1e-9)
    return {
        "workload": f"qaoa maxcut n=6, {num_points}-point sweep",
        "per_point_recompile_seconds": round(recompile_seconds, 6),
        "compile_once_sweep_seconds": round(sweep_seconds, 6),
        "speedup": round(speedup, 3),
    }


def bench_stabilizer():
    """56-qubit depth-120 Clifford sampling latency on the tableau backend."""
    from repro.algorithms import random_clifford_circuit
    from repro.stabilizer import StabilizerSimulator

    num_qubits, depth, num_samples = 56, 120, 1000
    circuit = random_clifford_circuit(num_qubits, depth, seed=23).circuit
    simulator = StabilizerSimulator(seed=7)
    start = time.perf_counter()
    samples = simulator.sample(circuit, num_samples, seed=7)
    elapsed = time.perf_counter() - start
    assert len(samples) == num_samples
    return {
        "workload": f"random clifford n={num_qubits} depth={depth}, {num_samples} shots",
        "sampling_seconds": round(elapsed, 6),
        "budget_seconds": 1.0,
    }


def bench_optimizer():
    """Circuit-rewrite pipeline: fusion sweep speedup + light-cone reduction."""
    from repro.circuits import Circuit, measure
    from repro.circuits.gates import _RotationGate
    from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
    from repro.simulator.sweep import ParameterSweep
    from repro.variational import QAOACircuit, random_regular_maxcut

    num_points = 40
    ansatz = QAOACircuit(random_regular_maxcut(8, seed=5), iterations=1)

    # Light-cone pruning on a single-edge observable (structural metrics).
    resolved = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    edge = ansatz.problem.edges[0]
    measured = Circuit(resolved.all_operations())
    measured.append(measure(ansatz.qubits[edge[0]], ansatz.qubits[edge[1]], key="edge"))
    compiler = KnowledgeCompilationSimulator(cache=None)
    baseline = compiler.compile_circuit(measured).compilation_metrics()
    pruned = compiler.compile_circuit(measured, optimize="auto").compilation_metrics()

    # Rotation fusion on the half-angle-split ansatz, timed over a sweep.
    split = Circuit()
    for operation in ansatz.circuit.all_operations():
        gate = operation.gate
        if isinstance(gate, _RotationGate):
            half = type(gate)(0.5 * gate.angle)
            split.append([half(*operation.qubits), half(*operation.qubits)])
        else:
            split.append(operation)
    rng = np.random.default_rng(7)
    grid = rng.uniform(0.1, 1.3, size=(num_points, ansatz.num_parameters))
    points = [ansatz.resolver(list(row)) for row in grid]

    start = time.perf_counter()
    plain = ParameterSweep(split, KnowledgeCompilationSimulator(cache=None))
    plain.run(points)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    optimized = ParameterSweep(
        split, KnowledgeCompilationSimulator(cache=None), optimize="auto"
    )
    optimized.run(points)
    optimized_seconds = time.perf_counter() - start

    speedup = plain_seconds / max(optimized_seconds, 1e-9)
    return {
        "workload": (
            f"qaoa maxcut n=8, rotations split into half-angle pairs, "
            f"{num_points}-point sweep"
        ),
        "light_cone_ac_nodes_reduction": round(
            1 - pruned["ac_nodes"] / baseline["ac_nodes"], 3
        ),
        "fusion_sweep_seconds": {
            "off": round(plain_seconds, 4),
            "auto": round(optimized_seconds, 4),
        },
        "speedup": round(speedup, 3),
    }


def bench_robustness():
    """Fault-free overhead of retries + checkpointing vs the plain fast path."""
    from repro.api.device import Device
    from repro.api.faults import RetryPolicy
    from repro.knowledge.cache import CompiledCircuitCache
    from repro.simulator.kc_simulator import KnowledgeCompilationSimulator

    num_points, repetitions, runs = 100, 64, 5
    ansatz, points = _qaoa_workload(num_points)

    def make_device():
        return Device(
            backend="knowledge_compilation",
            instances={
                "knowledge_compilation": KnowledgeCompilationSimulator(
                    seed=1, cache=CompiledCircuitCache()
                )
            },
        )

    plain_dev, guarded_dev = make_device(), make_device()
    for dev in (plain_dev, guarded_dev):
        dev.run(ansatz.circuit, params=points[:1], repetitions=4, seed=0).result()

    with tempfile.TemporaryDirectory(prefix="bench-robustness-") as tmp:
        checkpoints = iter(
            [Path(tmp) / f"journal-{run}" for run in range(runs)]
        )
        best_plain = best_guarded = None
        plain_counts = guarded_counts = None
        for _ in range(runs):
            start = time.perf_counter()
            plain_counts = plain_dev.run(
                ansatz.circuit, params=points, repetitions=repetitions, seed=0
            ).result().counts()
            elapsed = time.perf_counter() - start
            best_plain = elapsed if best_plain is None else min(best_plain, elapsed)

            checkpoint = next(checkpoints)
            checkpoint.mkdir()
            start = time.perf_counter()
            guarded_counts = guarded_dev.run(
                ansatz.circuit,
                params=points,
                repetitions=repetitions,
                seed=0,
                retry=RetryPolicy(),
                checkpoint=str(checkpoint),
            ).result().counts()
            elapsed = time.perf_counter() - start
            best_guarded = (
                elapsed if best_guarded is None else min(best_guarded, elapsed)
            )
        assert plain_counts == guarded_counts

    overhead = best_guarded / max(best_plain, 1e-9) - 1.0
    return {
        "workload": f"qaoa maxcut n=6, {num_points}-point batch, best of {runs}",
        "plain_seconds": round(best_plain, 6),
        "fault_tolerant_seconds": round(best_guarded, 6),
        "overhead_fraction": round(overhead, 4),
    }


def bench_cost_routing(model_artifact):
    """Calibrate the cost model, persist it, and score holdout routing."""
    from repro.api import costmodel
    from repro.api.registry import create_backend
    from repro.api.routing import capable_backends

    start = time.perf_counter()
    cases = costmodel.calibration_suite(seed=0)
    samples = costmodel.collect_calibration_samples(cases, seed=0)
    model = costmodel.fit_cost_model(
        samples, meta={"calibration_seed": 0, "holdout_seed": 101}
    )
    model.save(model_artifact)
    calibration_seconds = time.perf_counter() - start

    holdout = costmodel.holdout_suite(seed=101)
    instances = {}
    hits, misses = 0, []
    start = time.perf_counter()
    for case in holdout:
        candidates = [
            name
            for name in capable_backends(
                case.circuit, sampling=True, repetitions=case.repetitions
            )
            if case.backends is None or name in case.backends
        ]
        measured = {}
        for name in candidates:
            simulator = instances.setdefault(name, create_backend(name, seed=0))
            tick = time.perf_counter()
            simulator.sample(case.circuit, case.repetitions, seed=0)
            measured[name] = time.perf_counter() - tick
        features = costmodel.extract_features(
            case.circuit, repetitions=case.repetitions
        )
        picked = model.rank(features, candidates)[0][0]
        fastest = min(measured, key=lambda name: (measured[name], name))
        if picked == fastest:
            hits += 1
        else:
            misses.append(case.label)
    holdout_seconds = time.perf_counter() - start

    artifact = Path(model_artifact).resolve()
    try:
        artifact_label = str(artifact.relative_to(REPO_ROOT))
    except ValueError:
        artifact_label = str(artifact)
    spec = model.to_dict()
    return {
        "workload": (
            f"{len(cases)}-case calibration sweep -> {len(holdout)}-case "
            f"measured-fastest holdout"
        ),
        "calibration_samples": len(samples),
        "calibration_seconds": round(calibration_seconds, 3),
        "rmse_log": {
            name: spec["backends"][name]["rmse_log"] for name in model.backends()
        },
        "holdout_cases": len(holdout),
        "holdout_hits": hits,
        "holdout_misses": misses,
        "holdout_seconds": round(holdout_seconds, 3),
        "accuracy": round(hits / len(holdout), 3),
        "model_artifact": artifact_label,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="BENCH_all.json path"
    )
    parser.add_argument(
        "--model-artifact",
        type=Path,
        default=DEFAULT_MODEL_ARTIFACT,
        help="where to persist the calibrated cost model",
    )
    parser.add_argument(
        "--only",
        default=None,
        help=f"comma-separated subset of sections to run ({', '.join(SECTIONS)})",
    )
    options = parser.parse_args(argv)
    selected = SECTIONS if options.only is None else tuple(options.only.split(","))
    unknown = set(selected) - set(SECTIONS)
    if unknown:
        parser.error(f"unknown sections: {sorted(unknown)}")

    runners = {
        "api": bench_api,
        "sweep": bench_sweep,
        "stabilizer": bench_stabilizer,
        "optimizer": bench_optimizer,
        "robustness": bench_robustness,
        "cost_routing": lambda: bench_cost_routing(options.model_artifact),
    }
    payload = {"benchmark": "bench_all", "schema_version": 1}
    metrics = {}
    for section in SECTIONS:
        if section not in selected:
            continue
        print(f"[bench_all] {section} ...", flush=True)
        start = time.perf_counter()
        payload[section] = runners[section]()
        print(
            f"[bench_all] {section} done in {time.perf_counter() - start:.1f}s",
            flush=True,
        )
    if "api" in payload:
        metrics["api_speedup"] = payload["api"]["speedup"]
    if "sweep" in payload:
        metrics["sweep_speedup"] = payload["sweep"]["speedup"]
    if "stabilizer" in payload:
        metrics["stabilizer_seconds"] = payload["stabilizer"]["sampling_seconds"]
    if "optimizer" in payload:
        metrics["optimizer_speedup"] = payload["optimizer"]["speedup"]
    if "robustness" in payload:
        metrics["robustness_overhead"] = payload["robustness"]["overhead_fraction"]
    if "cost_routing" in payload:
        metrics["cost_routing_accuracy"] = payload["cost_routing"]["accuracy"]
    payload["metrics"] = metrics

    emit_bench(options.output, payload)
    print(f"[bench_all] wrote {options.output}")
    for name, value in metrics.items():
        print(f"  {name}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
