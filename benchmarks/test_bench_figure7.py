"""Figure 7: sampling-error convergence (KL divergence vs. number of samples).

Benchmarks the Gibbs sampler and the ideal (direct) sampler drawing the same
number of samples from a QAOA circuit, and records the resulting KL
divergences in ``extra_info`` so the benchmark output regenerates the
figure's two series.
"""

import numpy as np
import pytest

from repro.circuits import depolarize
from repro.densitymatrix import DensityMatrixSimulator
from repro.sampling import empirical_distribution, ideal_sample_from_distribution, kl_divergence
from repro.sampling.gibbs import GibbsSampler
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_SAMPLES = 1000


def _ideal_setup(num_qubits=8, seed=5):
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=1)
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    exact = np.abs(StateVectorSimulator().simulate(circuit).state_vector) ** 2
    return ansatz, circuit, exact


def _noisy_setup(num_qubits=4, seed=5):
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=1)
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    noisy = circuit.with_noise(lambda: depolarize(0.005))
    exact = DensityMatrixSimulator().simulate(noisy).probabilities()
    return ansatz, noisy, exact


def test_ideal_qaoa_gibbs_sampling_error(benchmark):
    ansatz, circuit, exact = _ideal_setup()
    compiled = KnowledgeCompilationSimulator(seed=5).compile_circuit(circuit)

    def draw():
        sampler = GibbsSampler(compiled, rng=np.random.default_rng(5))
        return sampler.sample(NUM_SAMPLES, burn_in_sweeps=4)

    samples = benchmark(draw)
    empirical = empirical_distribution(samples.samples, ansatz.problem.num_vertices)
    benchmark.extra_info["kl_gibbs"] = round(kl_divergence(exact, empirical), 4)
    benchmark.extra_info["samples"] = NUM_SAMPLES
    benchmark.extra_info["qubits"] = ansatz.problem.num_vertices


def test_ideal_qaoa_direct_sampling_error(benchmark):
    ansatz, circuit, exact = _ideal_setup()
    qubits = ansatz.qubits

    def draw():
        return ideal_sample_from_distribution(exact, NUM_SAMPLES, qubits, np.random.default_rng(5))

    samples = benchmark(draw)
    empirical = empirical_distribution(samples.samples, len(qubits))
    benchmark.extra_info["kl_ideal"] = round(kl_divergence(exact, empirical), 4)
    benchmark.extra_info["samples"] = NUM_SAMPLES


def test_noisy_qaoa_gibbs_sampling_error(benchmark):
    ansatz, noisy, exact = _noisy_setup()
    compiled = KnowledgeCompilationSimulator(seed=7).compile_circuit(noisy)

    def draw():
        sampler = GibbsSampler(compiled, rng=np.random.default_rng(7))
        return sampler.sample(NUM_SAMPLES // 2, burn_in_sweeps=4)

    samples = benchmark(draw)
    empirical = empirical_distribution(samples.samples, ansatz.problem.num_vertices)
    benchmark.extra_info["kl_gibbs_noisy"] = round(kl_divergence(exact, empirical), 4)
    benchmark.extra_info["qubits"] = ansatz.problem.num_vertices
