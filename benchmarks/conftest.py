"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index); pytest-benchmark provides the
timing statistics, and ``extra_info`` carries the non-timing columns
(AC nodes, CNF clauses, ...).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
