"""Figure 8: time to sample from ideal variational circuits, per backend.

Each benchmark draws a fixed number of samples from a QAOA Max-Cut or VQE
Ising circuit using one of the three backends the paper compares: the
state-vector simulator (qsim stand-in), the tensor-network simulator (qTorch
stand-in) and the knowledge-compilation simulator.  Knowledge-compilation
circuits are compiled once outside the timed region, matching the paper's
variational-loop amortisation.

Instance sizes are laptop-scale reductions of the paper's sweeps (the
artifact's own evaluation does the same); the *relative ordering* of the
backends at each size is what reproduces the figure.
"""

import numpy as np
import pytest

from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.tensornetwork import TensorNetworkSimulator
from repro.variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising

NUM_SAMPLES = 200
TN_SAMPLES = 20  # per-sample contraction cost makes full runs impractical


def _qaoa(num_qubits, iterations=1, seed=9):
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)
    resolver = ansatz.resolver([0.6] * iterations + [0.4] * iterations)
    return ansatz, resolver


def _vqe(num_qubits, iterations=1, seed=9):
    ansatz = VQECircuit(square_grid_ising(num_qubits, seed=seed), iterations=iterations)
    rng = np.random.default_rng(seed)
    resolver = ansatz.resolver(rng.uniform(0.2, 0.9, size=ansatz.num_parameters))
    return ansatz, resolver


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_qaoa_p1_state_vector_sampling(benchmark, num_qubits):
    ansatz, resolver = _qaoa(num_qubits)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    simulator = StateVectorSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "state_vector"
    benchmark(lambda: simulator.sample(circuit, NUM_SAMPLES, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 8])
def test_qaoa_p1_tensor_network_sampling(benchmark, num_qubits):
    ansatz, resolver = _qaoa(num_qubits)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    simulator = TensorNetworkSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "tensor_network"
    benchmark.extra_info["samples_drawn"] = TN_SAMPLES
    benchmark(lambda: simulator.sample(circuit, TN_SAMPLES, seed=1, burn_in=2))


@pytest.mark.parametrize("num_qubits", [4, 8, 12])
def test_qaoa_p1_knowledge_compilation_sampling(benchmark, num_qubits):
    ansatz, resolver = _qaoa(num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = simulator.compile_circuit(ansatz.circuit)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "knowledge_compilation"
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
    benchmark(lambda: simulator.sample(compiled, NUM_SAMPLES, resolver=resolver, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 6])
def test_qaoa_p2_knowledge_compilation_sampling(benchmark, num_qubits):
    ansatz, resolver = _qaoa(num_qubits, iterations=2)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = simulator.compile_circuit(ansatz.circuit)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["iterations"] = 2
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
    benchmark(lambda: simulator.sample(compiled, NUM_SAMPLES, resolver=resolver, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 6])
def test_qaoa_p2_state_vector_sampling(benchmark, num_qubits):
    ansatz, resolver = _qaoa(num_qubits, iterations=2)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    simulator = StateVectorSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["iterations"] = 2
    benchmark(lambda: simulator.sample(circuit, NUM_SAMPLES, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 6, 9])
def test_vqe_p1_state_vector_sampling(benchmark, num_qubits):
    ansatz, resolver = _vqe(num_qubits)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    simulator = StateVectorSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "state_vector"
    benchmark(lambda: simulator.sample(circuit, NUM_SAMPLES, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 6, 9])
def test_vqe_p1_knowledge_compilation_sampling(benchmark, num_qubits):
    ansatz, resolver = _vqe(num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = simulator.compile_circuit(ansatz.circuit)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "knowledge_compilation"
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
    benchmark(lambda: simulator.sample(compiled, NUM_SAMPLES, resolver=resolver, seed=1))


@pytest.mark.parametrize("num_qubits", [4, 6])
def test_vqe_p1_tensor_network_sampling(benchmark, num_qubits):
    ansatz, resolver = _vqe(num_qubits)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    simulator = TensorNetworkSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "tensor_network"
    benchmark.extra_info["samples_drawn"] = TN_SAMPLES
    benchmark(lambda: simulator.sample(circuit, TN_SAMPLES, seed=1, burn_in=2))
