"""Figure 1 and Figure 3 benchmarks.

* Figure 1 — arithmetic-circuit reduction: compile the 4-qubit noisy QAOA
  circuit with and without elision/ordering optimizations, recording the AC
  sizes in ``extra_info``.
* Figure 3 — peaked output distribution: time the Gibbs sampler drawing from
  a QAOA circuit and record how much probability mass the top outcomes carry.
"""

import numpy as np
import pytest

from repro.experiments import figure1_ac_reduction
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.statevector import StateVectorSimulator
from repro.variational import QAOACircuit, random_regular_maxcut


class TestFigure1:
    def test_direct_compilation(self, benchmark):
        circuit = figure1_ac_reduction.build_noisy_qaoa(num_qubits=4, noise_probability=0.05)
        simulator = KnowledgeCompilationSimulator(order_method="lexicographic", elide_internal=False)
        compiled = benchmark(lambda: simulator.compile_circuit(circuit))
        benchmark.extra_info["variant"] = "direct (no elision, lexicographic order)"
        benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
        benchmark.extra_info["ac_edges"] = compiled.arithmetic_circuit.num_edges

    def test_optimized_compilation(self, benchmark):
        circuit = figure1_ac_reduction.build_noisy_qaoa(num_qubits=4, noise_probability=0.05)
        simulator = KnowledgeCompilationSimulator(order_method="hypergraph", elide_internal=True)
        compiled = benchmark(lambda: simulator.compile_circuit(circuit))
        benchmark.extra_info["variant"] = "optimized (elision + hypergraph order)"
        benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
        benchmark.extra_info["ac_edges"] = compiled.arithmetic_circuit.num_edges

    def test_optimizations_reduce_size(self):
        result = figure1_ac_reduction.run(num_qubits=4, noise_probability=0.05)
        optimized = min(row["ac_nodes"] for row in result.rows if row["elide_internal_states"])
        direct = max(row["ac_nodes"] for row in result.rows if not row["elide_internal_states"])
        assert optimized < direct


class TestFigure3:
    @pytest.fixture(scope="class")
    def compiled_qaoa(self):
        ansatz = QAOACircuit(random_regular_maxcut(8, seed=3), iterations=1)
        resolver = ansatz.resolver([0.6, 0.4])
        simulator = KnowledgeCompilationSimulator(seed=3)
        compiled = simulator.compile_circuit(ansatz.circuit)
        return ansatz, resolver, simulator, compiled

    def test_gibbs_sampling_peaked_distribution(self, benchmark, compiled_qaoa):
        ansatz, resolver, simulator, compiled = compiled_qaoa
        samples = benchmark(lambda: simulator.sample(compiled, 500, resolver=resolver, seed=3))
        exact = np.abs(
            StateVectorSimulator().simulate(ansatz.circuit, resolver).state_vector
        ) ** 2
        top_16_mass = float(np.sort(exact)[::-1][:16].sum())
        benchmark.extra_info["qubits"] = 8
        benchmark.extra_info["exact_top16_mass"] = round(top_16_mass, 4)
        empirical = samples.empirical_distribution()
        benchmark.extra_info["sampled_top16_mass"] = round(float(np.sort(empirical)[::-1][:16].sum()), 4)
        # The distribution is sharply peaked: a handful of outcomes carry most of the mass.
        assert top_16_mass > 16 / 256
