"""Figure 6 / Table 4: knowledge-compilation cost vs. circuit structure.

Benchmarks the compile step (CNF -> arithmetic circuit) for the three
workload families the paper contrasts: random circuit sampling
(unstructured), Grover's search and Shor's order finding (structured).
``extra_info`` records CNF-variable and AC-node counts — the two axes of
Figure 6 — plus the AC file size reported in Table 4.
"""

import pytest

from repro.algorithms import grover_circuit, order_finding_circuit, random_circuit
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator


def _record(benchmark, compiled):
    metrics = compiled.compilation_metrics()
    benchmark.extra_info.update(
        {
            "qubits": metrics["qubits"],
            "gates": metrics["gates"],
            "cnf_variables": metrics["cnf_variables"],
            "cnf_clauses": metrics["cnf_clauses"],
            "ac_nodes": metrics["ac_nodes"],
            "ac_edges": metrics["ac_edges"],
            "ac_size_bytes": metrics["ac_size_bytes"],
        }
    )


@pytest.mark.parametrize("num_qubits,depth", [(4, 2), (5, 2), (6, 3)])
def test_random_circuit_sampling_compilation(benchmark, num_qubits, depth):
    instance = random_circuit(num_qubits, depth, seed=17 + num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = benchmark(lambda: simulator.compile_circuit(instance.circuit))
    benchmark.extra_info["workload"] = "rcs"
    _record(benchmark, compiled)


@pytest.mark.parametrize("num_qubits", [2, 3])
def test_grover_compilation(benchmark, num_qubits):
    instance = grover_circuit([1] * num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = benchmark(lambda: simulator.compile_circuit(instance.circuit))
    benchmark.extra_info["workload"] = "grover"
    _record(benchmark, compiled)


@pytest.mark.parametrize("a,modulus", [(2, 3), (2, 5)])
def test_shor_order_finding_compilation(benchmark, a, modulus):
    instance = order_finding_circuit(a, modulus)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = benchmark(lambda: simulator.compile_circuit(instance.circuit))
    benchmark.extra_info["workload"] = "shor"
    _record(benchmark, compiled)


def test_structured_vs_unstructured_scaling():
    """The Figure 6 qualitative claim: RCS circuits compile to far larger ACs
    per CNF variable than structured QAOA-style circuits of comparable size."""
    from repro.variational import QAOACircuit, random_regular_maxcut

    simulator = KnowledgeCompilationSimulator(seed=1)
    rcs = simulator.compile_circuit(random_circuit(6, 3, seed=23).circuit)
    qaoa = simulator.compile_circuit(
        QAOACircuit(random_regular_maxcut(6, seed=23), iterations=1).circuit
    )
    rcs_density = rcs.arithmetic_circuit.num_nodes / rcs.encoding.cnf.num_vars
    qaoa_density = qaoa.arithmetic_circuit.num_nodes / qaoa.encoding.cnf.num_vars
    assert rcs_density > qaoa_density
