"""Ablation benchmarks for the individual toolchain stages.

Not a paper table per se, but the per-stage costs DESIGN.md calls out:
circuit -> Bayesian network, network -> CNF, CNF -> d-DNNF, elision/smoothing,
weight re-binding and single amplitude queries.  These quantify where time
goes and how cheap the "repeat with new parameters" path is compared with a
full recompilation — the design choice at the heart of the paper.
"""

import numpy as np
import pytest

from repro.bayesnet import circuit_to_bayesnet
from repro.cnf import encode_bayesnet
from repro.knowledge import ArithmeticCircuit, KnowledgeCompiler, forget, smooth
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_QUBITS = 10


@pytest.fixture(scope="module")
def ansatz():
    return QAOACircuit(random_regular_maxcut(NUM_QUBITS, seed=5), iterations=1)


@pytest.fixture(scope="module")
def resolver(ansatz):
    return ansatz.resolver([0.6, 0.4])


@pytest.fixture(scope="module")
def compiled(ansatz):
    return KnowledgeCompilationSimulator(seed=1).compile_circuit(ansatz.circuit)


def test_stage_circuit_to_bayesnet(benchmark, ansatz):
    network = benchmark(lambda: circuit_to_bayesnet(ansatz.circuit))
    benchmark.extra_info["bn_nodes"] = network.num_nodes


def test_stage_bayesnet_to_cnf(benchmark, ansatz):
    network = circuit_to_bayesnet(ansatz.circuit)
    encoding = benchmark(lambda: encode_bayesnet(network))
    benchmark.extra_info["cnf_clauses"] = encoding.cnf.num_clauses


def test_stage_cnf_to_ddnnf(benchmark, ansatz):
    network = circuit_to_bayesnet(ansatz.circuit)
    encoding = encode_bayesnet(network)
    compiler = KnowledgeCompiler(order_method="hypergraph")
    state_bits = [bit for bits in encoding.node_bits.values() for bit in bits]

    def compile_once():
        root, manager, _ = compiler.compile(encoding.cnf, decision_variables=state_bits)
        return root, manager

    root, manager = benchmark(compile_once)
    benchmark.extra_info["cnf_clauses"] = encoding.cnf.num_clauses


def test_stage_full_compile(benchmark, ansatz):
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = benchmark(lambda: simulator.compile_circuit(ansatz.circuit))
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes


def test_stage_weight_rebinding(benchmark, compiled, ansatz):
    """Re-binding parameters for a new variational iteration (no recompilation)."""
    resolvers = [ansatz.resolver([g, b]) for g, b in [(0.2, 0.8), (0.9, 0.1), (1.2, 0.5)]]
    counter = {"i": 0}

    def rebind():
        counter["i"] = (counter["i"] + 1) % len(resolvers)
        return compiled.base_literal_values(resolvers[counter["i"]])

    benchmark(rebind)
    benchmark.extra_info["weight_variables"] = len(compiled.encoding.weight_refs)


def test_stage_single_amplitude_query(benchmark, compiled, resolver):
    bits = [0] * NUM_QUBITS
    value = benchmark(lambda: compiled.amplitude(bits, resolver=resolver))
    assert np.isfinite(abs(value))


def test_stage_upward_downward_pass(benchmark, compiled, resolver):
    """The per-Gibbs-step cost: one upward + downward differential sweep."""
    literal_values, _ = compiled.base_literal_values(resolver)
    compiled.apply_evidence(literal_values, compiled.assignment_for([0] * NUM_QUBITS))
    ac = compiled.arithmetic_circuit
    benchmark(lambda: ac.evaluate_with_derivatives(literal_values))
    benchmark.extra_info["ac_edges"] = ac.num_edges


def test_stage_elision_ablation(benchmark, ansatz):
    """Compile without elision to quantify the size the optimization saves."""
    simulator = KnowledgeCompilationSimulator(seed=1, elide_internal=False)
    compiled = benchmark(lambda: simulator.compile_circuit(ansatz.circuit))
    benchmark.extra_info["ac_nodes_without_elision"] = compiled.arithmetic_circuit.num_nodes
