"""Figure 9: time to sample from noisy variational circuits.

Compares the density-matrix baseline against the knowledge-compilation
simulator on QAOA Max-Cut and VQE Ising circuits with 0.5% symmetric
depolarizing noise after every gate (the paper's noise model), at
laptop-scale qubit counts.
"""

import numpy as np
import pytest

from repro.circuits import depolarize
from repro.densitymatrix import DensityMatrixSimulator
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising

NUM_SAMPLES = 100
NOISE_PROBABILITY = 0.005


def _noisy_qaoa(num_qubits, iterations=1, seed=13):
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)
    resolver = ansatz.resolver([0.6] * iterations + [0.4] * iterations)
    noisy = ansatz.circuit.with_noise(lambda: depolarize(NOISE_PROBABILITY))
    return noisy, resolver


def _noisy_vqe(num_qubits, iterations=1, seed=13):
    ansatz = VQECircuit(square_grid_ising(num_qubits, seed=seed), iterations=iterations)
    rng = np.random.default_rng(seed)
    resolver = ansatz.resolver(rng.uniform(0.2, 0.9, size=ansatz.num_parameters))
    noisy = ansatz.circuit.with_noise(lambda: depolarize(NOISE_PROBABILITY))
    return noisy, resolver


@pytest.mark.parametrize("num_qubits", [3, 4, 5])
def test_noisy_qaoa_density_matrix_sampling(benchmark, num_qubits):
    circuit, resolver = _noisy_qaoa(num_qubits)
    resolved = circuit.resolve_parameters(resolver)
    simulator = DensityMatrixSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "density_matrix"
    benchmark.extra_info["gates"] = resolved.gate_count(include_noise=True)
    benchmark(lambda: simulator.sample(resolved, NUM_SAMPLES, seed=1))


@pytest.mark.parametrize("num_qubits", [3, 4, 5])
def test_noisy_qaoa_knowledge_compilation_sampling(benchmark, num_qubits):
    circuit, resolver = _noisy_qaoa(num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = simulator.compile_circuit(circuit)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "knowledge_compilation"
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
    benchmark(lambda: simulator.sample(compiled, NUM_SAMPLES, resolver=resolver, seed=1))


@pytest.mark.parametrize("num_qubits", [4])
def test_noisy_vqe_density_matrix_sampling(benchmark, num_qubits):
    circuit, resolver = _noisy_vqe(num_qubits)
    resolved = circuit.resolve_parameters(resolver)
    simulator = DensityMatrixSimulator(seed=1)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "density_matrix"
    benchmark(lambda: simulator.sample(resolved, NUM_SAMPLES, seed=1))


@pytest.mark.parametrize("num_qubits", [4])
def test_noisy_vqe_knowledge_compilation_sampling(benchmark, num_qubits):
    circuit, resolver = _noisy_vqe(num_qubits)
    simulator = KnowledgeCompilationSimulator(seed=1)
    compiled = simulator.compile_circuit(circuit)
    benchmark.extra_info["qubits"] = num_qubits
    benchmark.extra_info["backend"] = "knowledge_compilation"
    benchmark.extra_info["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
    benchmark(lambda: simulator.sample(compiled, NUM_SAMPLES, resolver=resolver, seed=1))


def test_noisy_qaoa_compile_cost(benchmark):
    """The one-off compilation cost that the sampling benchmarks amortise."""
    circuit, _ = _noisy_qaoa(4)
    simulator = KnowledgeCompilationSimulator(seed=1)
    result = benchmark(lambda: simulator.compile_circuit(circuit))
    benchmark.extra_info["ac_nodes"] = result.arithmetic_circuit.num_nodes
