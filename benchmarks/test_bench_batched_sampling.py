"""Batched-engine benchmarks: many-chain Gibbs sampling and vectorized queries.

Compares, on the Figure 7 QAOA workloads (ideal 8-qubit and noisy 4-qubit):

* scalar-chain Gibbs sampling (``num_chains=1``, a fresh sampler per draw —
  the seed's cost model of one upward+downward pass per sample) against the
  batched chain ensemble (warm reuse across calls, the variational-loop usage);
* looped per-amplitude ``state_vector`` reconstruction against the chunked
  batched reconstruction.

``extra_info`` records the measured speedup ratios; the dedicated ratio test
asserts the tentpole acceptance criterion (>= 5x sampling throughput at 512
repetitions).
"""

import time

import numpy as np
import pytest

from repro.circuits import depolarize
from repro.linalg.tensor_ops import index_to_bits
from repro.sampling.gibbs import GibbsSampler
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, random_regular_maxcut

REPETITIONS = 512
ENSEMBLE_CHAINS = 32


@pytest.fixture(scope="module")
def compiled_ideal():
    ansatz = QAOACircuit(random_regular_maxcut(8, seed=5), iterations=1)
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    return KnowledgeCompilationSimulator(seed=5).compile_circuit(circuit)


@pytest.fixture(scope="module")
def compiled_noisy():
    ansatz = QAOACircuit(random_regular_maxcut(4, seed=5), iterations=1)
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    return KnowledgeCompilationSimulator(seed=7).compile_circuit(
        circuit.with_noise(lambda: depolarize(0.005))
    )


def test_scalar_chain_sampling(benchmark, compiled_ideal):
    """Seed-style scalar path: one chain, fresh sampler (cold burn-in) per draw."""

    def draw():
        sampler = GibbsSampler(compiled_ideal, rng=np.random.default_rng(5))
        return sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=1)

    result = benchmark(draw)
    assert len(result.samples) == REPETITIONS
    benchmark.extra_info["samples"] = REPETITIONS
    benchmark.extra_info["num_chains"] = 1


def test_batched_ensemble_sampling(benchmark, compiled_ideal):
    """Warm chain ensemble: burn-in paid once, recording passes only per draw."""
    sampler = GibbsSampler(compiled_ideal, rng=np.random.default_rng(5))
    sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    def draw():
        return sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    result = benchmark(draw)
    assert len(result.samples) == REPETITIONS
    benchmark.extra_info["samples"] = REPETITIONS
    benchmark.extra_info["num_chains"] = ENSEMBLE_CHAINS


def test_sampling_speedup_ratio(compiled_ideal):
    """Acceptance criterion: >= 5x sampling throughput from the batched ensemble."""

    def best_of(callable_, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    def scalar_draw():
        sampler = GibbsSampler(compiled_ideal, rng=np.random.default_rng(5))
        sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=1)

    warm = GibbsSampler(compiled_ideal, rng=np.random.default_rng(5))
    warm.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    def ensemble_draw():
        warm.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    scalar_seconds = best_of(scalar_draw)
    ensemble_seconds = best_of(ensemble_draw)
    speedup = scalar_seconds / ensemble_seconds
    print(
        f"\nsample({REPETITIONS}): scalar {REPETITIONS / scalar_seconds:.0f}/s, "
        f"ensemble {REPETITIONS / ensemble_seconds:.0f}/s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_noisy_ensemble_sampling(benchmark, compiled_noisy):
    """Noisy Figure 7 panel: ensemble throughput with noise-branch selectors."""
    sampler = GibbsSampler(compiled_noisy, rng=np.random.default_rng(7))
    sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    def draw():
        return sampler.sample(REPETITIONS, burn_in_sweeps=4, num_chains=ENSEMBLE_CHAINS)

    result = benchmark(draw)
    assert len(result.samples) == REPETITIONS
    benchmark.extra_info["num_chains"] = ENSEMBLE_CHAINS
    benchmark.extra_info["noise_channels"] = len(compiled_noisy.noise_variables)


def test_batched_state_vector(benchmark, compiled_ideal):
    """Chunked batched reconstruction of all 2^n amplitudes."""
    state = benchmark(compiled_ideal.state_vector)
    benchmark.extra_info["dim"] = len(state)


def test_looped_state_vector(benchmark, compiled_ideal):
    """Seed-style reconstruction: one scalar amplitude query per bitstring."""
    n = compiled_ideal.num_qubits

    def loop():
        return np.asarray(
            [compiled_ideal.amplitude(index_to_bits(i, n)) for i in range(2 ** n)]
        )

    state = benchmark(loop)
    np.testing.assert_allclose(state, compiled_ideal.state_vector(), atol=1e-10)


def test_state_vector_speedup_ratio(compiled_ideal):
    """Report the batched-vs-looped reconstruction ratio."""
    n = compiled_ideal.num_qubits
    start = time.perf_counter()
    looped = np.asarray(
        [compiled_ideal.amplitude(index_to_bits(i, n)) for i in range(2 ** n)]
    )
    looped_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = compiled_ideal.state_vector()
    batched_seconds = time.perf_counter() - start
    np.testing.assert_allclose(batched, looped, atol=1e-10)
    speedup = looped_seconds / batched_seconds
    print(f"\nstate_vector: looped {looped_seconds * 1e3:.1f} ms, "
          f"batched {batched_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 3.0
