"""Noisy-sampling throughput: batched trajectory backend vs. dense density matrix.

The Figure 9 workload (QAOA Max-Cut with 0.5% symmetric depolarizing noise
after every gate) at qubit counts where the ``4^n`` density matrix is the
bottleneck.  Two acceptance ratios are asserted:

* the batched quantum-trajectory backend delivers >= 5x noisy-sampling
  throughput over the dense density-matrix baseline at >= 10 qubits (it
  measures ~20x at 11 qubits, even with one independent trajectory per
  sample);
* the superoperator-compiled density-matrix simulator itself is >= 2x the
  seed's per-operation Kraus walk (measures ~6x).
"""

import time

import numpy as np
import pytest

from repro.circuits import depolarize
from repro.circuits.noise import NoiseOperation
from repro.densitymatrix import DensityMatrixSimulator
from repro.linalg.tensor_ops import apply_kraus_to_density, basis_state, density_from_state
from repro.trajectory import TrajectorySimulator
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_SAMPLES = 256
NOISE_PROBABILITY = 0.005


def _noisy_qaoa(num_qubits, seed=13):
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=1)
    resolved = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    return resolved.with_noise(lambda: depolarize(NOISE_PROBABILITY))


@pytest.fixture(scope="module")
def noisy_qaoa_10q():
    return _noisy_qaoa(10)


@pytest.fixture(scope="module")
def noisy_qaoa_11q():
    return _noisy_qaoa(11)


def _seed_style_density_matrix(circuit):
    """The seed's cost model: one Kraus-branch walk per operation, no fusion."""
    qubits = circuit.all_qubits()
    index_of = {q: i for i, q in enumerate(qubits)}
    num_qubits = len(qubits)
    rho = density_from_state(basis_state(0, num_qubits))
    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        targets = [index_of[q] for q in op.qubits]
        operators = (
            op.kraus_operators(None) if isinstance(op, NoiseOperation) else [op.unitary(None)]
        )
        rho = apply_kraus_to_density(rho, operators, targets, num_qubits)
    return rho


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_density_matrix_noisy_sampling(benchmark, noisy_qaoa_10q):
    simulator = DensityMatrixSimulator(seed=1)
    benchmark.extra_info.update(qubits=10, backend="density_matrix", samples=NUM_SAMPLES)
    result = benchmark.pedantic(
        lambda: simulator.sample(noisy_qaoa_10q, NUM_SAMPLES, seed=1), rounds=3, iterations=1
    )
    assert len(result.samples) == NUM_SAMPLES


def test_trajectory_noisy_sampling(benchmark, noisy_qaoa_10q):
    """Default unravelling: one independent trajectory per repetition."""
    simulator = TrajectorySimulator(seed=1)
    benchmark.extra_info.update(qubits=10, backend="trajectory", samples=NUM_SAMPLES)
    result = benchmark.pedantic(
        lambda: simulator.sample(noisy_qaoa_10q, NUM_SAMPLES, seed=1), rounds=3, iterations=1
    )
    assert len(result.samples) == NUM_SAMPLES


def test_trajectory_noisy_sampling_capped_ensemble(benchmark, noisy_qaoa_10q):
    """Capped ensemble (128 trajectories shared round-robin across samples)."""
    simulator = TrajectorySimulator(seed=1)
    benchmark.extra_info.update(
        qubits=10, backend="trajectory", samples=NUM_SAMPLES, num_trajectories=128
    )
    result = benchmark.pedantic(
        lambda: simulator.sample(noisy_qaoa_10q, NUM_SAMPLES, seed=1, num_trajectories=128),
        rounds=3,
        iterations=1,
    )
    assert len(result.samples) == NUM_SAMPLES


def test_trajectory_speedup_ratio(noisy_qaoa_11q):
    """Tentpole acceptance: >= 5x noisy-sampling throughput at >= 10 qubits."""
    density = DensityMatrixSimulator(seed=1)
    trajectory = TrajectorySimulator(seed=1)
    density_seconds = _best_of(
        lambda: density.sample(noisy_qaoa_11q, NUM_SAMPLES, seed=1), repeats=1
    )
    trajectory_seconds = _best_of(
        lambda: trajectory.sample(noisy_qaoa_11q, NUM_SAMPLES, seed=1), repeats=3
    )
    speedup = density_seconds / trajectory_seconds
    print(
        f"\nnoisy sample({NUM_SAMPLES}) at 11 qubits: density_matrix {density_seconds:.2f}s, "
        f"trajectory {trajectory_seconds:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_density_matrix_vectorization_ratio():
    """The compiled superoperator program beats the per-operation Kraus walk."""
    circuit = _noisy_qaoa(8)
    simulator = DensityMatrixSimulator()
    vectorized_seconds = _best_of(lambda: simulator.simulate(circuit), repeats=3)
    seed_style_seconds = _best_of(lambda: _seed_style_density_matrix(circuit), repeats=2)
    rho_new = simulator.simulate(circuit).density_matrix
    rho_old = _seed_style_density_matrix(circuit)
    assert np.allclose(rho_new, rho_old, atol=1e-10)
    speedup = seed_style_seconds / vectorized_seconds
    print(
        f"\ndense simulate at 8 qubits: per-op Kraus {seed_style_seconds:.3f}s, "
        f"superoperator program {vectorized_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0
