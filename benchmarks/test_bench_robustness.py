"""Fault-free overhead of the fault-tolerant execution engine.

The acceptance criterion of the robustness PR: on the 100-point BENCH_api
workload (shared-topology QAOA sweep, exact sampling on one compile), a
submission that carries retries *and* durable checkpointing — but suffers no
faults — must cost at most 10% more wall clock than the plain fast path.
The engine earns this by

* keeping the inline fast-lane for ``jobs=1`` fault-tolerant submissions
  (the device's live simulator instances and memoized group master are
  reused; payloads never pickle), and
* checkpointing rows as single appends to one write-ahead log (no per-item
  file create/rename, no per-row fsync — the per-record content
  fingerprint catches torn writes on load instead).

Plain and guarded runs are interleaved and each takes the best of several
attempts, so slow drift in machine load cancels out of the ratio.  Results
are emitted as machine-readable ``BENCH_robustness.json`` in the repository
root so CI and later sessions can track the overhead trajectory.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.device import Device
from repro.bench import emit_bench
from repro.api.faults import RetryPolicy
from repro.knowledge.cache import CompiledCircuitCache
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_QUBITS = 6
NUM_POINTS = 100
REPETITIONS = 64
# CI overrides the ceiling (shared runners make wall-clock ratios flaky)
# while keeping the bit-identical-results assertion active.
MAX_OVERHEAD = float(os.environ.get("BENCH_ROBUSTNESS_MAX_OVERHEAD", "0.10"))

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"


@pytest.fixture(scope="module")
def ansatz():
    return QAOACircuit(random_regular_maxcut(NUM_QUBITS, seed=9), iterations=1)


@pytest.fixture(scope="module")
def sweep_points(ansatz):
    rng = np.random.default_rng(13)
    grid = rng.uniform(0.15, 1.4, size=(NUM_POINTS, ansatz.num_parameters))
    return [ansatz.resolver(list(row)) for row in grid]


def _device():
    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    return Device(
        backend="knowledge_compilation",
        instances={"knowledge_compilation": simulator},
    )


def _best_of_interleaved(runs, *fns):
    """Best wall clock for each of ``fns``, measured in alternation."""
    best = [None] * len(fns)
    results = [None] * len(fns)
    for _ in range(runs):
        for position, fn in enumerate(fns):
            start = time.perf_counter()
            results[position] = fn()
            elapsed = time.perf_counter() - start
            if best[position] is None or elapsed < best[position]:
                best[position] = elapsed
    return best, results


class TestFaultFreeOverhead:
    def test_retries_and_checkpointing_cost_at_most_10_percent(
        self, ansatz, sweep_points, tmp_path_factory
    ):
        plain_dev = _device()
        guarded_dev = _device()
        # Warm both devices (compile + caches) outside the timed region.
        plain_dev.run(
            ansatz.circuit, params=sweep_points[:1], repetitions=4, seed=0
        ).result()
        guarded_dev.run(
            ansatz.circuit, params=sweep_points[:1], repetitions=4, seed=0
        ).result()

        def plain():
            job = plain_dev.run(
                ansatz.circuit, params=sweep_points, repetitions=REPETITIONS, seed=0
            )
            return job.result()

        # Journal directories are pre-created so the timed region measures
        # the engine, not pytest's tmp-dir bookkeeping.
        checkpoints = iter(
            [tmp_path_factory.mktemp(f"journal-{run}") for run in range(8)]
        )
        def guarded():
            checkpoint = next(checkpoints)
            job = guarded_dev.run(
                ansatz.circuit,
                params=sweep_points,
                repetitions=REPETITIONS,
                seed=0,
                retry=RetryPolicy(),
                checkpoint=str(checkpoint),
            )
            return job.result()

        (plain_seconds, guarded_seconds), (plain_result, guarded_result) = (
            _best_of_interleaved(7, plain, guarded)
        )

        assert len(plain_result) == len(guarded_result) == NUM_POINTS
        # Fault tolerance must not change results: bit-identical samples.
        assert plain_result.counts() == guarded_result.counts()

        overhead = guarded_seconds / max(plain_seconds, 1e-9) - 1.0
        emit_bench(
            _BENCH_JSON,
            {
                "benchmark": "fault_tolerant_run_overhead_vs_plain_run",
                "qubits": NUM_QUBITS,
                "points": NUM_POINTS,
                "repetitions": REPETITIONS,
                "plain_seconds": round(plain_seconds, 6),
                "fault_tolerant_seconds": round(guarded_seconds, 6),
                "overhead_fraction": round(overhead, 4),
                "max_overhead_fraction": MAX_OVERHEAD,
                "points_per_second_plain": round(NUM_POINTS / plain_seconds, 3),
                "points_per_second_fault_tolerant": round(
                    NUM_POINTS / guarded_seconds, 3
                ),
            },
        )

        assert overhead <= MAX_OVERHEAD, (
            f"retries+checkpointing cost {overhead:.1%} on the fault-free path "
            f"({plain_seconds:.2f}s plain vs {guarded_seconds:.2f}s guarded); "
            f"see {_BENCH_JSON.name}"
        )
