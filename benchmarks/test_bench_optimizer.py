"""Optimizer pass pipeline: compile-size and sweep-time reductions.

Two workloads, mirroring how the paper's figures exercise the compiler:

* **Light-cone pruning** (Figure 7-style per-observable evaluation): a QAOA
  circuit measured on a single problem edge.  Only the gates in that edge's
  reverse light cone can influence the measured marginal, so the compile
  with ``optimize="auto"`` encodes a fraction of the Bayesian network — the
  CNF and the compiled arithmetic circuit shrink accordingly.

* **Rotation fusion** (Figure 8-style parameter sweep): a "naively
  compiled" ansatz in which every rotation arrives split into two
  half-angle rotations — the textbook artifact of gate-set lowering.  The
  fusion pass merges each pair exactly (affine parameter arithmetic), so
  the knowledge compile sees half the rotation count and every sweep point
  pays less per evaluation.  The benchmark times the full compile+sweep
  with the optimizer off and on.

Results are emitted as machine-readable ``BENCH_optimizer.json`` in the
repository root.  The structural assertions (gate counts, AC nodes, CNF
clauses) are exact and always enforced; the wall-clock speedup floor can be
relaxed on shared CI runners via ``BENCH_OPTIMIZER_MIN_SPEEDUP``.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.bench import emit_bench
from repro.circuits import Circuit, measure
from repro.circuits.gates import _RotationGate
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.simulator.sweep import ParameterSweep
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_QUBITS = 8
SWEEP_POINTS = 40

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_optimizer.json"

_MIN_SPEEDUP = float(os.environ.get("BENCH_OPTIMIZER_MIN_SPEEDUP", "1.0"))


def _qaoa(seed=5, iterations=1):
    return QAOACircuit(random_regular_maxcut(NUM_QUBITS, seed=seed), iterations=iterations)


def _split_rotations(circuit):
    """The gate-set-lowering artifact: every rotation as two half-angle halves."""
    split = Circuit()
    for operation in circuit.all_operations():
        gate = operation.gate
        if isinstance(gate, _RotationGate):
            half = type(gate)(0.5 * gate.angle)
            split.append([half(*operation.qubits), half(*operation.qubits)])
        else:
            split.append(operation)
    return split


def _edge_observable_circuit(ansatz):
    """The resolved QAOA circuit measured on one problem edge only."""
    circuit = ansatz.circuit.resolve_parameters(ansatz.resolver([0.6, 0.4]))
    edge = ansatz.problem.edges[0]
    qubits = ansatz.qubits
    measured = Circuit(circuit.all_operations())
    measured.append(measure(qubits[edge[0]], qubits[edge[1]], key="edge"))
    return measured


class TestLightConeCompileSize:
    def test_edge_observable_compile_shrinks(self):
        ansatz = _qaoa()
        circuit = _edge_observable_circuit(ansatz)
        simulator = KnowledgeCompilationSimulator(cache=None)

        baseline = simulator.compile_circuit(circuit).compilation_metrics()
        optimized = simulator.compile_circuit(circuit, optimize="auto").compilation_metrics()
        stats = simulator.last_optimization

        assert stats is not None and stats.changed
        assert optimized["gates"] < baseline["gates"]
        assert optimized["ac_nodes"] < baseline["ac_nodes"]
        assert optimized["cnf_clauses"] < baseline["cnf_clauses"]

        self.__class__.metrics = {
            "workload": f"qaoa maxcut n={NUM_QUBITS}, single-edge observable",
            "gates": {"off": baseline["gates"], "auto": optimized["gates"]},
            "cnf_clauses": {"off": baseline["cnf_clauses"], "auto": optimized["cnf_clauses"]},
            "ac_nodes": {"off": baseline["ac_nodes"], "auto": optimized["ac_nodes"]},
            "ac_size_bytes": {
                "off": baseline["ac_size_bytes"],
                "auto": optimized["ac_size_bytes"],
            },
            "ac_nodes_reduction": round(1 - optimized["ac_nodes"] / baseline["ac_nodes"], 3),
        }


class TestFusionSweepTime:
    def test_split_rotation_sweep_speeds_up(self):
        ansatz = _qaoa(iterations=1)
        split = _split_rotations(ansatz.circuit)
        rng = np.random.default_rng(7)
        points = [
            ansatz.resolver(list(row))
            for row in rng.uniform(0.1, 1.3, size=(SWEEP_POINTS, ansatz.num_parameters))
        ]

        start = time.perf_counter()
        plain_sweep = ParameterSweep(split, KnowledgeCompilationSimulator(cache=None))
        plain_rows = plain_sweep.run(points).rows
        plain_seconds = time.perf_counter() - start

        start = time.perf_counter()
        optimized_sweep = ParameterSweep(
            split, KnowledgeCompilationSimulator(cache=None), optimize="auto"
        )
        optimized_rows = optimized_sweep.run(points).rows
        optimized_seconds = time.perf_counter() - start

        stats = optimized_sweep.last_optimization
        assert stats is not None and stats.removed > 0
        plain_metrics = plain_sweep.compiled.compilation_metrics()
        optimized_metrics = optimized_sweep.compiled.compilation_metrics()
        assert optimized_metrics["gates"] < plain_metrics["gates"]
        assert optimized_metrics["ac_nodes"] < plain_metrics["ac_nodes"]

        for plain_row, optimized_row in zip(plain_rows, optimized_rows):
            np.testing.assert_allclose(
                optimized_row["probabilities"], plain_row["probabilities"], atol=1e-10
            )

        speedup = plain_seconds / max(optimized_seconds, 1e-9)
        payload = {
            "benchmark": "circuit_rewrite_optimizer",
            "light_cone_compile": getattr(TestLightConeCompileSize, "metrics", None),
            "fusion_sweep": {
                "workload": (
                    f"qaoa maxcut n={NUM_QUBITS}, rotations split into half-angle "
                    f"pairs, {SWEEP_POINTS}-point sweep"
                ),
                "operations": {
                    "off": stats.operations_before,
                    "auto": stats.operations_after,
                },
                "ac_nodes": {
                    "off": plain_metrics["ac_nodes"],
                    "auto": optimized_metrics["ac_nodes"],
                },
                "sweep_seconds": {
                    "off": round(plain_seconds, 4),
                    "auto": round(optimized_seconds, 4),
                },
                "speedup": round(speedup, 3),
            },
        }
        emit_bench(_BENCH_JSON, payload)

        assert speedup >= _MIN_SPEEDUP, (
            f"optimized sweep only {speedup:.2f}x vs floor {_MIN_SPEEDUP} "
            f"({plain_seconds:.2f}s off vs {optimized_seconds:.2f}s auto); "
            f"see {_BENCH_JSON.name}"
        )
