"""Stabilizer backend at scale: 50+ qubit Clifford circuits in milliseconds.

The acceptance bar for the sixth backend: a >= 50-qubit, depth >= 100
Clifford circuit sampled in under one second wall-clock — a regime where
every existing backend is infeasible (a single dense state vector at 56
qubits would need ``2^56 * 16`` bytes ≈ 1.15 exabytes; the density matrix
squares that; the knowledge compile of an entangling 56-qubit random
circuit blows up in structure long before memory).  The tableau pays
``O(n^2)`` bits of state and ``O(n)`` work per gate, so the whole run is
milliseconds.

A second benchmark measures hybrid-dispatch overhead: the classification
pass must be a negligible fraction of a dense sampling run.
"""

import time

import numpy as np
import pytest

from repro.algorithms import ghz_circuit, random_clifford_circuit
from repro.simulator.hybrid import HybridSimulator
from repro.stabilizer import StabilizerSimulator
from repro.statevector import StateVectorSimulator

NUM_QUBITS = 56
DEPTH = 120
NUM_SAMPLES = 1000
WALL_CLOCK_BUDGET_SECONDS = 1.0


@pytest.fixture(scope="module")
def wide_clifford_instance():
    return random_clifford_circuit(NUM_QUBITS, DEPTH, seed=23)


class TestFiftyQubitBudget:
    def test_sampling_under_one_second(self, wide_clifford_instance):
        """>= 50 qubits, depth >= 100, 1000 samples, < 1 s wall-clock."""
        circuit = wide_clifford_instance.circuit
        assert circuit.num_qubits >= 50
        assert circuit.depth >= 100
        simulator = StabilizerSimulator(seed=7)
        start = time.perf_counter()
        samples = simulator.sample(circuit, NUM_SAMPLES, seed=7)
        elapsed = time.perf_counter() - start
        assert len(samples) == NUM_SAMPLES
        assert len(samples.qubits) == NUM_QUBITS
        assert elapsed < WALL_CLOCK_BUDGET_SECONDS, (
            f"sampling took {elapsed:.3f}s (budget {WALL_CLOCK_BUDGET_SECONDS}s)"
        )

    def test_hybrid_dispatch_reaches_the_same_scale(self, wide_clifford_instance):
        """The dispatcher, not just the raw backend, must survive 56 qubits."""
        simulator = HybridSimulator(seed=7)
        start = time.perf_counter()
        simulator.sample(wide_clifford_instance.circuit, NUM_SAMPLES, seed=7)
        elapsed = time.perf_counter() - start
        assert simulator.last_decision.backend == "stabilizer"
        assert elapsed < WALL_CLOCK_BUDGET_SECONDS

    def test_hundred_qubit_ghz_smoke(self):
        """Far past the dense wall: a 100-qubit GHZ state samples correctly."""
        instance = ghz_circuit(100)
        samples = StabilizerSimulator(seed=3).sample(instance.circuit, 200)
        observed = {tuple(bits) for bits in samples.samples}
        assert observed == {tuple([0] * 100), tuple([1] * 100)}


class TestThroughput:
    def test_tableau_sampling_throughput(self, benchmark, wide_clifford_instance):
        simulator = StabilizerSimulator(seed=7)
        result = benchmark(
            lambda: simulator.sample(wide_clifford_instance.circuit, NUM_SAMPLES, seed=7)
        )
        assert len(result) == NUM_SAMPLES
        benchmark.extra_info["qubits"] = NUM_QUBITS
        benchmark.extra_info["depth"] = DEPTH
        benchmark.extra_info["gates"] = wide_clifford_instance.circuit.gate_count()

    def test_dispatch_overhead_ratio_small_on_dense_route(self, benchmark):
        """Classification cost stays a sliver of a dense 10-qubit sampling run."""
        from repro.algorithms import random_circuit

        circuit = random_circuit(10, 8, seed=5).circuit
        hybrid = HybridSimulator(seed=7)
        dense = StateVectorSimulator(seed=7)

        start = time.perf_counter()
        dense.sample(circuit, NUM_SAMPLES, seed=7)
        dense_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        hybrid.sample(circuit, NUM_SAMPLES, seed=7)
        hybrid_elapsed = time.perf_counter() - start
        assert hybrid.last_decision.backend == "state_vector"
        # Dispatch adds classification only; allow generous slack for timer noise.
        assert hybrid_elapsed < dense_elapsed * 2.0 + 0.05

        result = benchmark(lambda: hybrid.sample(circuit, 64, seed=7))
        assert len(result) == 64
