"""Table 5 and Table 6 benchmarks.

* Table 5 — the noisy Bell-state worked example: benchmark the upward-pass
  amplitude queries and check the per-branch amplitudes against the paper's
  values.
* Table 6 — intermediate compilation metrics: benchmark compilation of the
  headline QAOA/VQE instances and record qubit/gate/CNF/AC statistics.
"""

import numpy as np
import pytest

from repro.circuits import depolarize
from repro.experiments import bell_example
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising


class TestTable5:
    @pytest.fixture(scope="class")
    def compiled_bell(self):
        simulator = KnowledgeCompilationSimulator(seed=1)
        return simulator.compile_circuit(bell_example.noisy_bell_circuit(0.36))

    def test_upward_pass_amplitude_queries(self, benchmark, compiled_bell):
        def all_branch_amplitudes():
            values = []
            for branch in (0, 1):
                for q0 in (0, 1):
                    for q1 in (0, 1):
                        values.append(compiled_bell.amplitude([q0, q1], noise_branches=[branch]))
            return values

        amplitudes = benchmark(all_branch_amplitudes)
        magnitudes = sorted(round(abs(a), 4) for a in amplitudes if abs(a) > 1e-12)
        # Table 5: non-zero magnitudes 1/sqrt(2), 0.8/sqrt(2) and 0.6/sqrt(2).
        assert magnitudes == [
            round(0.6 / np.sqrt(2), 4),
            round(0.8 / np.sqrt(2), 4),
            round(1 / np.sqrt(2), 4),
        ]
        benchmark.extra_info["branch_amplitude_magnitudes"] = magnitudes

    def test_density_matrix_reconstruction(self, benchmark, compiled_bell):
        rho = benchmark(compiled_bell.density_matrix)
        assert np.allclose(rho, bell_example.expected_density_matrix(0.36), atol=1e-9)


class TestTable6:
    CASES = [
        ("ideal_qaoa_p1", lambda: QAOACircuit(random_regular_maxcut(10, seed=21), 1).circuit),
        ("ideal_vqe_p1", lambda: VQECircuit(square_grid_ising(9, seed=21), 1).circuit),
        (
            "noisy_qaoa_p1",
            lambda: QAOACircuit(random_regular_maxcut(5, seed=21), 1).circuit.with_noise(
                lambda: depolarize(0.005)
            ),
        ),
        (
            "noisy_vqe_p1",
            lambda: VQECircuit(square_grid_ising(4, seed=21), 1).circuit.with_noise(
                lambda: depolarize(0.005)
            ),
        ),
    ]

    @pytest.mark.parametrize("label,builder", CASES, ids=[c[0] for c in CASES])
    def test_compilation_metrics(self, benchmark, label, builder):
        circuit = builder()
        simulator = KnowledgeCompilationSimulator(seed=1)
        compiled = benchmark(lambda: simulator.compile_circuit(circuit))
        metrics = compiled.compilation_metrics()
        benchmark.extra_info.update(
            {
                "instance": label,
                "qubits": metrics["qubits"],
                "gates_bn_nodes": metrics["bn_nodes"],
                "cnf_clauses": metrics["cnf_clauses"],
                "ac_nodes": metrics["ac_nodes"],
                "ac_edges": metrics["ac_edges"],
                "ac_size_bytes": metrics["ac_size_bytes"],
            }
        )
        assert metrics["ac_nodes"] > 0
