"""Batched ``Device.run()`` vs a per-circuit ``sample()`` loop.

The acceptance criterion of the Device/Job redesign: on a 100-point
shared-topology batch, one batched ``run()`` submission must deliver >= 3x
the throughput of the legacy pattern (a Python loop calling the backend's
``sample()`` once per point).  The batched path wins on

* one topology canonicalization + compile for the whole batch (the loop
  pays a cache lookup and rebind per call), and
* exact amplitude-based sampling on the shared compile (one vectorized
  upward pass per point) instead of a cold-started Gibbs chain ensemble
  per call.

Results are also emitted as machine-readable ``BENCH_api.json`` in the
repository root so CI and later sessions can track the perf trajectory.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.device import Device
from repro.bench import emit_bench
from repro.circuits import ParamResolver
from repro.knowledge.cache import CompiledCircuitCache
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_QUBITS = 6
NUM_POINTS = 100
REPETITIONS = 64
# The measured speedup has ~19x headroom over this floor locally (see
# BENCH_api.json); the env override exists for slower shared runners, not
# to disable the gate.
_MIN_SPEEDUP = float(os.environ.get("BENCH_API_MIN_SPEEDUP", "3.0"))

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_api.json"


@pytest.fixture(scope="module")
def ansatz():
    return QAOACircuit(random_regular_maxcut(NUM_QUBITS, seed=9), iterations=1)


@pytest.fixture(scope="module")
def sweep_points(ansatz):
    rng = np.random.default_rng(13)
    grid = rng.uniform(0.15, 1.4, size=(NUM_POINTS, ansatz.num_parameters))
    return [ansatz.resolver(list(row)) for row in grid]


def _per_circuit_sample_loop(ansatz, sweep_points):
    """The legacy pattern: one backend, one ``sample()`` call per point."""
    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    counts = []
    for index, resolver in enumerate(sweep_points):
        samples = simulator.sample(
            ansatz.circuit, REPETITIONS, resolver=resolver, seed=index
        )
        counts.append(samples.bitstring_counts())
    return counts


def _batched_device_run(ansatz, sweep_points):
    """One batched submission through the unified execution API."""
    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    dev = Device(
        backend="knowledge_compilation",
        instances={"knowledge_compilation": simulator},
    )
    job = dev.run(ansatz.circuit, params=sweep_points, repetitions=REPETITIONS, seed=0)
    return job.result().counts()


class TestBatchedRunThroughput:
    def test_batched_run_at_least_3x_per_circuit_loop(self, ansatz, sweep_points):
        start = time.perf_counter()
        loop_counts = _per_circuit_sample_loop(ansatz, sweep_points)
        loop_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched_counts = _batched_device_run(ansatz, sweep_points)
        batched_seconds = time.perf_counter() - start

        assert len(loop_counts) == len(batched_counts) == NUM_POINTS
        assert all(sum(c.values()) == REPETITIONS for c in batched_counts)
        speedup = loop_seconds / max(batched_seconds, 1e-9)

        emit_bench(
            _BENCH_JSON,
            {
                "benchmark": "batched_device_run_vs_per_circuit_sample_loop",
                "qubits": NUM_QUBITS,
                "points": NUM_POINTS,
                "repetitions": REPETITIONS,
                "per_circuit_loop_seconds": round(loop_seconds, 6),
                "batched_run_seconds": round(batched_seconds, 6),
                "speedup": round(speedup, 3),
                "points_per_second_batched": round(NUM_POINTS / batched_seconds, 3),
                "points_per_second_loop": round(NUM_POINTS / loop_seconds, 3),
            },
        )

        assert speedup >= _MIN_SPEEDUP, (
            f"batched run only {speedup:.1f}x faster (floor {_MIN_SPEEDUP}) "
            f"({loop_seconds:.2f}s loop vs {batched_seconds:.2f}s batched); "
            f"see {_BENCH_JSON.name}"
        )


class TestBatchedRunTiming:
    def test_benchmark_batched_run(self, benchmark, ansatz, sweep_points):
        simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
        dev = Device(
            backend="knowledge_compilation",
            instances={"knowledge_compilation": simulator},
        )
        dev.run(ansatz.circuit, params=sweep_points[:1], repetitions=4, seed=0).result()

        def run_batch():
            job = dev.run(
                ansatz.circuit, params=sweep_points, repetitions=REPETITIONS, seed=0
            )
            return job.result()

        result = benchmark(run_batch)
        benchmark.extra_info["points"] = NUM_POINTS
        benchmark.extra_info["repetitions"] = REPETITIONS
        assert len(result) == NUM_POINTS
