"""Compile-once parameter-sweep engine vs. per-point recompilation.

A Figure 8-style workload — the QAOA Max-Cut ansatz — swept over 20+
parameter points.  The acceptance criteria of the sweep engine:

* the compile-once path (one topology compile + per-point weight
  re-binding) is >= 5x faster than recompiling the resolved circuit at
  every point (it measures far higher: the exponential compile happens
  once instead of 20+ times);
* cached-vs-fresh results agree to 1e-10 at every point.
"""

import time

import numpy as np
import pytest

from repro.circuits import ParamResolver
from repro.knowledge.cache import CompiledCircuitCache
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.simulator.sweep import ParameterSweep, resolver_zip
from repro.variational import QAOACircuit, random_regular_maxcut

NUM_QUBITS = 6
NUM_POINTS = 24


@pytest.fixture(scope="module")
def ansatz():
    return QAOACircuit(random_regular_maxcut(NUM_QUBITS, seed=9), iterations=1)


@pytest.fixture(scope="module")
def sweep_points(ansatz):
    rng = np.random.default_rng(7)
    grid = rng.uniform(0.15, 1.4, size=(NUM_POINTS, ansatz.num_parameters))
    return [ansatz.resolver(list(row)) for row in grid]


def _per_point_recompile(ansatz, sweep_points):
    """The old figure-harness cost model: fresh compile per parameter point."""
    outputs = []
    for resolver in sweep_points:
        simulator = KnowledgeCompilationSimulator(seed=1, cache=None)
        resolved = ansatz.circuit.resolve_parameters(resolver)
        outputs.append(simulator.compile_circuit(resolved).probabilities())
    return np.stack(outputs)


def _compile_once_sweep(ansatz, sweep_points):
    simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
    sweep = ParameterSweep(ansatz.circuit, simulator)
    return sweep.run(sweep_points, observables=["probabilities"]).probabilities()


class TestSweepSpeedup:
    def test_cached_sweep_at_least_5x_and_exact(self, ansatz, sweep_points):
        start = time.perf_counter()
        fresh = _per_point_recompile(ansatz, sweep_points)
        recompile_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cached = _compile_once_sweep(ansatz, sweep_points)
        sweep_seconds = time.perf_counter() - start

        assert np.max(np.abs(cached - fresh)) < 1e-10
        speedup = recompile_seconds / max(sweep_seconds, 1e-9)
        assert speedup >= 5.0, (
            f"compile-once sweep only {speedup:.1f}x faster "
            f"({recompile_seconds:.2f}s recompile vs {sweep_seconds:.2f}s sweep)"
        )


class TestSweepThroughput:
    def test_benchmark_sweep(self, benchmark, ansatz, sweep_points):
        simulator = KnowledgeCompilationSimulator(seed=1, cache=CompiledCircuitCache())
        sweep = ParameterSweep(ansatz.circuit, simulator)  # compile outside the timer

        def run_sweep():
            return sweep.run(sweep_points, observables=["probabilities"])

        result = benchmark(run_sweep)
        benchmark.extra_info["points"] = NUM_POINTS
        benchmark.extra_info["qubits"] = NUM_QUBITS
        benchmark.extra_info["ac_nodes"] = sweep.compiled.arithmetic_circuit.num_nodes
        assert len(result) == NUM_POINTS
        totals = result.probabilities().sum(axis=1)
        assert np.allclose(totals, 1.0, atol=1e-9)
