"""VQE for a 2D Ising model, comparing the knowledge-compilation backend with
the state-vector reference on the same variational loop.

Run with::

    python examples/vqe_ising.py
"""

import numpy as np

from repro import KnowledgeCompilationSimulator, StateVectorSimulator
from repro.variational import (
    NelderMeadOptimizer,
    VQECircuit,
    VariationalLoop,
    square_grid_ising,
)


def run_backend(name, simulator, ansatz, seed=5):
    loop = VariationalLoop(
        ansatz,
        simulator,
        samples_per_evaluation=256,
        optimizer=NelderMeadOptimizer(max_iterations=40, initial_step=0.5),
        seed=seed,
    )
    result = loop.run()
    print(f"[{name}] best sampled energy: {result.best_value:.3f} "
          f"({result.num_circuit_executions} circuit executions)")
    return result


def main() -> None:
    model = square_grid_ising(4, coupling=1.0, field=0.1)
    ground_energy, ground_bits = model.ground_state_brute_force()
    print(f"Ising model: {model.rows}x{model.cols} grid, {len(model.edges)} couplings")
    print(f"Exact ground-state energy: {ground_energy:.3f} at spins {ground_bits}")
    print()

    ansatz = VQECircuit(model, iterations=1)
    print(f"VQE ansatz: {ansatz.circuit.gate_count()} gates, {ansatz.num_parameters} parameters")
    print()

    kc_result = run_backend("knowledge compilation", KnowledgeCompilationSimulator(seed=5), ansatz)
    sv_result = run_backend("state vector        ", StateVectorSimulator(seed=5), ansatz)

    print()
    best = min(kc_result.best_value, sv_result.best_value)
    print(f"Best energy found: {best:.3f}  (exact ground state {ground_energy:.3f})")
    gap = best - ground_energy
    print(f"Gap to exact ground state: {gap:.3f}")


if __name__ == "__main__":
    main()
