"""Circuit-rewrite optimizer: smaller compiles, same answers, one shared key.

The pass pipeline (light-cone pruning, adjacent-gate fusion with exact
rotation merging, commutation-based cancellation) rewrites a circuit before
the knowledge compile.  Every rewrite decision is *value-blind* — it looks
only at gate classes and wiring, never at angle values — so an optimized
symbolic ansatz and an optimized resolved instance still share one
``circuit_topology_key``, and therefore one compiled artifact.

This example sweeps a QAOA Max-Cut ansatz whose rotations arrive split into
half-angle pairs (the classic gate-set-lowering artifact) with the
optimizer off and on, prints the per-pass rewrite statistics, and shows the
symbolic/resolved topology keys coinciding.

Run with::

    python examples/optimizer.py
"""

import time

import numpy as np

from repro import (
    KnowledgeCompilationSimulator,
    ParameterSweep,
    circuit_topology_key,
    optimize_circuit,
)
from repro.circuits import Circuit
from repro.circuits.gates import _RotationGate
from repro.variational import QAOACircuit, random_regular_maxcut


def split_rotations(circuit: Circuit) -> Circuit:
    """Lower every rotation into two half-angle rotations (naive compile)."""
    lowered = Circuit()
    for operation in circuit.all_operations():
        gate = operation.gate
        if isinstance(gate, _RotationGate):
            half = type(gate)(0.5 * gate.angle)
            lowered.append([half(*operation.qubits), half(*operation.qubits)])
        else:
            lowered.append(operation)
    return lowered


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The workload: a QAOA ansatz, naively lowered.
    # ------------------------------------------------------------------
    problem = random_regular_maxcut(8, seed=5)
    ansatz = QAOACircuit(problem, iterations=1)
    lowered = split_rotations(ansatz.circuit)
    print(f"Ansatz: {lowered.num_qubits} qubits, {lowered.gate_count()} gates "
          f"after naive lowering ({ansatz.circuit.gate_count()} before)")

    # ------------------------------------------------------------------
    # 2. Sweep with the optimizer off, then on.  Same 30 points.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    points = [
        ansatz.resolver(list(row))
        for row in rng.uniform(0.1, 1.3, size=(30, ansatz.num_parameters))
    ]

    start = time.perf_counter()
    plain = ParameterSweep(lowered, KnowledgeCompilationSimulator(cache=None))
    plain_rows = plain.run(points).rows
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    optimized = ParameterSweep(
        lowered, KnowledgeCompilationSimulator(cache=None), optimize="auto"
    )
    optimized_rows = optimized.run(points).rows
    optimized_seconds = time.perf_counter() - start

    stats = optimized.last_optimization
    assert stats is not None
    print("\nRewrite statistics (optimize='auto'):")
    for line in stats.summary().splitlines():
        print(f"  {line}")

    print(f"\nCompile size: {plain.compiled.arithmetic_circuit.num_nodes} AC nodes off, "
          f"{optimized.compiled.arithmetic_circuit.num_nodes} on")
    print(f"Sweep time:   {plain_seconds:.3f}s off, {optimized_seconds:.3f}s on "
          f"({plain_seconds / max(optimized_seconds, 1e-9):.2f}x)")

    # ------------------------------------------------------------------
    # 3. Same answers: every point agrees to 1e-10.
    # ------------------------------------------------------------------
    worst = max(
        float(np.max(np.abs(a["probabilities"] - b["probabilities"])))
        for a, b in zip(plain_rows, optimized_rows)
    )
    assert worst < 1e-10
    print(f"\nMax |p_off - p_auto| over 30 points: {worst:.2e}")

    # ------------------------------------------------------------------
    # 4. Value-blindness: the optimized symbolic ansatz and an optimized
    #    resolved instance share one topology key (and so one compile).
    # ------------------------------------------------------------------
    resolved = lowered.resolve_parameters(points[0])
    key_symbolic = circuit_topology_key(optimize_circuit(lowered).circuit)
    key_resolved = circuit_topology_key(optimize_circuit(resolved).circuit)
    assert key_symbolic == key_resolved
    print(f"Shared topology key (symbolic == resolved): {key_symbolic[:16]}...")


if __name__ == "__main__":
    main()
