"""Walk through the paper's running example (Figure 2, Tables 2/3/5, Equation 3).

Builds the noisy Bell-state circuit with a 36% phase-damping channel, shows
the Bayesian network, the CNF encoding, the per-branch amplitudes of the
upward pass, and the reconstructed density matrix.

Run with::

    python examples/noisy_bell_walkthrough.py
"""

import numpy as np

from repro.bayesnet import circuit_to_bayesnet
from repro.cnf import encode_bayesnet
from repro.experiments import bell_example


def main() -> None:
    circuit = bell_example.noisy_bell_circuit(gamma=0.36)
    print("Noisy Bell-state circuit (Figure 2a):")
    print(circuit.to_text_diagram())
    print()

    network = circuit_to_bayesnet(circuit)
    print("Bayesian network nodes (Figure 2c):")
    for node in network.nodes:
        parents = ", ".join(node.parents) if node.parents else "-"
        print(f"  {node.name:10s} kind={node.kind:8s} parents=[{parents}]")
    print()

    encoding = encode_bayesnet(network, simplify=False)
    simplified = encode_bayesnet(network, simplify=True)
    print("CNF encoding (Table 3):")
    print(f"  before unit resolution: {encoding.cnf.num_vars} variables, "
          f"{encoding.cnf.num_clauses} clauses")
    print(f"  after  unit resolution: {simplified.cnf.num_clauses} clauses, "
          f"{len(simplified.forced_literals)} literals forced")
    print()

    print(bell_example.conditional_amplitude_tables().summary())
    print()
    print(bell_example.upward_pass_amplitudes().summary())
    print()

    rho = bell_example.final_density_matrix()
    expected = bell_example.expected_density_matrix()
    print("Final density matrix (Equation 3):")
    print(np.round(rho, 3))
    print("Matches the paper's analytic result:", np.allclose(rho, expected))


if __name__ == "__main__":
    main()
