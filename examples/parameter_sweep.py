"""Compile-once parameter sweeps: one compile, many parameter points.

The knowledge-compilation pipeline's economics are "compile once, query
many": the exponential CNF -> d-DNNF compile depends only on the circuit's
*topology* (gate classes + qubit wiring), so sweeping the gate angles —
energy landscapes, optimizer traces, figure harnesses — re-binds weights
into one shared arithmetic circuit instead of recompiling.

Run with::

    python examples/parameter_sweep.py
"""

import time

import numpy as np

from repro import (
    CompiledCircuitCache,
    KnowledgeCompilationSimulator,
    ParameterSweep,
    resolver_zip,
)
from repro.variational import QAOACircuit, random_regular_maxcut


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A QAOA Max-Cut ansatz: one gamma and one beta angle per layer.
    # ------------------------------------------------------------------
    problem = random_regular_maxcut(6, seed=9)
    ansatz = QAOACircuit(problem, iterations=1)
    print(f"Ansatz: {ansatz.circuit.num_qubits} qubits, "
          f"{ansatz.circuit.gate_count()} gates, {ansatz.num_parameters} parameters")

    # ------------------------------------------------------------------
    # 2. Build the sweep engine.  The constructor compiles the topology once
    #    (through the simulator's compiled-circuit cache).
    # ------------------------------------------------------------------
    cache = CompiledCircuitCache()
    simulator = KnowledgeCompilationSimulator(seed=11, cache=cache)
    start = time.perf_counter()
    sweep = ParameterSweep(ansatz.circuit, simulator)
    compile_seconds = time.perf_counter() - start
    print(f"Compiled once in {compile_seconds:.3f}s "
          f"({sweep.compiled.arithmetic_circuit.num_nodes} AC nodes)")

    # ------------------------------------------------------------------
    # 3. Sweep 25 (gamma, beta) points.  Every point is a weight re-binding
    #    plus vectorized upward passes — no recompilation.
    # ------------------------------------------------------------------
    gammas = np.linspace(0.1, 1.3, 25)
    betas = np.linspace(1.2, 0.2, 25)
    points = resolver_zip({"gamma0": gammas, "beta0": betas})

    start = time.perf_counter()
    result = sweep.run(
        points,
        observables=["probabilities", "expectation"],
        objective=ansatz.objective_from_distribution,
        repetitions=200,   # also draw Gibbs samples per point
        seed=3,
    )
    sweep_seconds = time.perf_counter() - start
    print(f"Swept {len(result)} points in {sweep_seconds:.3f}s "
          f"({1e3 * sweep_seconds / len(result):.1f} ms/point)")

    energies = result.expectations()
    best = int(np.argmin(energies))
    print(f"Best point: gamma={gammas[best]:.3f}, beta={betas[best]:.3f}, "
          f"objective={energies[best]:.4f}")
    top_counts = sorted(result.counts()[best].items(), key=lambda kv: -kv[1])[:3]
    print(f"Top sampled cuts there: {top_counts}")

    # ------------------------------------------------------------------
    # 4. The same topology at *new* values is a cache hit — even when the
    #    circuit arrives fully resolved (e.g. from an external frontend).
    # ------------------------------------------------------------------
    resolved = ansatz.circuit.resolve_parameters(ansatz.resolver([0.45, 0.85]))
    compiled_view = simulator.compile_circuit(resolved)  # no recompile
    print(f"Cache after resolved-circuit query: {cache.stats}")
    print(f"P(best cut) at new point: {compiled_view.probabilities()[best]:.4f}")

    # ------------------------------------------------------------------
    # 5. Fan points out over worker processes: the compiled artifact is
    #    persisted to disk and each worker hydrates it (identical results,
    #    deterministic seeding).
    # ------------------------------------------------------------------
    parallel = sweep.run(points, observables=["probabilities"], repetitions=200, seed=3, jobs=2)
    identical = np.array_equal(parallel.probabilities(), result.probabilities())
    print(f"Parallel sweep matches serial exactly: {identical}")


if __name__ == "__main__":
    main()
