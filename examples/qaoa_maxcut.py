"""QAOA for Max-Cut driven by the knowledge-compilation simulator.

The circuit structure is compiled once; every Nelder-Mead iteration only
re-binds the (gamma, beta) parameters and draws fresh Gibbs samples — the
workflow the paper's toolchain is designed around.

Run with::

    python examples/qaoa_maxcut.py
"""

import numpy as np

from repro import KnowledgeCompilationSimulator
from repro.variational import (
    NelderMeadOptimizer,
    QAOACircuit,
    VariationalLoop,
    random_regular_maxcut,
)


def main() -> None:
    problem = random_regular_maxcut(8, degree=3, seed=7)
    optimum, optimum_bits = problem.max_cut_brute_force()
    print(f"Max-Cut instance: {problem.num_vertices} vertices, {len(problem.edges)} edges")
    print(f"Exact optimum cut (brute force): {optimum} at {optimum_bits}")
    print()

    ansatz = QAOACircuit(problem, iterations=1)
    print(f"QAOA ansatz: {ansatz.circuit.gate_count()} gates, {ansatz.num_parameters} parameters")

    simulator = KnowledgeCompilationSimulator(seed=3)
    loop = VariationalLoop(
        ansatz,
        simulator,
        samples_per_evaluation=256,
        optimizer=NelderMeadOptimizer(max_iterations=30, initial_step=0.4),
        seed=3,
    )
    compiled = loop._compiled
    print(f"Compiled once: {compiled.arithmetic_circuit.num_nodes} AC nodes, "
          f"{compiled.encoding.cnf.num_clauses} CNF clauses")
    print()

    run = loop.run(initial_parameters=np.array([0.7, 0.35]))
    print(f"Optimizer evaluations (circuit executions): {run.num_circuit_executions}")
    print(f"Best sampled objective (negative cut):      {run.best_value:.3f}")
    print(f"Best parameters (gamma, beta):              {np.round(run.best_parameters, 3)}")

    best_bits, count = run.best_samples.most_common(1)[0]
    print(f"Most frequent sampled bitstring:            {best_bits} "
          f"({count}/{len(run.best_samples)} samples, cut = {problem.cut_value(best_bits)})")
    approximation_ratio = problem.cut_value(best_bits) / optimum
    print(f"Approximation ratio of that bitstring:      {approximation_ratio:.2f}")


if __name__ == "__main__":
    main()
