"""Demonstrate the paper's headline feature: compile once, re-simulate cheaply.

A parameterized QAOA circuit is compiled to an arithmetic circuit a single
time; new (gamma, beta) bindings then only update leaf weights.  The script
times the one-off compilation against repeated sampling runs and contrasts
the per-iteration cost with re-running the state-vector simulator from
scratch.

Run with::

    python examples/compile_once_sample_many.py
"""

import time

import numpy as np

from repro import KnowledgeCompilationSimulator, StateVectorSimulator
from repro.variational import QAOACircuit, random_regular_maxcut


def main() -> None:
    problem = random_regular_maxcut(12, degree=3, seed=11)
    ansatz = QAOACircuit(problem, iterations=1)
    print(f"QAOA circuit: {problem.num_vertices} qubits, {ansatz.circuit.gate_count()} gates")

    kc = KnowledgeCompilationSimulator(seed=1)
    start = time.perf_counter()
    compiled = kc.compile_circuit(ansatz.circuit)
    compile_seconds = time.perf_counter() - start
    metrics = compiled.compilation_metrics()
    print(f"One-off compilation: {compile_seconds:.2f} s "
          f"({metrics['cnf_clauses']} CNF clauses -> {metrics['ac_nodes']} AC nodes)")
    print()

    rng = np.random.default_rng(2)
    num_iterations = 8
    samples_per_iteration = 500

    print(f"{num_iterations} variational iterations, {samples_per_iteration} samples each:")
    kc_total = 0.0
    sv_total = 0.0
    sv = StateVectorSimulator(seed=1)
    for iteration in range(num_iterations):
        gamma, beta = rng.uniform(0.1, 1.2, size=2)
        resolver = ansatz.resolver([gamma, beta])

        start = time.perf_counter()
        # Samples are drawn by a lockstep ensemble of Gibbs chains: every
        # MCMC move is one batched pass over the arithmetic circuit, so the
        # per-sample cost shrinks with the chain count.
        kc_samples = kc.sample(
            compiled, samples_per_iteration, resolver=resolver, seed=iteration, num_chains=32
        )
        kc_seconds = time.perf_counter() - start
        kc_total += kc_seconds

        start = time.perf_counter()
        sv_samples = sv.sample(ansatz.circuit.resolve_parameters(resolver), samples_per_iteration,
                               seed=iteration)
        sv_seconds = time.perf_counter() - start
        sv_total += sv_seconds

        kc_mean = ansatz.objective_from_samples(kc_samples)
        sv_mean = ansatz.objective_from_samples(sv_samples)
        print(f"  iter {iteration}: gamma={gamma:.2f} beta={beta:.2f}  "
              f"KC {kc_seconds:.3f}s (obj {kc_mean:+.2f})   "
              f"SV {sv_seconds:.3f}s (obj {sv_mean:+.2f})")

    print()
    print(f"Knowledge compilation: {compile_seconds:.2f} s compile + {kc_total:.2f} s sampling")
    print(f"State vector         : {sv_total:.2f} s total (no reusable compilation)")
    print("The compile cost is amortised across every additional iteration; per-iteration")
    print("sampling touches only the compiled arithmetic circuit.")


if __name__ == "__main__":
    main()
