"""Quickstart: submit circuits through the unified Device/Job API.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CNOT,
    Circuit,
    DensityMatrixSimulator,
    H,
    KnowledgeCompilationSimulator,
    LineQubit,
    Rx,
    Symbol,
    capability_matrix,
    depolarize,
    device,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the two-qubit Bell-state circuit (the paper's running
    #    example) plus a non-Clifford and a noisy variant.
    # ------------------------------------------------------------------
    q0, q1 = LineQubit.range(2)
    bell = Circuit([H(q0), CNOT(q0, q1)])
    rotated = Circuit([H(q0), Rx(0.4)(q1), CNOT(q0, q1)])
    noisy = bell.with_noise(lambda: depolarize(0.05))
    print("Circuit:")
    print(bell.to_text_diagram())
    print()

    # ------------------------------------------------------------------
    # 2. One batched submission: device("auto") routes each item (Clifford
    #    -> stabilizer tableau, everything else -> a dense backend) and
    #    samples item i with seed + i.
    # ------------------------------------------------------------------
    job = device("auto").run([bell, rotated, noisy], repetitions=1000, seed=7)
    for row in job.result():
        print(f"item {row['index']} on {row['backend']:>12}: {row['counts']}")
    print()

    # ------------------------------------------------------------------
    # 3. A sweep spec: one parameterized circuit, many bindings, exact
    #    output distributions from one knowledge compile.
    # ------------------------------------------------------------------
    theta = Symbol("theta")
    ansatz = Circuit([H(q0), Rx(theta)(q1), CNOT(q0, q1)])
    points = [{"theta": value} for value in np.linspace(0.0, np.pi, 5)]
    sweep = device("kc").run(ansatz, params=points, observables=["probabilities"])
    print("P(11) along the sweep:", np.round(sweep.result().probabilities()[:, 3], 3))
    print()

    # ------------------------------------------------------------------
    # 4. The backends stay directly addressable: compile once with the
    #    knowledge-compilation simulator, cross-check noise against the
    #    density-matrix baseline.
    # ------------------------------------------------------------------
    kc = KnowledgeCompilationSimulator(seed=1)
    compiled = kc.compile_circuit(bell)
    print("KC amplitude <11| :", np.round(compiled.amplitude([1, 1]), 3))
    print("Compiled AC       :", compiled.compilation_metrics())
    kc_rho = kc.simulate_density_matrix(noisy).density_matrix
    dense_rho = DensityMatrixSimulator().simulate(noisy).density_matrix
    print("Noisy density matrices agree:", np.allclose(kc_rho, dense_rho))
    print()

    # ------------------------------------------------------------------
    # 5. The capability matrix behind device("auto")'s routing.
    # ------------------------------------------------------------------
    print("Backend capability matrix:")
    for row in capability_matrix():
        print(
            f"  {row['backend']:>21}: max_qubits={row['max_qubits']}, "
            f"noise={row['noise']}, mixed_state={row['mixed_state']}, "
            f"batched_sampling={row['batched_sampling']}"
        )


if __name__ == "__main__":
    main()
