"""Quickstart: build a circuit, simulate it with every backend, sample outputs.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CNOT,
    Circuit,
    DensityMatrixSimulator,
    H,
    KnowledgeCompilationSimulator,
    LineQubit,
    StateVectorSimulator,
    TensorNetworkSimulator,
    depolarize,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the two-qubit Bell-state circuit (the paper's running example).
    # ------------------------------------------------------------------
    q0, q1 = LineQubit.range(2)
    bell = Circuit([H(q0), CNOT(q0, q1)])
    print("Circuit:")
    print(bell.to_text_diagram())
    print()

    # ------------------------------------------------------------------
    # 2. Ideal simulation with three different backends.
    # ------------------------------------------------------------------
    state = StateVectorSimulator().simulate(bell)
    print("State vector      :", np.round(state.state_vector, 3))

    tensor_network = TensorNetworkSimulator()
    print("TN amplitude <11| :", np.round(tensor_network.amplitude(bell, [1, 1]), 3))

    kc = KnowledgeCompilationSimulator()
    compiled = kc.compile_circuit(bell)
    print("KC amplitude <11| :", np.round(compiled.amplitude([1, 1]), 3))
    print("Compiled AC       :", compiled.compilation_metrics())
    print()

    # ------------------------------------------------------------------
    # 3. Sampling from the final wavefunction.
    # ------------------------------------------------------------------
    samples = kc.sample(compiled, 1000, seed=1)
    print("KC Gibbs samples  :", samples.bitstring_counts())
    print()

    # ------------------------------------------------------------------
    # 4. Add noise: 5% depolarizing after every gate, compare with the
    #    density-matrix baseline.
    # ------------------------------------------------------------------
    noisy = bell.with_noise(lambda: depolarize(0.05))
    kc_rho = kc.simulate_density_matrix(noisy).density_matrix
    dense_rho = DensityMatrixSimulator().simulate(noisy).density_matrix
    print("Noisy density matrices agree:", np.allclose(kc_rho, dense_rho))
    print("Noisy output distribution   :", np.round(np.real(np.diag(dense_rho)), 4))


if __name__ == "__main__":
    main()
