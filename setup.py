"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-use-pep517 --no-build-isolation``
(or plain ``pip install -e .`` on a machine with wheel available) uses this
shim together with the metadata in ``pyproject.toml``.
"""

from setuptools import setup

setup()
