"""State-vector simulator (the reproduction's stand-in for Google qsim).

The simulator multiplies gate unitaries into a dense ``2^n`` state vector.
Ideal circuits are simulated exactly; noisy circuits are handled with the
quantum-trajectory method — each run samples one Kraus branch per channel
with the appropriate probability — which keeps memory at ``2^n`` at the cost
of per-trajectory variance.  The paper's Figure 8 baselines only exercise the
ideal path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..errors import UnsupportedCircuitError
from ..linalg.tensor_ops import apply_unitary_to_state, basis_state
from ..simulator.base import Simulator
from ..simulator.results import SampleResult, StateVectorResult


class StateVectorSimulator(Simulator):
    """Dense state-vector simulation of ideal (and trajectory-noisy) circuits."""

    name = "state_vector"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)

    # ------------------------------------------------------------------
    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> StateVectorResult:
        """Simulate an ideal circuit exactly.

        Args:
            circuit: The noise-free circuit to run.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order (first qubit = most
                significant bit); defaults to the circuit's sorted qubits.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`StateVectorResult` holding the final ``2^n`` vector.

        Raises:
            UnsupportedCircuitError: If the circuit contains noise
                operations; use :meth:`simulate_trajectory` or the
                density-matrix simulator for those.
        """
        if circuit.has_noise:
            raise UnsupportedCircuitError(
                "StateVectorSimulator.simulate only supports ideal circuits; "
                "use simulate_trajectory for noisy circuits"
            )
        qubits, state = self._run(circuit, resolver, qubit_order, initial_state, rng=None)
        return StateVectorResult(qubits, state)

    def simulate_trajectory(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
        seed: Optional[int] = None,
    ) -> StateVectorResult:
        """Simulate one quantum trajectory of a (possibly noisy) circuit.

        Each noise channel samples one Kraus branch with the Born
        probability; the returned state is a single stochastic unravelling,
        so averaging many trajectories converges to the channel semantics.

        Args:
            circuit: The circuit to run (noise channels allowed).
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            initial_state: Computational-basis index of the starting state.
            seed: Per-call seed; ``None`` draws branch choices from the
                backend's default generator.

        Returns:
            A :class:`StateVectorResult` for this trajectory's final state.

        Raises:
            ValueError: If every Kraus branch of some channel has zero
                probability on the current state.
        """
        rng = self._rng(seed)
        qubits, state = self._run(circuit, resolver, qubit_order, initial_state, rng=rng)
        return StateVectorResult(qubits, state)

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw samples from the final wavefunction.

        For ideal circuits the state is computed once and sampled
        ``repetitions`` times.  For noisy circuits each sample comes from an
        independent trajectory (unbiased but ``repetitions`` full runs).

        Args:
            circuit: The circuit to run.
            repetitions: Number of bitstring samples to draw.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            seed: Per-call seed for reproducibility in isolation; ``None``
                draws from the backend's default generator.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings.
        """
        rng = self._rng(seed)
        if not circuit.has_noise:
            result = self.simulate(circuit, resolver, qubit_order, initial_state)
            return result.sample(repetitions, rng)
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        samples: List[Tuple[int, ...]] = []
        for _ in range(repetitions):
            trajectory = StateVectorResult(
                qubits, self._run(circuit, resolver, qubits, initial_state, rng=rng)[1]
            )
            samples.extend(trajectory.sample(1, rng).samples)
        return SampleResult(qubits, samples)

    # ------------------------------------------------------------------
    def _run(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
        rng: Optional[np.random.Generator],
    ) -> Tuple[List[Qubit], np.ndarray]:
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        num_qubits = len(qubits)
        state = basis_state(initial_state, num_qubits)
        for op in circuit.all_operations():
            if op.is_measurement:
                continue
            targets = [index_of[q] for q in op.qubits]
            if isinstance(op, NoiseOperation):
                if rng is None:
                    raise ValueError("noise operation encountered in ideal simulation")
                state = self._apply_noise_trajectory(state, op, targets, num_qubits, resolver, rng)
            else:
                state = apply_unitary_to_state(state, op.unitary(resolver), targets, num_qubits)
        return qubits, state

    @staticmethod
    def _apply_noise_trajectory(
        state: np.ndarray,
        op: NoiseOperation,
        targets: Sequence[int],
        num_qubits: int,
        resolver: Optional[ParamResolver],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample one Kraus branch with probability <psi|E†E|psi> and renormalise."""
        operators = op.kraus_operators(resolver)
        branch_states = []
        branch_probabilities = []
        for kraus in operators:
            candidate = apply_unitary_to_state(state, kraus, targets, num_qubits)
            probability = float(np.real(np.vdot(candidate, candidate)))
            branch_states.append(candidate)
            branch_probabilities.append(probability)
        probabilities = np.array(branch_probabilities)
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("all Kraus branches have zero probability")
        probabilities = probabilities / total
        choice = int(rng.choice(len(operators), p=probabilities))
        chosen = branch_states[choice]
        norm = np.linalg.norm(chosen)
        return chosen / norm
