"""Dense state-vector simulator backend (qsim stand-in)."""

from .simulator import StateVectorSimulator

__all__ = ["StateVectorSimulator"]
