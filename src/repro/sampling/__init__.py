"""Sampling utilities: Gibbs MCMC over compiled circuits, ideal sampling, metrics."""

from .gibbs import DEFAULT_MAX_CHAINS, GibbsSampler
from .ideal import ideal_sample_from_distribution, ideal_sample_from_state_vector
from .metrics import (
    chi_squared_statistic,
    empirical_distribution,
    kl_divergence,
    reverse_kl_divergence,
    total_variation_distance,
)

__all__ = [
    "DEFAULT_MAX_CHAINS",
    "GibbsSampler",
    "ideal_sample_from_distribution",
    "ideal_sample_from_state_vector",
    "kl_divergence",
    "reverse_kl_divergence",
    "total_variation_distance",
    "chi_squared_statistic",
    "empirical_distribution",
]
