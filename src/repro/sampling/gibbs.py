"""Gibbs sampling from compiled arithmetic circuits (Section 3.3.2).

The sampler walks a Markov chain over the joint space of retained variables
(final qubit states and noise-branch selectors).  The stationary distribution
is proportional to the squared magnitude of the amplitude of the full
assignment, so the marginal over the qubit bits is exactly the measurement
distribution of the noisy circuit.

Each step resamples one retained *bit* from its conditional distribution.  A
single upward + downward differential pass over the arithmetic circuit
yields the amplitude of every single-bit change at once, so the per-step
cost is linear in the size of the compiled circuit.  An occasional
independence (full-redraw) Metropolis move keeps the chain ergodic on
circuits whose amplitude distribution contains exact zeros (Clifford-like
circuits), without changing the stationary distribution.

Chain ensembles
---------------
The sampler runs an *ensemble* of independent chains in lockstep.  Chain
state lives in a ``(num_chains, num_retained_variables)`` integer matrix,
and every move is batched through the arithmetic circuit's batch axis:

* the initial-state search redraws all still-zero-amplitude chains together;
* one batched upward + downward pass resamples one bit per chain — each
  chain picks its *own* random bit, since the differential pass yields the
  conditional of every bit simultaneously;
* independence moves propose a full redraw for every chain at once (noise
  selectors drawn proportionally to their CAT magnitudes, with the exact
  Metropolis–Hastings correction) and reuse the cached current-state
  weights, so only the proposals need a circuit pass;
* the equilibrated ensemble persists across ``sample()`` calls, so repeated
  draws — the variational-loop usage — skip burn-in entirely.

``sample(n)`` therefore costs ``O(burn_in + n / num_chains)`` batched passes
instead of ``O(n)`` scalar ones, while each chain remains a textbook
random-scan Gibbs chain with the same stationary distribution.  The scalar
``step`` / ``sweep`` / ``independence_move`` API is kept as a one-chain
wrapper over the batched machinery.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.parameters import ParamResolver
from ..simulator.results import SampleResult

DEFAULT_MAX_CHAINS = 64


class RetainedBit:
    """One propositional bit of a retained variable."""

    def __init__(self, node_name: str, bit_index: int, variable: int, width: int):
        self.node_name = node_name
        self.bit_index = bit_index  # 0 = most significant bit
        self.variable = variable
        self.width = width

    def __repr__(self) -> str:
        return f"RetainedBit({self.node_name!r}, bit={self.bit_index}, var={self.variable})"


class GibbsSampler:
    """Markov-chain Monte Carlo sampler over a compiled circuit's outputs.

    Runs ``num_chains`` independent chains in lockstep (see the module
    docstring); the scalar single-chain methods are thin wrappers around the
    batched ones.
    """

    def __init__(
        self,
        compiled,
        resolver: Optional[ParamResolver] = None,
        rng: Optional[np.random.Generator] = None,
        max_restart_attempts: int = 256,
        restart_probability: float = 0.1,
    ):
        self.compiled = compiled
        self.resolver = resolver
        self.rng = rng or np.random.default_rng()
        self.max_restart_attempts = max_restart_attempts
        self.restart_probability = float(restart_probability)

        self.variables = compiled.retained_variables
        self.bits: List[RetainedBit] = []
        for variable in self.variables:
            for bit_index, bit_var in enumerate(variable.bit_vars):
                if compiled.encoding.forced_value(bit_var) is None:
                    self.bits.append(
                        RetainedBit(variable.node_name, bit_index, bit_var, variable.width)
                    )
        self._variable_by_name = {variable.node_name: variable for variable in self.variables}
        self._column_by_name = {
            variable.node_name: column for column, variable in enumerate(self.variables)
        }
        self._cardinalities = np.asarray(
            [variable.cardinality for variable in self.variables], dtype=np.int64
        )

        # Bit masks fixing the CNF-forced bits of each variable's value.
        num_variables = len(self.variables)
        self._forced_clear = np.zeros(num_variables, dtype=np.int64)
        self._forced_set = np.zeros(num_variables, dtype=np.int64)
        for column, variable in enumerate(self.variables):
            for position, bit_var in enumerate(variable.bit_vars):
                forced = compiled.encoding.forced_value(bit_var)
                if forced is None:
                    continue
                shift = variable.width - 1 - position
                self._forced_clear[column] |= 1 << shift
                if forced:
                    self._forced_set[column] |= 1 << shift

        # Per-free-bit lookup arrays: CNF variable, state column and bit shift,
        # so a batched pass can resample a *different* bit on every chain.
        self._bit_vars = np.asarray([bit.variable for bit in self.bits], dtype=np.int64)
        self._bit_columns = np.asarray(
            [self._column_by_name[bit.node_name] for bit in self.bits], dtype=np.int64
        )
        self._bit_shifts = np.asarray(
            [bit.width - 1 - bit.bit_index for bit in self.bits], dtype=np.int64
        )
        self._bit_index_by_id = {id(bit): index for index, bit in enumerate(self.bits)}
        self._transition_count = 0
        # Warm chain ensemble carried across sample() calls (see sample()).
        self._ensemble: Optional[Tuple[np.ndarray, np.ndarray]] = None

        self._literal_batch: Optional[np.ndarray] = None
        self._needs_reburn = False
        self._bind_parameters(resolver)

    def rebind(self, resolver: Optional[ParamResolver]) -> None:
        """Re-bind numeric parameters without discarding the chain ensemble.

        The warm chains were equilibrated for the *previous* binding; the next
        ``sample()`` call therefore repeats its burn-in rounds before
        recording (cheap for the smooth parameter updates of a variational
        loop, where the old ensemble is already close to the new stationary
        distribution) instead of paying a full cold start.
        """
        self.resolver = resolver
        self._bind_parameters(resolver)
        self._needs_reburn = self._ensemble is not None

    def _bind_parameters(self, resolver: Optional[ParamResolver]) -> None:
        self._base_literal_values, self._constant = self.compiled.base_literal_values(resolver)
        # Rebound cache views translate caller resolvers into the compiled
        # template's canonical symbols; the proposal-weight table reads below
        # address the template's nodes directly, so they need the translated
        # resolver (plain compiles translate to the identity).
        translate = getattr(self.compiled, "effective_resolver", None)
        if translate is not None:
            resolver = translate(resolver)

        # Independence-move proposal: per-variable categorical weights over the
        # forced-consistent values.  Final qubits are proposed uniformly; noise
        # selectors are proposed proportionally to their mean squared CAT
        # magnitude (mixed with a uniform floor for ergodicity).  A uniform
        # joint proposal would need ~|support| moves to first visit the
        # dominant noise branch, which is what makes naive restarts mix slowly;
        # the Metropolis–Hastings ratio below corrects for the bias exactly.
        compiled = self.compiled
        self._proposal_weights: List[np.ndarray] = []
        self._proposal_log_weights: List[np.ndarray] = []
        self._proposal_cumulative: List[np.ndarray] = []
        for column, variable in enumerate(self.variables):
            size = 2 ** variable.width
            valid = np.zeros(size, dtype=bool)
            for value in range(variable.cardinality):
                if (value & self._forced_clear[column]) == self._forced_set[column]:
                    valid[value] = True
            weights = np.zeros(size, dtype=float)
            if variable.kind == "noise":
                # The selector's own CPT is structural (all ones); the Kraus
                # branch magnitudes live in the CPTs of its children (the
                # post-noise qubit-state nodes), along the parent axis that
                # corresponds to the selector.
                try:
                    branch_weights = np.ones(variable.cardinality, dtype=float)
                    for node in compiled.network.nodes:
                        if variable.node_name not in node.parents:
                            continue
                        axis = node.parents.index(variable.node_name)
                        table = np.abs(node.table(resolver)) ** 2
                        other_axes = tuple(
                            a for a in range(table.ndim) if a != axis
                        )
                        branch_weights = branch_weights * table.mean(axis=other_axes)
                    weights[: variable.cardinality] = branch_weights
                except (KeyError, TypeError, ValueError) as error:
                    warnings.warn(
                        f"could not derive independence-proposal weights for "
                        f"{variable.node_name!r} ({error}); falling back to a "
                        "uniform proposal (slower mixing, same distribution)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            weights[~valid] = 0.0
            total = weights.sum()
            uniform = valid / valid.sum()
            if total > 0.0:
                weights = 0.75 * weights / total + 0.25 * uniform
            else:
                weights = uniform
            with np.errstate(divide="ignore"):
                log_weights = np.log(weights)
            self._proposal_weights.append(weights)
            self._proposal_log_weights.append(log_weights)
            self._proposal_cumulative.append(np.cumsum(weights))

    # ------------------------------------------------------------------
    # Batched state machinery
    # ------------------------------------------------------------------
    def _literal_buffer(self, num_chains: int) -> np.ndarray:
        """Reusable ``(C, num_vars + 1, 2)`` literal-value buffer."""
        buffer = self._literal_batch
        if buffer is None or buffer.shape[0] != num_chains:
            buffer = np.empty(
                (num_chains,) + self._base_literal_values.shape, dtype=complex
            )
            self._literal_batch = buffer
        buffer[...] = self._base_literal_values
        return buffer

    def _bind_states(self, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fill the literal buffer with evidence for every chain's state."""
        buffer = self._literal_buffer(states.shape[0])
        zero_rows = self.compiled.apply_evidence_batch(buffer, states)
        return buffer, zero_rows

    def _amplitudes(self, states: np.ndarray) -> np.ndarray:
        """Amplitude of each chain's full assignment (one batched pass)."""
        buffer, zero_rows = self._bind_states(states)
        amplitudes = self.compiled.arithmetic_circuit.evaluate_batch(buffer)
        amplitudes *= self._constant
        amplitudes[zero_rows] = 0.0
        return amplitudes

    def _random_states(self, num_chains: int) -> np.ndarray:
        """Draw every chain's state from the independence-proposal distribution.

        CNF-forced bits are respected by construction: inconsistent values
        carry zero proposal weight.
        """
        states = np.empty((num_chains, len(self.variables)), dtype=np.int64)
        for column in range(len(self.variables)):
            cumulative = self._proposal_cumulative[column]
            draws = self.rng.random(num_chains) * cumulative[-1]
            states[:, column] = np.searchsorted(cumulative, draws, side="right")
        return states

    def _proposal_log_density(self, states: np.ndarray) -> np.ndarray:
        """log q(state) of the independence proposal, per chain."""
        log_density = np.zeros(states.shape[0], dtype=float)
        for column in range(len(self.variables)):
            log_density += self._proposal_log_weights[column][states[:, column]]
        return log_density

    def initial_states(self, num_chains: int) -> Tuple[np.ndarray, np.ndarray]:
        """Find a non-zero-probability starting assignment for every chain.

        Returns ``(states, weights)`` where ``weights`` holds each chain's
        squared amplitude; zero-probability chains are redrawn together, one
        batched pass per attempt round.
        """
        states = self._random_states(num_chains)
        weights = np.abs(self._amplitudes(states)) ** 2
        for _ in range(self.max_restart_attempts):
            stuck = weights <= 0.0
            if not stuck.any():
                return states, weights
            redrawn = self._random_states(int(stuck.sum()))
            states[stuck] = redrawn
            weights[stuck] = np.abs(self._amplitudes(redrawn)) ** 2
        raise RuntimeError(
            "could not find a non-zero-probability initial state for Gibbs sampling"
        )

    def _resample(
        self,
        states: np.ndarray,
        bit_indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Resample one (per-chain) bit on every chain in one differential pass.

        ``bit_indices`` selects an entry of :attr:`bits` per chain; the single
        batched upward + downward pass yields every chain's conditional for
        *its own* bit, so chains need not resample the same coordinate.
        Mutates ``states`` (and ``weights``, if given) in place and returns
        each chain's new squared-amplitude weight.
        """
        buffer, zero_rows = self._bind_states(states)
        _, derivatives = self.compiled.arithmetic_circuit.evaluate_with_derivatives_batch(buffer)
        rows = np.arange(states.shape[0])
        variables = self._bit_vars[bit_indices]
        amplitude_one = derivatives[rows, variables, 1] * self._constant
        amplitude_zero = derivatives[rows, variables, 0] * self._constant
        weight_one = np.abs(amplitude_one) ** 2
        weight_zero = np.abs(amplitude_zero) ** 2
        weight_one[zero_rows] = 0.0
        weight_zero[zero_rows] = 0.0
        total = weight_one + weight_zero

        probability_one = np.divide(
            weight_one, total, out=np.zeros_like(weight_one), where=total > 0.0
        )
        proposed_bits = (self.rng.random(states.shape[0]) < probability_one).astype(np.int64)

        columns = self._bit_columns[bit_indices]
        shifts = self._bit_shifts[bit_indices]
        current = states[rows, columns]
        current_bits = (current >> shifts) & 1
        candidates = (current & ~(np.int64(1) << shifts)) | (proposed_bits << shifts)
        # Log-encoded padding values (never satisfiable) keep the old value,
        # as do chains whose conditional has no mass at all.
        valid = (total > 0.0) & (candidates < self._cardinalities[columns])
        states[rows, columns] = np.where(valid, candidates, current)

        effective_bits = np.where(valid, proposed_bits, current_bits)
        new_weights = np.where(effective_bits == 1, weight_one, weight_zero)
        if weights is not None:
            weights[...] = new_weights
        return new_weights

    def step_batch(
        self, states: np.ndarray, bit: RetainedBit, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Resample the same ``bit`` across every chain in one batched pass."""
        index = self._bit_index_by_id.get(id(bit))
        if index is None:
            matches = [
                i
                for i, candidate in enumerate(self.bits)
                if candidate.node_name == bit.node_name
                and candidate.bit_index == bit.bit_index
            ]
            if not matches:
                raise ValueError(f"{bit!r} is not a free retained bit of this sampler")
            index = matches[0]
        bit_indices = np.full(states.shape[0], index, dtype=np.int64)
        return self._resample(states, bit_indices, weights)

    def sweep_batch(self, states: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """One systematic-scan sweep over every retained bit, all chains at once."""
        new_weights = weights
        for bit in self.bits:
            new_weights = self.step_batch(states, bit, weights)
        if new_weights is None:
            new_weights = np.abs(self._amplitudes(states)) ** 2
        return new_weights

    def independence_move_batch(self, states: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Metropolis–Hastings full-redraw move for every chain at once.

        Proposals are drawn from the weighted independence distribution (see
        ``__init__``); the acceptance ratio ``pi(y) q(x) / (pi(x) q(y))``
        makes the move exact.  ``weights`` must hold the chains' current
        squared amplitudes (cached by the caller), so only the proposals need
        a circuit pass.  Mutates ``states``/``weights`` in place.
        """
        proposals = self._random_states(states.shape[0])
        proposal_weights = np.abs(self._amplitudes(proposals)) ** 2
        hastings = np.exp(
            self._proposal_log_density(states) - self._proposal_log_density(proposals)
        )
        ratio = np.divide(
            proposal_weights * hastings,
            weights,
            out=np.ones_like(proposal_weights),
            where=weights > 0.0,
        )
        accept = (proposal_weights > 0.0) & (
            (weights <= 0.0) | (self.rng.random(states.shape[0]) < np.minimum(1.0, ratio))
        )
        states[accept] = proposals[accept]
        weights[accept] = proposal_weights[accept]
        return weights

    def _transition_batch(self, states: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """One lockstep MCMC transition across the whole ensemble.

        Every ``round(1 / restart_probability)``-th transition is an
        ensemble-wide independence move; every other transition resamples an
        independently chosen random bit on each chain.  The deterministic
        interleaving keeps the move schedule identical for every chain (one
        batched pass per transition) without the shared-coin-flip schedule
        randomness that would correlate otherwise-independent chains.
        """
        self._transition_count += 1
        if self.restart_probability > 0.0:
            interval = max(1, int(round(1.0 / self.restart_probability)))
            if self._transition_count % interval == 0:
                return self.independence_move_batch(states, weights)
        if not self.bits:
            return weights
        bit_indices = self.rng.integers(0, len(self.bits), size=states.shape[0])
        return self._resample(states, bit_indices, weights)

    # ------------------------------------------------------------------
    # Scalar (single-chain) API — one-chain wrappers kept for compatibility
    # ------------------------------------------------------------------
    def _encode_state(self, state: Dict[str, int]) -> np.ndarray:
        row = np.zeros((1, len(self.variables)), dtype=np.int64)
        for column, variable in enumerate(self.variables):
            # Unlike the old dict-based path there is no way to leave a
            # variable unbound (marginalized) in the ensemble state matrix,
            # so a partial state is an error rather than silent evidence 0.
            if variable.node_name not in state:
                raise ValueError(
                    f"state is missing retained variable {variable.node_name!r}"
                )
            row[0, column] = int(state[variable.node_name])
        return row

    def _decode_state(self, row: np.ndarray) -> Dict[str, int]:
        return {
            variable.node_name: int(row[column])
            for column, variable in enumerate(self.variables)
        }

    def _literal_values_for(self, state: Dict[str, int]) -> np.ndarray:
        literal_values = self._base_literal_values.copy()
        self.compiled.apply_evidence(literal_values, state)
        return literal_values

    def _amplitude(self, state: Dict[str, int]) -> complex:
        return complex(self._amplitudes(self._encode_state(state))[0])

    def _random_state(self) -> Dict[str, int]:
        return self._decode_state(self._random_states(1)[0])

    def initial_state(self) -> Dict[str, int]:
        """Find a starting assignment with non-zero probability."""
        states, _ = self.initial_states(1)
        return self._decode_state(states[0])

    def step(self, state: Dict[str, int], bit: RetainedBit) -> Dict[str, int]:
        """Resample one retained bit from its conditional distribution."""
        states = self._encode_state(state)
        self.step_batch(states, bit)
        return self._decode_state(states[0])

    def sweep(self, state: Dict[str, int]) -> Dict[str, int]:
        """One systematic-scan sweep over every retained bit."""
        states = self._encode_state(state)
        self.sweep_batch(states)
        return self._decode_state(states[0])

    def independence_move(self, state: Dict[str, int]) -> Dict[str, int]:
        """Metropolis–Hastings full-redraw move.

        Proposals come from the weighted independence distribution (noise
        selectors proportional to their CAT magnitudes, finals uniform); the
        acceptance ratio includes the corresponding Hastings correction.
        """
        states = self._encode_state(state)
        weights = np.abs(self._amplitudes(states)) ** 2
        self.independence_move_batch(states, weights)
        return self._decode_state(states[0])

    # ------------------------------------------------------------------
    def sample(
        self,
        num_samples: int,
        burn_in_sweeps: int = 4,
        steps_per_sample: int = 1,
        initial_state: Optional[Dict[str, int]] = None,
        num_chains: Optional[int] = None,
    ) -> SampleResult:
        """Draw ``num_samples`` output bitstrings from a lockstep chain ensemble.

        ``burn_in_sweeps`` full systematic sweeps are discarded first (warm-up
        / mixing, Section 3.3.3); afterwards ``steps_per_sample`` batched
        transitions separate consecutive recording rounds, and every round
        records one sample per chain.  The default ensemble size is
        ``min(num_samples, DEFAULT_MAX_CHAINS)``; ``num_chains=1`` recovers
        the paper's single-chain cost model of one upward + downward pass per
        drawn sample.

        The equilibrated ensemble persists on the sampler: a later
        ``sample()`` call with the same ``num_chains`` continues the chains
        where they left off (exactly like extending one long MCMC run) and
        skips the initial-state search and burn-in, so repeated calls — the
        variational loop's usage — pay only the recording passes.

        Args:
            num_samples: Number of output bitstrings to record
                (``<= 0`` returns an empty result).
            burn_in_sweeps: Full systematic sweeps discarded before
                recording (skipped when a warm ensemble is available).
            steps_per_sample: Batched transitions between recording rounds.
            initial_state: Optional explicit starting assignment (node name
                -> value) for every chain; forces a cold start.
            num_chains: Lockstep ensemble size (clamped to
                ``[1, num_samples]``).

        Returns:
            A :class:`SampleResult` with ``num_samples`` bitstrings over the
            circuit's final qubits.

        Raises:
            RuntimeError: If no non-zero-amplitude initial state is found
                within the restart budget (pathological distributions).
        """
        final_names = [variable.node_name for variable in self.compiled.final_variables]
        if num_samples <= 0:
            return SampleResult(self.compiled.qubits, [])
        if num_chains is None:
            num_chains = min(num_samples, DEFAULT_MAX_CHAINS)
        num_chains = max(1, min(int(num_chains), num_samples))

        warm = (
            initial_state is None
            and self._ensemble is not None
            and self._ensemble[0].shape[0] == num_chains
        )
        if warm:
            states, weights = self._ensemble
            if self._needs_reburn:
                # Parameters were re-bound (rebind()): the chains are close
                # to, but not at, the new stationary distribution — repeat
                # the burn-in rounds before recording.
                weights = np.abs(self._amplitudes(states)) ** 2
                for _ in range(burn_in_sweeps):
                    weights = self.sweep_batch(states, weights)
                    if self.restart_probability > 0.0:
                        weights = self.independence_move_batch(states, weights)
                self._needs_reburn = False
        else:
            if initial_state is not None:
                states = np.repeat(self._encode_state(initial_state), num_chains, axis=0)
                weights = np.abs(self._amplitudes(states)) ** 2
            else:
                states, weights = self.initial_states(num_chains)

            # An explicit initial_state is the caller's chosen start — skip
            # the equilibration redraws that would move the chains off it.
            if initial_state is None and num_chains > 1 and self.restart_probability > 0.0:
                # Cold-start equilibration: a chain contributes only
                # ``num_samples / num_chains`` samples, so unlike the
                # single-chain case there is no long trajectory for the
                # ergodic average to forget the initial transient over.
                # Independence rounds (one cheap upward pass each) run until
                # every chain has accepted several full redraws — a direct
                # proxy for having forgotten its initial state — bounded for
                # chains stuck in high-probability modes that rarely leave.
                accepted = np.zeros(num_chains, dtype=np.int64)
                for _ in range(16 * max(4, int(round(1.0 / self.restart_probability)))):
                    if accepted.min() >= 4:
                        break
                    previous = states.copy()
                    weights = self.independence_move_batch(states, weights)
                    accepted += np.any(states != previous, axis=1)

            # Each burn-in round is a systematic sweep plus (when enabled) one
            # independence move: single-bit moves alone cannot cross
            # zero-amplitude regions and independence rounds cannot polish
            # within-branch detail, so the two phases complement each other.
            for _ in range(burn_in_sweeps):
                weights = self.sweep_batch(states, weights)
                if self.restart_probability > 0.0:
                    weights = self.independence_move_batch(states, weights)
            # The freshly built ensemble is equilibrated for the current
            # binding, so any pending rebind() re-burn is moot.
            self._needs_reburn = False

        rounds = -(-num_samples // num_chains)
        # Final qubit variables occupy the leading state columns.
        num_final = len(final_names)
        recorded: List[np.ndarray] = []
        for _ in range(rounds):
            for _ in range(max(1, steps_per_sample)):
                weights = self._transition_batch(states, weights)
            recorded.append(states[:, :num_final].copy())
        self._ensemble = (states, weights)
        stacked = np.concatenate(recorded, axis=0)[:num_samples]
        samples = [tuple(int(value) for value in row) for row in stacked]
        return SampleResult(self.compiled.qubits, samples)
