"""Gibbs sampling from compiled arithmetic circuits (Section 3.3.2).

The sampler walks a Markov chain over the joint space of retained variables
(final qubit states and noise-branch selectors).  The stationary distribution
is proportional to the squared magnitude of the amplitude of the full
assignment, so the marginal over the qubit bits is exactly the measurement
distribution of the noisy circuit.

Each step resamples one retained *bit* from its conditional distribution.  A
single upward + downward differential pass over the arithmetic circuit
yields the amplitude of every single-bit change at once, so the per-step
cost is linear in the size of the compiled circuit.  An occasional
independence (full-redraw) Metropolis move keeps the chain ergodic on
circuits whose amplitude distribution contains exact zeros (Clifford-like
circuits), without changing the stationary distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.parameters import ParamResolver
from ..simulator.results import SampleResult


class RetainedBit:
    """One propositional bit of a retained variable."""

    def __init__(self, node_name: str, bit_index: int, variable: int, width: int):
        self.node_name = node_name
        self.bit_index = bit_index  # 0 = most significant bit
        self.variable = variable
        self.width = width

    def __repr__(self) -> str:
        return f"RetainedBit({self.node_name!r}, bit={self.bit_index}, var={self.variable})"


class GibbsSampler:
    """Markov-chain Monte Carlo sampler over a compiled circuit's outputs."""

    def __init__(
        self,
        compiled,
        resolver: Optional[ParamResolver] = None,
        rng: Optional[np.random.Generator] = None,
        max_restart_attempts: int = 256,
        restart_probability: float = 0.1,
    ):
        self.compiled = compiled
        self.resolver = resolver
        self.rng = rng or np.random.default_rng()
        self.max_restart_attempts = max_restart_attempts
        self.restart_probability = float(restart_probability)

        self.variables = compiled.retained_variables
        self.bits: List[RetainedBit] = []
        for variable in self.variables:
            for bit_index, bit_var in enumerate(variable.bit_vars):
                if compiled.encoding.forced_value(bit_var) is None:
                    self.bits.append(
                        RetainedBit(variable.node_name, bit_index, bit_var, variable.width)
                    )
        self._variable_by_name = {variable.node_name: variable for variable in self.variables}
        self._base_literal_values, self._constant = compiled.base_literal_values(resolver)

    # ------------------------------------------------------------------
    def _literal_values_for(self, state: Dict[str, int]) -> np.ndarray:
        literal_values = self._base_literal_values.copy()
        self.compiled.apply_evidence(literal_values, state)
        return literal_values

    def _amplitude(self, state: Dict[str, int]) -> complex:
        literal_values = self._base_literal_values.copy()
        shortcut = self.compiled.apply_evidence(literal_values, state)
        if shortcut is not None:
            return shortcut
        return self.compiled.arithmetic_circuit.evaluate(literal_values) * self._constant

    def _random_state(self) -> Dict[str, int]:
        state: Dict[str, int] = {}
        for variable in self.variables:
            value = int(self.rng.integers(0, variable.cardinality))
            # Respect any bits the encoding forced (e.g. structurally
            # impossible outcomes removed by unit resolution).
            bits = variable.bit_values(value)
            for position, bit_var in enumerate(variable.bit_vars):
                forced = self.compiled.encoding.forced_value(bit_var)
                if forced is not None:
                    bits[position] = int(forced)
            state[variable.node_name] = variable.value_from_bits(bits)
        return state

    def initial_state(self) -> Dict[str, int]:
        """Find a starting assignment with non-zero probability."""
        state = self._random_state()
        for _ in range(self.max_restart_attempts):
            if abs(self._amplitude(state)) > 0:
                return state
            state = self._random_state()
        raise RuntimeError(
            "could not find a non-zero-probability initial state for Gibbs sampling"
        )

    # ------------------------------------------------------------------
    def step(self, state: Dict[str, int], bit: RetainedBit) -> Dict[str, int]:
        """Resample one retained bit from its conditional distribution."""
        literal_values = self._literal_values_for(state)
        _, derivatives = self.compiled.arithmetic_circuit.evaluate_with_derivatives(literal_values)

        amplitude_one = derivatives[bit.variable, 1] * self._constant
        amplitude_zero = derivatives[bit.variable, 0] * self._constant
        weight_one = abs(amplitude_one) ** 2
        weight_zero = abs(amplitude_zero) ** 2
        total = weight_one + weight_zero
        if total <= 0.0:
            return state
        new_bit = 1 if self.rng.random() < weight_one / total else 0

        variable = self._variable_by_name[bit.node_name]
        bits = variable.bit_values(state[bit.node_name])
        bits[bit.bit_index] = new_bit
        new_value = variable.value_from_bits(bits)
        if new_value >= variable.cardinality:
            # Log-encoded padding value (never satisfiable); keep the old value.
            return state
        new_state = dict(state)
        new_state[bit.node_name] = new_value
        return new_state

    def sweep(self, state: Dict[str, int]) -> Dict[str, int]:
        """One systematic-scan sweep over every retained bit."""
        for bit in self.bits:
            state = self.step(state, bit)
        return state

    def independence_move(self, state: Dict[str, int]) -> Dict[str, int]:
        """Metropolis–Hastings move with a uniform full-redraw proposal."""
        proposal = self._random_state()
        current_weight = abs(self._amplitude(state)) ** 2
        proposal_weight = abs(self._amplitude(proposal)) ** 2
        if proposal_weight <= 0.0:
            return state
        if current_weight <= 0.0 or self.rng.random() < min(1.0, proposal_weight / current_weight):
            return proposal
        return state

    def _transition(self, state: Dict[str, int]) -> Dict[str, int]:
        """One MCMC transition: usually a single-bit Gibbs update, occasionally a restart."""
        if self.restart_probability > 0.0 and self.rng.random() < self.restart_probability:
            return self.independence_move(state)
        if not self.bits:
            return state
        bit = self.bits[int(self.rng.integers(0, len(self.bits)))]
        return self.step(state, bit)

    # ------------------------------------------------------------------
    def sample(
        self,
        num_samples: int,
        burn_in_sweeps: int = 4,
        steps_per_sample: int = 1,
        initial_state: Optional[Dict[str, int]] = None,
    ) -> SampleResult:
        """Draw ``num_samples`` output bitstrings.

        ``burn_in_sweeps`` full systematic sweeps are discarded first (warm-up
        / mixing, Section 3.3.3); afterwards ``steps_per_sample`` single-bit
        transitions separate consecutive recorded samples.  The paper's
        per-sample cost model corresponds to ``steps_per_sample=1`` — one
        upward + downward pass over the arithmetic circuit per drawn sample.
        """
        state = dict(initial_state) if initial_state is not None else self.initial_state()

        for _ in range(burn_in_sweeps):
            state = self.sweep(state)

        samples: List[Tuple[int, ...]] = []
        final_names = [variable.node_name for variable in self.compiled.final_variables]
        for _ in range(num_samples):
            for _ in range(max(1, steps_per_sample)):
                state = self._transition(state)
            samples.append(tuple(state[name] for name in final_names))
        return SampleResult(self.compiled.qubits, samples)
