"""Ideal (direct) sampling from a fully known output distribution.

Used as the reference sampler in the paper's Figure 7: the error of Gibbs
sampling is compared against direct multinomial draws from the exact
measurement distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import index_to_bits
from ..simulator.results import SampleResult


def ideal_sample_from_distribution(
    probabilities: np.ndarray,
    num_samples: int,
    qubits: Sequence[Qubit],
    rng: Optional[np.random.Generator] = None,
) -> SampleResult:
    """Draw samples directly from an exact probability distribution."""
    rng = rng or np.random.default_rng()
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 1:
        raise ValueError("probabilities must be a flat array over basis states")
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("probabilities must have positive total mass")
    normalized = probabilities / total
    num_qubits = len(qubits)
    if len(normalized) != 2 ** num_qubits:
        raise ValueError("distribution length does not match qubit count")
    indices = rng.choice(len(normalized), size=num_samples, p=normalized)
    samples = [index_to_bits(int(i), num_qubits) for i in indices]
    return SampleResult(qubits, samples)


def ideal_sample_from_state_vector(
    state_vector: np.ndarray,
    num_samples: int,
    qubits: Sequence[Qubit],
    rng: Optional[np.random.Generator] = None,
) -> SampleResult:
    """Draw samples from |amplitude|^2 of a state vector."""
    return ideal_sample_from_distribution(
        np.abs(np.asarray(state_vector)) ** 2, num_samples, qubits, rng
    )
