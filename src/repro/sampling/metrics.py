"""Distribution-comparison metrics for sampling-accuracy experiments.

The paper (Figure 7) quantifies sampling error with the Kullback-Leibler
divergence between the exact measurement distribution and the empirical
distribution of the drawn samples, chosen because it discounts outcomes the
sampler never draws from low-probability basis states.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..linalg.tensor_ops import bitstrings_to_indices


def _validated(p: Sequence[float], q: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ValueError("distributions must have the same shape")
    if p_arr.sum() <= 0 or q_arr.sum() <= 0:
        raise ValueError("distributions must have positive mass")
    return p_arr / p_arr.sum(), q_arr / q_arr.sum()


def kl_divergence(exact: Sequence[float], empirical: Sequence[float]) -> float:
    """KL(exact || empirical), in nats.

    Follows the paper's convention of measuring how well the empirical
    (sampled) distribution covers the exact one.  Empirical zeros where the
    exact distribution has mass contribute a large but finite penalty by
    flooring the empirical distribution at one pseudo-count equivalent.
    """
    p, q = _validated(exact, empirical)
    floor = 1.0 / max(len(q) * 1e6, 1.0)
    q = np.maximum(q, floor)
    q = q / q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def reverse_kl_divergence(exact: Sequence[float], empirical: Sequence[float]) -> float:
    """KL(empirical || exact): penalises samples drawn where the exact mass is zero."""
    p, q = _validated(empirical, exact)
    floor = 1.0 / max(len(q) * 1e6, 1.0)
    q = np.maximum(q, floor)
    q = q / q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def total_variation_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Half the L1 distance between two distributions."""
    a, b = _validated(p, q)
    return float(0.5 * np.abs(a - b).sum())


def chi_squared_statistic(exact: Sequence[float], empirical: Sequence[float]) -> float:
    """Pearson chi-squared statistic of the empirical vs. exact distribution."""
    p, q = _validated(exact, empirical)
    mask = p > 0
    return float(np.sum((q[mask] - p[mask]) ** 2 / p[mask]))


def empirical_distribution(samples: Sequence[Sequence[int]], num_qubits: int) -> np.ndarray:
    """Dense empirical distribution over 2^n basis states from bit samples.

    The single vectorized histogram shared by every sampling consumer
    (including :meth:`repro.simulator.results.SampleResult.empirical_distribution`):
    bit rows are packed into basis indices and counted with ``np.bincount``.
    """
    num_states = 2 ** num_qubits
    samples = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples)
    if samples.ndim == 2 and samples.shape[1] != num_qubits:
        raise ValueError(
            f"samples must be rows of {num_qubits} bits, got shape {samples.shape}"
        )
    if samples.size == 0:
        return np.zeros(num_states)
    if samples.ndim != 2:
        raise ValueError(
            f"samples must be rows of {num_qubits} bits, got shape {samples.shape}"
        )
    indices = bitstrings_to_indices(samples)
    counts = np.bincount(indices, minlength=num_states).astype(float)
    return counts / counts.sum()
