"""Dense density-matrix simulator backend (Cirq noisy-simulator stand-in)."""

from .simulator import DensityMatrixSimulator

__all__ = ["DensityMatrixSimulator"]
