"""Density-matrix simulator (the reproduction's stand-in for Cirq's noisy backend).

The simulator evolves a dense ``2^n x 2^n`` density matrix: unitaries act by
conjugation, noise channels act through their Kraus operators.  This is the
baseline the paper compares against for noisy circuits (Figure 9); its cost
is dominated by matrix-matrix style contractions over ``4^n`` entries with no
exploitable sparsity, which is exactly the behaviour the comparison relies
on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import apply_kraus_to_density, basis_state, density_from_state
from ..simulator.base import Simulator
from ..simulator.results import DensityMatrixResult, SampleResult


class DensityMatrixSimulator(Simulator):
    """Dense density-matrix simulation of noisy circuits."""

    name = "density_matrix"

    def __init__(self, seed: Optional[int] = None):
        self._default_rng = np.random.default_rng(seed)

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> DensityMatrixResult:
        qubits, rho = self._run(circuit, resolver, qubit_order, initial_state)
        return DensityMatrixResult(qubits, rho)

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
    ) -> SampleResult:
        rng = self._rng(seed) if seed is not None else self._default_rng
        result = self.simulate(circuit, resolver, qubit_order)
        return result.sample(repetitions, rng)

    def _run(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
    ) -> Tuple[List[Qubit], np.ndarray]:
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        num_qubits = len(qubits)
        rho = density_from_state(basis_state(initial_state, num_qubits))
        for op in circuit.all_operations():
            if op.is_measurement:
                continue
            targets = [index_of[q] for q in op.qubits]
            if isinstance(op, NoiseOperation):
                operators = op.kraus_operators(resolver)
            else:
                operators = [op.unitary(resolver)]
            rho = apply_kraus_to_density(rho, operators, targets, num_qubits)
        return qubits, rho
