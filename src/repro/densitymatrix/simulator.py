"""Density-matrix simulator (the reproduction's stand-in for Cirq's noisy backend).

The simulator evolves a dense ``2^n x 2^n`` density matrix.  Instead of
walking Kraus branches one two-sided contraction at a time, each circuit is
first *compiled* into a superoperator program:

* every unitary or channel becomes one ``4^k x 4^k`` superoperator, applied
  to the density tensor in a single contraction over its row and column axes;
* channels are resolved once per distinct (channel class, parameter value)
  combination per circuit — ``Circuit.with_noise`` inserts hundreds of
  identical channel instances, and the per-gate-class cache collapses them;
* runs of adjacent single-qubit steps on the same qubit (a gate followed by
  its noise channel, stacked idle channels, ...) are fused into one ``4x4``
  superoperator by plain matrix multiplication before touching the state.

The asymptotic cost is still dominated by contractions over ``4^n`` entries
with no exploitable sparsity — exactly the behaviour the paper's Figure 9
comparison relies on — but the constant factor no longer scales with the
number of Kraus branches per channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import (
    apply_superoperator_to_density,
    basis_state,
    density_from_state,
    kraus_to_superoperator,
)
from ..simulator.base import Simulator
from ..simulator.results import DensityMatrixResult, SampleResult

_IDENTITY_SUPEROP_4 = np.eye(4, dtype=complex)


def compile_superoperator_program(
    circuit: Circuit,
    resolver: Optional[ParamResolver],
    index_of: Dict[Qubit, int],
) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
    """Lower a circuit to a list of ``(targets, superoperator)`` steps.

    Measurements are dropped (the density matrix carries the full outcome
    distribution); adjacent single-qubit steps on the same qubit are fused.
    """
    channel_cache: Dict[tuple, np.ndarray] = {}
    steps: List[Tuple[Tuple[int, ...], np.ndarray]] = []
    pending: Dict[int, np.ndarray] = {}

    def flush(target: int) -> None:
        superop = pending.pop(target, None)
        if superop is not None:
            steps.append(((target,), superop))

    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        targets = tuple(index_of[q] for q in op.qubits)
        if isinstance(op, NoiseOperation):
            key = op.channel.cache_key(resolver)
            superop = channel_cache.get(key) if key is not None else None
            if superop is None:
                superop = kraus_to_superoperator(op.kraus_operators(resolver))
                if key is not None:
                    channel_cache[key] = superop
        else:
            superop = kraus_to_superoperator([op.unitary(resolver)])
        if len(targets) == 1:
            target = targets[0]
            pending[target] = superop @ pending.get(target, _IDENTITY_SUPEROP_4)
        else:
            for target in targets:
                flush(target)
            steps.append((targets, superop))
    for target in sorted(pending):
        steps.append(((target,), pending[target]))
    return steps


class DensityMatrixSimulator(Simulator):
    """Dense density-matrix simulation of noisy circuits.

    Circuits are compiled into fused superoperator programs (adjacent
    single-qubit channels merged, per-channel superoperators cached by
    :meth:`~repro.circuits.noise.NoiseChannel.cache_key`) and applied to the
    full ``2^n x 2^n`` density matrix — exact noisy ground truth at ``4^n``
    memory cost.
    """

    name = "density_matrix"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> DensityMatrixResult:
        """Evolve the exact density matrix of a (possibly noisy) circuit.

        Args:
            circuit: The circuit to run (unitary gates + noise channels;
                terminal measurements are ignored).
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order (first qubit = most
                significant bit); defaults to the circuit's sorted qubits.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`DensityMatrixResult` holding the final ``2^n x 2^n``
            density matrix.

        Raises:
            ValueError: If ``resolver`` leaves symbols unbound (raised by
                the gates during program compilation).
        """
        qubits, rho = self._run(circuit, resolver, qubit_order, initial_state)
        return DensityMatrixResult(qubits, rho)

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw measurement samples from the exact output distribution.

        Args:
            circuit: The circuit to run.
            repetitions: Number of bitstring samples to draw.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            seed: Per-call seed for reproducibility in isolation; ``None``
                draws from the backend's default generator.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings sampled
            from the diagonal of the final density matrix.
        """
        rng = self._rng(seed)
        result = self.simulate(circuit, resolver, qubit_order, initial_state)
        return result.sample(repetitions, rng)

    def _run(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
    ) -> Tuple[List[Qubit], np.ndarray]:
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        num_qubits = len(qubits)
        rho = density_from_state(basis_state(initial_state, num_qubits))
        for targets, superop in compile_superoperator_program(circuit, resolver, index_of):
            rho = apply_superoperator_to_density(rho, superop, targets, num_qubits)
        return qubits, rho
