"""Complex-valued Bayesian networks encoding noisy quantum circuits.

Nodes represent qubit states at points in time, or noise-event random
variables ("spurious measurement outcomes" selecting a Kraus branch).  Each
node carries a *conditional amplitude table* (CAT) — the complex-valued
generalisation of a conditional probability table — addressed by the values
of its parents followed by the node's own value.

CAT entries may depend on symbolic circuit parameters, so tables are
produced by a builder function taking a :class:`ParamResolver`.  The CNF
encoder only needs the table's *structure* (which entries are identically
zero, identically one, or parameter-dependent weights); numeric values are
re-bound per simulation run.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits.parameters import ParamResolver, Symbol
from .factor import Factor

TableBuilder = Callable[[Optional[ParamResolver]], np.ndarray]

# Structural classification of CAT entries.
ENTRY_ZERO = 0
ENTRY_ONE = 1
ENTRY_WEIGHT = 2

_STRUCTURE_ATOL = 1e-9


class BayesNode:
    """A node in a complex-valued Bayesian network."""

    def __init__(
        self,
        name: str,
        cardinality: int,
        parents: Sequence[str],
        table_builder: TableBuilder,
        kind: str = "qubit",
        parameters: Iterable[Symbol] = (),
        label: str = "",
    ):
        self.name = name
        self.cardinality = int(cardinality)
        self.parents = list(parents)
        self.table_builder = table_builder
        self.kind = kind
        self.parameters: Set[Symbol] = set(parameters)
        self.label = label or name

    @property
    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    def table(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """The CAT as a dense complex array, shaped (card(parent_1), ..., card(self))."""
        table = np.asarray(self.table_builder(resolver), dtype=complex)
        return table

    def expected_shape(self, network: "BayesianNetwork") -> Tuple[int, ...]:
        return tuple(network.node(p).cardinality for p in self.parents) + (self.cardinality,)

    def structure(self, probe_resolvers: Sequence[Optional[ParamResolver]]) -> np.ndarray:
        """Classify each CAT entry as ZERO, ONE or WEIGHT across probe resolvers."""
        tables = [self.table(resolver) for resolver in probe_resolvers]
        reference = tables[0]
        structure = np.full(reference.shape, ENTRY_WEIGHT, dtype=np.int8)
        is_zero = np.ones(reference.shape, dtype=bool)
        is_one = np.ones(reference.shape, dtype=bool)
        for table in tables:
            is_zero &= np.abs(table) <= _STRUCTURE_ATOL
            is_one &= np.abs(table - 1.0) <= _STRUCTURE_ATOL
        structure[is_zero] = ENTRY_ZERO
        structure[is_one] = ENTRY_ONE
        return structure

    def structural_groups(
        self, probe_resolvers: Sequence[Optional[ParamResolver]]
    ) -> Dict[Tuple[int, ...], int]:
        """Group WEIGHT entries whose values agree across all probe resolvers.

        Returns a mapping from flat entry index tuples to a group id; entries
        in the same group can share a single CNF weight variable (the
        "equal parameters share variables" optimisation).
        """
        tables = [self.table(resolver) for resolver in probe_resolvers]
        structure = self.structure(probe_resolvers)
        groups: Dict[Tuple[int, ...], int] = {}
        signature_to_group: Dict[Tuple[complex, ...], int] = {}
        for index in np.ndindex(structure.shape):
            if structure[index] != ENTRY_WEIGHT:
                continue
            signature = tuple(complex(np.round(table[index], 12)) for table in tables)
            if signature not in signature_to_group:
                signature_to_group[signature] = len(signature_to_group)
            groups[index] = signature_to_group[signature]
        return groups

    def __repr__(self) -> str:
        return (
            f"BayesNode({self.name!r}, cardinality={self.cardinality}, "
            f"parents={self.parents}, kind={self.kind!r})"
        )


class BayesianNetwork:
    """A directed acyclic graph of :class:`BayesNode` objects.

    Nodes must be added parents-first, so insertion order is a topological
    order (the circuit-to-network compiler naturally produces this).
    """

    def __init__(self):
        self._nodes: Dict[str, BayesNode] = {}

    # ------------------------------------------------------------------
    def add_node(self, node: BayesNode) -> BayesNode:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        for parent in node.parents:
            if parent not in self._nodes:
                raise ValueError(f"node {node.name} references unknown parent {parent}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> BayesNode:
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> List[BayesNode]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def children_of(self, name: str) -> List[str]:
        return [n.name for n in self._nodes.values() if name in n.parents]

    @property
    def parameters(self) -> Set[Symbol]:
        symbols: Set[Symbol] = set()
        for node in self._nodes.values():
            symbols.update(node.parameters)
        return symbols

    # ------------------------------------------------------------------
    def probe_resolvers(
        self, count: int = 3, seed: int = 20210419
    ) -> List[Optional[ParamResolver]]:
        """Resolvers used for structural (zero/one/weight) classification.

        For unparameterized networks a single ``None`` resolver suffices; for
        parameterized networks several random parameter bindings are probed
        so that entries that are *accidentally* zero or one at a single
        binding are not misclassified.
        """
        symbols = self.parameters
        if not symbols:
            return [None]
        rng = np.random.default_rng(seed)
        resolvers: List[Optional[ParamResolver]] = []
        for _ in range(count):
            assignment = {s: float(rng.uniform(0.1, 2.9)) for s in symbols}
            resolvers.append(ParamResolver(assignment))
        return resolvers

    def factors(self, resolver: Optional[ParamResolver] = None) -> List[Factor]:
        """One factor per node over (parents..., node)."""
        result = []
        for node in self._nodes.values():
            variables = node.parents + [node.name]
            cards = [self._nodes[p].cardinality for p in node.parents] + [node.cardinality]
            result.append(Factor(variables, cards, node.table(resolver)))
        return result

    def joint_amplitude(
        self, assignment: Mapping[str, int], resolver: Optional[ParamResolver] = None
    ) -> complex:
        """Product of CAT entries for a complete assignment of all nodes."""
        amplitude = 1.0 + 0j
        for node in self._nodes.values():
            index = tuple(int(assignment[p]) for p in node.parents) + (int(assignment[node.name]),)
            amplitude *= complex(node.table(resolver)[index])
        return amplitude

    def validate(self, resolver: Optional[ParamResolver] = None) -> None:
        """Check table shapes against declared parent cardinalities."""
        for node in self._nodes.values():
            table = node.table(resolver)
            expected = node.expected_shape(self)
            if table.shape != expected:
                raise ValueError(
                    f"node {node.name} table shape {table.shape} != expected {expected}"
                )

    def moral_graph(self) -> Dict[str, Set[str]]:
        """Undirected adjacency: parents married, edges parent-child."""
        adjacency: Dict[str, Set[str]] = {name: set() for name in self._nodes}
        for node in self._nodes.values():
            family = node.parents + [node.name]
            for i in range(len(family)):
                for j in range(i + 1, len(family)):
                    adjacency[family[i]].add(family[j])
                    adjacency[family[j]].add(family[i])
        return adjacency

    def __repr__(self) -> str:
        return f"BayesianNetwork(nodes={len(self._nodes)})"
