"""Complex-valued factors for exact inference on quantum Bayesian networks.

A factor is a multi-dimensional array of complex amplitudes indexed by a
tuple of named discrete variables.  Variable elimination multiplies factors
and sums out variables — the quantum analogue of the classical algorithm,
with amplitudes in place of probabilities (Table 7 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


class Factor:
    """A complex-valued function over a set of discrete variables."""

    def __init__(self, variables: Sequence[str], cardinalities: Sequence[int], values: np.ndarray):
        self.variables: List[str] = list(variables)
        self.cardinalities: List[int] = [int(c) for c in cardinalities]
        values = np.asarray(values, dtype=complex)
        expected_shape = tuple(self.cardinalities)
        if values.shape != expected_shape:
            raise ValueError(f"factor values shape {values.shape} != {expected_shape}")
        if len(self.variables) != len(set(self.variables)):
            raise ValueError("factor variables must be unique")
        self.values = values

    # ------------------------------------------------------------------
    @staticmethod
    def scalar(value: complex = 1.0) -> "Factor":
        return Factor([], [], np.array(complex(value)))

    def copy(self) -> "Factor":
        return Factor(list(self.variables), list(self.cardinalities), self.values.copy())

    def cardinality_of(self, variable: str) -> int:
        return self.cardinalities[self.variables.index(variable)]

    # ------------------------------------------------------------------
    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of the two variable sets."""
        all_variables = list(self.variables)
        all_cards = list(self.cardinalities)
        for variable, card in zip(other.variables, other.cardinalities):
            if variable not in all_variables:
                all_variables.append(variable)
                all_cards.append(card)
            elif card != all_cards[all_variables.index(variable)]:
                raise ValueError(f"cardinality mismatch for variable {variable}")

        def broadcast(factor: "Factor") -> np.ndarray:
            shape = [1] * len(all_variables)
            source_axes = []
            for variable in factor.variables:
                position = all_variables.index(variable)
                shape[position] = all_cards[position]
                source_axes.append(position)
            # Move factor axes into their positions in the joint shape.
            expanded = factor.values
            order = np.argsort(source_axes)
            expanded = np.transpose(expanded, order)
            target_positions = sorted(source_axes)
            full = expanded.reshape(
                [all_cards[p] if p in target_positions else 1 for p in range(len(all_variables))]
            )
            return full

        return Factor(all_variables, all_cards, broadcast(self) * broadcast(other))

    def sum_out(self, variable: str) -> "Factor":
        """Sum the factor over all values of ``variable`` (Feynman path sum)."""
        if variable not in self.variables:
            return self.copy()
        axis = self.variables.index(variable)
        new_variables = [v for v in self.variables if v != variable]
        new_cards = [c for i, c in enumerate(self.cardinalities) if i != axis]
        return Factor(new_variables, new_cards, self.values.sum(axis=axis))

    def max_out(self, variable: str) -> "Factor":
        """Maximise (by magnitude) over ``variable`` — used by MPE-style queries."""
        if variable not in self.variables:
            return self.copy()
        axis = self.variables.index(variable)
        new_variables = [v for v in self.variables if v != variable]
        new_cards = [c for i, c in enumerate(self.cardinalities) if i != axis]
        magnitudes = np.abs(self.values)
        take = magnitudes.argmax(axis=axis)
        values = np.take_along_axis(self.values, np.expand_dims(take, axis), axis).squeeze(axis)
        return Factor(new_variables, new_cards, values)

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Fix the values of evidence variables, dropping them from the factor."""
        factor = self
        for variable, value in evidence.items():
            if variable not in factor.variables:
                continue
            axis = factor.variables.index(variable)
            new_variables = [v for v in factor.variables if v != variable]
            new_cards = [c for i, c in enumerate(factor.cardinalities) if i != axis]
            values = np.take(factor.values, int(value), axis=axis)
            factor = Factor(new_variables, new_cards, values)
        return factor

    def value_at(self, assignment: Mapping[str, int]) -> complex:
        """Look up the entry for a full assignment of the factor's variables."""
        index = tuple(int(assignment[v]) for v in self.variables)
        return complex(self.values[index])

    def __repr__(self) -> str:
        return f"Factor(variables={self.variables}, shape={tuple(self.cardinalities)})"


def multiply_all(factors: Iterable[Factor]) -> Factor:
    """Multiply a sequence of factors together (scalar 1 if empty)."""
    result = Factor.scalar(1.0)
    for factor in factors:
        result = result.multiply(factor)
    return result
