"""Exact inference on complex-valued Bayesian networks by variable elimination.

The paper used variable elimination as the first proof that exact inference
on complex-valued networks reproduces quantum circuit simulation, before
moving to knowledge compilation for repeated queries.  We keep it both as an
independent validation oracle for the compiled arithmetic circuits and as a
way to compute full final state vectors / density matrices for small
circuits.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..circuits.parameters import ParamResolver
from .elimination_order import elimination_order
from .factor import Factor, multiply_all
from .from_circuit import QuantumBayesNet
from .network import BayesianNetwork


def eliminate(
    network: BayesianNetwork,
    keep: Sequence[str],
    evidence: Optional[Mapping[str, int]] = None,
    resolver: Optional[ParamResolver] = None,
    order_method: str = "min_fill",
) -> Factor:
    """Sum out every variable not in ``keep``, after reducing by ``evidence``.

    Returns a factor over ``keep`` (in the axis order produced by the
    elimination; use :meth:`Factor.value_at` or reorder explicitly).
    """
    evidence = dict(evidence or {})
    keep_set = set(keep)
    factors = [factor.reduce(evidence) for factor in network.factors(resolver)]

    adjacency: Dict[str, set] = {}
    for factor in factors:
        for variable in factor.variables:
            adjacency.setdefault(variable, set())
        for a in factor.variables:
            for b in factor.variables:
                if a != b:
                    adjacency[a].add(b)
    to_eliminate = [
        v for v in elimination_order(adjacency, order_method) if v not in keep_set and v not in evidence
    ]

    for variable in to_eliminate:
        related = [f for f in factors if variable in f.variables]
        if not related:
            continue
        others = [f for f in factors if variable not in f.variables]
        merged = multiply_all(related).sum_out(variable)
        factors = others + [merged]

    result = multiply_all(factors)
    # Sum out any stray variables (defensive; should not happen).
    for variable in list(result.variables):
        if variable not in keep_set:
            result = result.sum_out(variable)
    return result


def amplitude_of_assignment(
    network: QuantumBayesNet,
    assignment: Mapping[str, int],
    resolver: Optional[ParamResolver] = None,
    order_method: str = "min_fill",
) -> complex:
    """Amplitude for a full assignment of the retained (final + noise) nodes."""
    factor = eliminate(network, keep=[], evidence=dict(assignment), resolver=resolver, order_method=order_method)
    return complex(factor.values)


def final_state_vector(
    network: QuantumBayesNet,
    resolver: Optional[ParamResolver] = None,
    order_method: str = "min_fill",
) -> np.ndarray:
    """Final state vector of an ideal circuit's network, in qubit order."""
    if network.noise_node_names:
        raise ValueError("network contains noise nodes; use final_density_matrix")
    finals = network.final_node_names
    factor = eliminate(network, keep=finals, resolver=resolver, order_method=order_method)
    # Reorder axes to qubit order.
    order = [factor.variables.index(name) for name in finals]
    values = np.transpose(factor.values, order)
    return values.reshape(-1)


def final_density_matrix(
    network: QuantumBayesNet,
    resolver: Optional[ParamResolver] = None,
    order_method: str = "min_fill",
) -> np.ndarray:
    """Final density matrix of a (possibly noisy) circuit's network.

    Enumerates noise-branch assignments; each branch contributes the outer
    product of its conditional amplitude vector, exactly as in the paper's
    Table 5 worked example.  Intended for validation on small circuits.
    """
    finals = network.final_node_names
    num_qubits = len(finals)
    dim = 2 ** num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    noise_nodes = network.noise_node_names
    cardinalities = [network.node(name).cardinality for name in noise_nodes]
    for branch in itertools.product(*[range(c) for c in cardinalities]):
        evidence = dict(zip(noise_nodes, branch))
        factor = eliminate(network, keep=finals, evidence=evidence, resolver=resolver, order_method=order_method)
        order = [factor.variables.index(name) for name in finals]
        vector = np.transpose(factor.values, order).reshape(-1)
        rho += np.outer(vector, vector.conj())
    return rho


def measurement_probabilities(
    network: QuantumBayesNet,
    resolver: Optional[ParamResolver] = None,
    order_method: str = "min_fill",
) -> np.ndarray:
    """Exact output measurement distribution (ideal or noisy), for validation."""
    if network.noise_node_names:
        return np.real(np.diag(final_density_matrix(network, resolver, order_method))).clip(min=0.0)
    state = final_state_vector(network, resolver, order_method)
    return np.abs(state) ** 2
