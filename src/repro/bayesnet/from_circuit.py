"""Compile noisy quantum circuits into complex-valued Bayesian networks.

This is the toolchain's first program transformation (Section 3.1 of the
paper).  Qubit states become binary network nodes named ``q{i}m{k}`` (qubit
``i`` after its ``k``-th operation, matching the paper's Figure 2 naming);
noise channels introduce multi-valued ``...rv`` nodes that select a Kraus
branch.

Encoding rules
--------------
* **Initial states** — parentless nodes with deterministic tables.
* **Monomial gates** (generalized permutation unitaries: X, CNOT, CZ, Rz,
  ZZ-rotations, Toffoli, ...) — new nodes are created only for qubits whose
  basis value can change; each new node's value is a deterministic function
  of the gate's input nodes, and the input-dependent phase is attached to
  the last created node (or to a dedicated copy node when the gate is
  diagonal and no value changes).
* **Non-monomial gates** (H, Rx, Ry, XX, ...) — one new node per gate qubit;
  all but the last carry the all-ones table, and the last node's table,
  conditioned on the gate inputs and the sibling outputs, holds the full
  unitary entry.  Because amplitude tables need not be normalised this is
  exact for arbitrary unitaries.
* **Noise channels** — a parentless branch-selector node of cardinality
  equal to the number of Kraus operators, plus a new qubit node whose table
  conditioned on (input, branch) holds the Kraus operator entries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Operation, is_monomial_matrix, monomial_action
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import index_to_bits
from .network import BayesianNetwork, BayesNode


class QuantumBayesNet(BayesianNetwork):
    """A Bayesian network annotated with circuit provenance."""

    def __init__(self, qubit_order: Sequence[Qubit]):
        super().__init__()
        self.qubit_order: List[Qubit] = list(qubit_order)
        self.initial_node_of: Dict[Qubit, str] = {}
        self.final_node_of: Dict[Qubit, str] = {}
        self.noise_node_names: List[str] = []

    @property
    def num_qubits(self) -> int:
        return len(self.qubit_order)

    @property
    def final_node_names(self) -> List[str]:
        """Final qubit-state nodes, in qubit order (most significant first)."""
        return [self.final_node_of[q] for q in self.qubit_order]

    @property
    def qubit_state_node_names(self) -> List[str]:
        return [n.name for n in self.nodes if n.kind in ("initial", "qubit")]

    @property
    def internal_node_names(self) -> List[str]:
        """Qubit-state nodes that are neither initial nor final.

        These are the nodes the arithmetic-circuit compiler elides (sums
        over) because only final-state amplitudes are queried.
        """
        finals = set(self.final_node_names)
        return [
            n.name
            for n in self.nodes
            if n.kind == "qubit" and n.name not in finals
        ]

    @property
    def retained_node_names(self) -> List[str]:
        """Nodes that remain queryable after elision: final states + noise events."""
        return self.final_node_names + self.noise_node_names

    def __repr__(self) -> str:
        return (
            f"QuantumBayesNet(qubits={self.num_qubits}, nodes={self.num_nodes}, "
            f"noise_nodes={len(self.noise_node_names)})"
        )


def _deterministic_initial_table(bit: int) -> np.ndarray:
    table = np.zeros(2, dtype=complex)
    table[bit] = 1.0
    return table


def _make_builder(function):
    """Tiny helper so closures capture loop variables by value."""
    return function


def circuit_to_bayesnet(
    circuit: Circuit,
    qubit_order: Optional[Sequence[Qubit]] = None,
    initial_bits: Optional[Sequence[int]] = None,
) -> QuantumBayesNet:
    """Convert a (possibly noisy, possibly parameterized) circuit to a Bayesian network."""
    qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
    network = QuantumBayesNet(qubits)
    position_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
    if initial_bits is None:
        initial_bits = [0] * len(qubits)
    if len(initial_bits) != len(qubits):
        raise ValueError("initial_bits length must match qubit count")

    # Current BN node for each qubit, and a per-qubit operation counter used
    # for q{i}m{k} style node names.
    current_node: Dict[Qubit, str] = {}
    op_counter: Dict[Qubit, int] = {}

    for qubit, bit in zip(qubits, initial_bits):
        name = f"q{position_of[qubit]}m0"
        node = BayesNode(
            name,
            cardinality=2,
            parents=[],
            table_builder=_make_builder(lambda resolver, b=int(bit): _deterministic_initial_table(b)),
            kind="initial",
            label=f"{qubit} initial",
        )
        network.add_node(node)
        network.initial_node_of[qubit] = name
        current_node[qubit] = name
        op_counter[qubit] = 0

    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        if isinstance(op, NoiseOperation):
            _add_noise_operation(network, op, current_node, op_counter, position_of)
        else:
            _add_gate_operation(network, op, current_node, op_counter, position_of)

    for qubit in qubits:
        network.final_node_of[qubit] = current_node[qubit]
    return network


# ----------------------------------------------------------------------
# Gate encoding
# ----------------------------------------------------------------------
def _next_name(qubit: Qubit, op_counter: Dict[Qubit, int], position_of: Dict[Qubit, int]) -> str:
    op_counter[qubit] += 1
    return f"q{position_of[qubit]}m{op_counter[qubit]}"


def _gate_is_monomial(op: Operation) -> bool:
    if op.gate.is_parameterized:
        return op.gate.is_monomial()
    return is_monomial_matrix(op.unitary())


def _add_gate_operation(
    network: QuantumBayesNet,
    op: Operation,
    current_node: Dict[Qubit, str],
    op_counter: Dict[Qubit, int],
    position_of: Dict[Qubit, int],
) -> None:
    if _gate_is_monomial(op):
        _add_monomial_gate(network, op, current_node, op_counter, position_of)
    else:
        _add_general_gate(network, op, current_node, op_counter, position_of)


def _add_monomial_gate(
    network: QuantumBayesNet,
    op: Operation,
    current_node: Dict[Qubit, str],
    op_counter: Dict[Qubit, int],
    position_of: Dict[Qubit, int],
) -> None:
    k = len(op.qubits)
    input_nodes = [current_node[q] for q in op.qubits]
    # Determine, from the permutation structure, which qubit positions can change.
    # Use an unparameterized reference unitary: the zero pattern of a
    # structurally monomial gate does not depend on its parameters.
    reference = op.unitary(_reference_resolver(op))
    perm, _ = monomial_action(reference)
    changed_positions = [
        j
        for j in range(k)
        if any(index_to_bits(perm[i], k)[j] != index_to_bits(i, k)[j] for i in range(2 ** k))
    ]
    if not changed_positions:
        # Diagonal gate: introduce a copy node on the last qubit to carry the phase.
        changed_positions = [k - 1]

    new_nodes: Dict[int, str] = {}
    for j in changed_positions:
        qubit = op.qubits[j]
        new_nodes[j] = _next_name(qubit, op_counter, position_of)

    phase_position = changed_positions[-1]
    for j in changed_positions:
        qubit = op.qubits[j]
        name = new_nodes[j]
        carries_phase = j == phase_position

        def build_table(resolver, op=op, j=j, k=k, carries_phase=carries_phase):
            unitary = op.unitary(resolver)
            perm_local, phases = monomial_action(unitary)
            shape = (2,) * k + (2,)
            table = np.zeros(shape, dtype=complex)
            for input_index in range(2 ** k):
                in_bits = index_to_bits(input_index, k)
                out_bits = index_to_bits(perm_local[input_index], k)
                amplitude = phases[input_index] if carries_phase else 1.0
                table[in_bits + (out_bits[j],)] = amplitude
            return table

        node = BayesNode(
            name,
            cardinality=2,
            parents=list(input_nodes),
            table_builder=build_table,
            kind="qubit",
            parameters=op.parameters,
            label=f"{op.gate.name} on {qubit}",
        )
        network.add_node(node)
        current_node[qubit] = name


def _add_general_gate(
    network: QuantumBayesNet,
    op: Operation,
    current_node: Dict[Qubit, str],
    op_counter: Dict[Qubit, int],
    position_of: Dict[Qubit, int],
) -> None:
    k = len(op.qubits)
    input_nodes = [current_node[q] for q in op.qubits]
    new_names: List[str] = []
    for qubit in op.qubits:
        new_names.append(_next_name(qubit, op_counter, position_of))

    # All output nodes except the last are free (all-ones) selector nodes.
    for j in range(k - 1):
        qubit = op.qubits[j]
        node = BayesNode(
            new_names[j],
            cardinality=2,
            parents=[],
            table_builder=_make_builder(lambda resolver: np.ones(2, dtype=complex)),
            kind="qubit",
            label=f"{op.gate.name} output {j} on {qubit}",
        )
        network.add_node(node)
        current_node[qubit] = new_names[j]

    # The last output node carries the full unitary entry, conditioned on the
    # gate's input nodes followed by the sibling output nodes.
    def build_table(resolver, op=op, k=k):
        unitary = op.unitary(resolver)
        shape = (2,) * k + (2,) * (k - 1) + (2,)
        table = np.zeros(shape, dtype=complex)
        for input_index in range(2 ** k):
            in_bits = index_to_bits(input_index, k)
            for output_index in range(2 ** k):
                out_bits = index_to_bits(output_index, k)
                table[in_bits + out_bits[:-1] + (out_bits[-1],)] = unitary[output_index, input_index]
        return table

    last_qubit = op.qubits[k - 1]
    node = BayesNode(
        new_names[k - 1],
        cardinality=2,
        parents=list(input_nodes) + new_names[: k - 1],
        table_builder=build_table,
        kind="qubit",
        parameters=op.parameters,
        label=f"{op.gate.name} output {k - 1} on {last_qubit}",
    )
    network.add_node(node)
    current_node[last_qubit] = new_names[k - 1]


def _add_noise_operation(
    network: QuantumBayesNet,
    op: NoiseOperation,
    current_node: Dict[Qubit, str],
    op_counter: Dict[Qubit, int],
    position_of: Dict[Qubit, int],
) -> None:
    if len(op.qubits) != 1:
        raise NotImplementedError("only single-qubit noise channels are supported")
    qubit = op.qubits[0]
    input_node = current_node[qubit]
    num_branches = len(op.kraus_operators(_reference_resolver(op)))

    state_name = _next_name(qubit, op_counter, position_of)
    rv_name = f"{state_name}rv"

    rv_node = BayesNode(
        rv_name,
        cardinality=num_branches,
        parents=[],
        table_builder=_make_builder(
            lambda resolver, m=num_branches: np.ones(m, dtype=complex)
        ),
        kind="noise",
        label=f"{op.channel.name} branch on {qubit}",
    )
    network.add_node(rv_node)
    network.noise_node_names.append(rv_name)

    def build_table(resolver, op=op, m=num_branches):
        operators = op.kraus_operators(resolver)
        table = np.zeros((2, m, 2), dtype=complex)
        for branch, kraus in enumerate(operators):
            for in_bit in range(2):
                for out_bit in range(2):
                    table[in_bit, branch, out_bit] = kraus[out_bit, in_bit]
        return table

    state_node = BayesNode(
        state_name,
        cardinality=2,
        parents=[input_node, rv_name],
        table_builder=build_table,
        kind="qubit",
        parameters=op.parameters,
        label=f"{op.channel.name} on {qubit}",
    )
    network.add_node(state_node)
    current_node[qubit] = state_name


def _reference_resolver(op: Operation) -> Optional[ParamResolver]:
    """A resolver binding any free symbols of ``op`` to an arbitrary reference value.

    Only used where the *structure* (zero pattern) of the operation matters,
    which for structurally monomial gates is parameter independent.
    """
    symbols = op.parameters
    if not symbols:
        return None
    return ParamResolver({s: 0.789 for s in symbols})
