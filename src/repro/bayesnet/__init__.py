"""Complex-valued Bayesian networks for noisy quantum circuits."""

from .elimination_order import (
    elimination_order,
    hypergraph_partition_order,
    induced_width,
    lexicographic_order,
    min_degree_order,
    min_fill_order,
)
from .factor import Factor, multiply_all
from .from_circuit import QuantumBayesNet, circuit_to_bayesnet
from .network import (
    ENTRY_ONE,
    ENTRY_WEIGHT,
    ENTRY_ZERO,
    BayesianNetwork,
    BayesNode,
)
from .variable_elimination import (
    amplitude_of_assignment,
    eliminate,
    final_density_matrix,
    final_state_vector,
    measurement_probabilities,
)

__all__ = [
    "Factor",
    "multiply_all",
    "BayesianNetwork",
    "BayesNode",
    "ENTRY_ZERO",
    "ENTRY_ONE",
    "ENTRY_WEIGHT",
    "QuantumBayesNet",
    "circuit_to_bayesnet",
    "eliminate",
    "amplitude_of_assignment",
    "final_state_vector",
    "final_density_matrix",
    "measurement_probabilities",
    "elimination_order",
    "min_degree_order",
    "min_fill_order",
    "lexicographic_order",
    "hypergraph_partition_order",
    "induced_width",
]
