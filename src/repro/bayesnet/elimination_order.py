"""Variable elimination / decision ordering heuristics.

Shared between the Bayesian-network variable-elimination engine and the
knowledge compiler's decision ordering.  All heuristics operate on an
undirected interaction graph given as an adjacency mapping
``{variable: set(neighbours)}`` and return a total order over the graph's
variables.

The paper evaluates two orderings for the CNF-to-AC compiler: lexicographic
qubit-state order and a hypergraph-partitioning order; we provide both plus
the classical min-degree and min-fill heuristics.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

import networkx as nx


Adjacency = Dict[Hashable, Set[Hashable]]


def _copy_adjacency(adjacency: Adjacency) -> Adjacency:
    return {node: set(neighbours) for node, neighbours in adjacency.items()}


def min_degree_order(adjacency: Adjacency) -> List[Hashable]:
    """Repeatedly eliminate the variable with the fewest neighbours."""
    graph = _copy_adjacency(adjacency)
    order: List[Hashable] = []
    while graph:
        node = min(graph, key=lambda n: (len(graph[n]), str(n)))
        order.append(node)
        neighbours = graph.pop(node)
        for a in neighbours:
            graph[a].discard(node)
        for a in neighbours:
            for b in neighbours:
                if a != b:
                    graph[a].add(b)
    return order


def min_fill_order(adjacency: Adjacency) -> List[Hashable]:
    """Repeatedly eliminate the variable introducing the fewest fill-in edges."""
    graph = _copy_adjacency(adjacency)
    order: List[Hashable] = []

    def fill_in(node: Hashable) -> int:
        neighbours = list(graph[node])
        count = 0
        for i in range(len(neighbours)):
            for j in range(i + 1, len(neighbours)):
                if neighbours[j] not in graph[neighbours[i]]:
                    count += 1
        return count

    while graph:
        node = min(graph, key=lambda n: (fill_in(n), len(graph[n]), str(n)))
        order.append(node)
        neighbours = graph.pop(node)
        for a in neighbours:
            graph[a].discard(node)
        for a in neighbours:
            for b in neighbours:
                if a != b:
                    graph[a].add(b)
    return order


def lexicographic_order(adjacency: Adjacency) -> List[Hashable]:
    """Plain sorted order of the variable labels."""
    return sorted(adjacency.keys(), key=str)


def hypergraph_partition_order(adjacency: Adjacency, seed: int = 7) -> List[Hashable]:
    """Separator-first recursive-bisection order (stand-in for hypergraph partitioning).

    Mirrors the dtree construction c2d derives from hypergraph partitioning:
    the interaction graph is recursively bisected with the Kernighan–Lin
    heuristic, and at every level the *separator* vertices (those with an
    edge crossing the cut) are ordered before the two halves.  A compiler
    that branches in this order disconnects the residual formula into
    independent components as early as possible, which is what keeps
    compiled-circuit sizes small for structured quantum circuits.
    """
    graph = nx.Graph()
    graph.add_nodes_from(adjacency.keys())
    for node, neighbours in adjacency.items():
        for other in neighbours:
            graph.add_edge(node, other)

    def bisect(nodes: List[Hashable], depth: int):
        subgraph = graph.subgraph(nodes)
        try:
            part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
                subgraph, seed=seed + depth
            )
            if not part_a or not part_b:
                raise ValueError("degenerate bisection")
            return set(part_a), set(part_b)
        except (nx.NetworkXError, ValueError):  # pragma: no cover - degenerate subgraphs
            midpoint = max(1, len(nodes) // 2)
            ordered = sorted(nodes, key=str)
            return set(ordered[:midpoint]), set(ordered[midpoint:])

    def recurse(nodes: List[Hashable], depth: int) -> List[Hashable]:
        if len(nodes) <= 3:
            return sorted(nodes, key=str)
        subgraph = graph.subgraph(nodes)
        # Handle disconnected pieces independently (no separator needed).
        components = list(nx.connected_components(subgraph))
        if len(components) > 1:
            order: List[Hashable] = []
            for component in sorted(components, key=lambda c: sorted(map(str, c))):
                order.extend(recurse(sorted(component, key=str), depth + 1))
            return order
        part_a, part_b = bisect(nodes, depth)
        separator = {
            v
            for v in part_a
            if any(neighbour in part_b for neighbour in subgraph.neighbors(v))
        }
        rest_a = sorted(part_a - separator, key=str)
        rest_b = sorted(part_b, key=str)
        return (
            sorted(separator, key=str)
            + recurse(rest_a, depth + 1)
            + recurse(rest_b, depth + 1)
        )

    return recurse(list(adjacency.keys()), 0)


_METHODS = {
    "min_degree": min_degree_order,
    "min_fill": min_fill_order,
    "lexicographic": lexicographic_order,
    "hypergraph": hypergraph_partition_order,
}


def elimination_order(adjacency: Adjacency, method: str = "min_fill") -> List[Hashable]:
    """Compute an elimination order with the named heuristic."""
    try:
        heuristic = _METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown elimination order method {method!r}; expected one of {sorted(_METHODS)}"
        ) from exc
    return heuristic(adjacency)


def induced_width(adjacency: Adjacency, order: Sequence[Hashable]) -> int:
    """The induced width (treewidth upper bound) of ``order`` on the graph."""
    graph = _copy_adjacency(adjacency)
    width = 0
    for node in order:
        if node not in graph:
            continue
        neighbours = graph.pop(node)
        width = max(width, len(neighbours))
        for a in neighbours:
            graph[a].discard(node)
        for a in neighbours:
            for b in neighbours:
                if a != b:
                    graph[a].add(b)
    return width
