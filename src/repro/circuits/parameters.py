"""Symbolic parameters for variational circuits.

Variational algorithms (QAOA, VQE) repeatedly execute the same circuit with
different gate angles.  The knowledge-compilation simulator compiles the
circuit *structure* once and re-binds numeric values for the symbolic
parameters on every optimizer iteration, so the circuit IR needs a small
symbolic-parameter layer: a :class:`Symbol` plus affine expressions over
symbols (enough to express the ``2 * gamma`` style angles appearing in
QAOA/VQE ansatz circuits, and sums like ``a + b`` produced when the
optimizer merges adjacent rotations).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Union

Number = Union[int, float]


class Symbol:
    """A named free parameter.

    Supports the small amount of arithmetic needed by ansatz construction and
    rotation merging: multiplication by a scalar and addition of scalars,
    symbols or expressions, all of which yield :class:`ParameterExpression`
    objects.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("Symbol name must be non-empty")
        self.name = str(name)

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Symbol", self.name))

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=float(other))

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=-1.0)

    def __add__(self, other: "ParameterValue") -> "ParameterExpression":
        return ParameterExpression(self) + other

    __radd__ = __add__

    def __sub__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, offset=-float(other))


class ParameterExpression:
    """An affine expression ``sum_i coefficient_i * symbol_i + offset``.

    The common single-symbol form is constructed positionally
    (``ParameterExpression(symbol, coefficient, offset)``); multi-symbol
    expressions arise from adding expressions together (rotation merging) and
    are constructed via :meth:`from_terms`.
    """

    def __init__(
        self,
        symbol: Optional[Symbol] = None,
        coefficient: float = 1.0,
        offset: float = 0.0,
        terms: Optional[Mapping[Symbol, float]] = None,
    ):
        if (symbol is None) == (terms is None):
            raise ValueError("provide exactly one of symbol= or terms=")
        if terms is None:
            assert symbol is not None
            terms = {symbol: float(coefficient)}
        # Zero-coefficient terms are dropped so that algebraically equal
        # expressions compare (and hash) equal.
        self.terms: Dict[Symbol, float] = {
            s: float(c) for s, c in terms.items() if float(c) != 0.0
        }
        self.offset = float(offset)

    @classmethod
    def from_terms(
        cls, terms: Mapping[Symbol, float], offset: float = 0.0
    ) -> "ParameterExpression":
        return cls(terms=terms, offset=offset)

    # -- single-symbol accessors (the historical API) -------------------
    def _single_term(self) -> Tuple[Symbol, float]:
        if len(self.terms) != 1:
            raise ValueError(
                f"expression {self} has {len(self.terms)} symbols; "
                "symbol/coefficient are only defined for single-symbol expressions"
            )
        return next(iter(self.terms.items()))

    @property
    def symbol(self) -> Symbol:
        return self._single_term()[0]

    @property
    def coefficient(self) -> float:
        return self._single_term()[1]

    # ------------------------------------------------------------------
    def _sorted_terms(self) -> Tuple[Tuple[Symbol, float], ...]:
        return tuple(sorted(self.terms.items(), key=lambda item: item[0].name))

    def __repr__(self) -> str:
        if len(self.terms) == 1:
            symbol, coefficient = self._single_term()
            return (
                f"ParameterExpression({symbol!r}, coefficient={coefficient}, "
                f"offset={self.offset})"
            )
        return f"ParameterExpression(terms={dict(self._sorted_terms())!r}, offset={self.offset})"

    def __str__(self) -> str:
        parts = []
        for symbol, coefficient in self._sorted_terms():
            if coefficient != 1.0:
                parts.append(f"{coefficient}*{symbol}")
            else:
                parts.append(str(symbol))
        if self.offset or not parts:
            parts.append(f"+ {self.offset}" if parts else f"{self.offset}")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParameterExpression)
            and other.terms == self.terms
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("ParameterExpression", self._sorted_terms(), self.offset))

    def __mul__(self, other: Number) -> "ParameterExpression":
        scale = float(other)
        return ParameterExpression(
            terms={s: c * scale for s, c in self.terms.items()},
            offset=self.offset * scale,
        )

    __rmul__ = __mul__

    def __add__(self, other: "ParameterValue") -> "ParameterExpression":
        if isinstance(other, Symbol):
            other = ParameterExpression(other)
        if isinstance(other, ParameterExpression):
            merged = dict(self.terms)
            for symbol, coefficient in other.terms.items():
                merged[symbol] = merged.get(symbol, 0.0) + coefficient
            return ParameterExpression(terms=merged, offset=self.offset + other.offset)
        return ParameterExpression(terms=self.terms, offset=self.offset + float(other))

    __radd__ = __add__

    def __sub__(self, other: "ParameterValue") -> "ParameterExpression":
        if isinstance(other, (Symbol, ParameterExpression)):
            return self + (-1.0 * (other if isinstance(other, ParameterExpression) else ParameterExpression(other)))
        return self + (-float(other))

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def evaluate(self, value: float) -> float:
        """Evaluate a *single-symbol* expression at ``symbol = value``."""
        if not self.terms:
            return self.offset
        symbol, coefficient = self._single_term()
        return coefficient * value + self.offset


ParameterValue = Union[Number, Symbol, ParameterExpression]


def is_parameterized(value: ParameterValue) -> bool:
    """Return True if ``value`` still contains a free symbol."""
    if isinstance(value, ParameterExpression):
        return bool(value.terms)
    return isinstance(value, Symbol)


def parameter_symbols(value: ParameterValue) -> FrozenSet[Symbol]:
    """Return the set of symbols appearing in ``value``."""
    if isinstance(value, Symbol):
        return frozenset({value})
    if isinstance(value, ParameterExpression):
        return frozenset(value.terms)
    return frozenset()


def add_parameter_values(a: ParameterValue, b: ParameterValue) -> ParameterValue:
    """The sum of two parameter values, as a number when both are numeric.

    This is the angle arithmetic behind rotation merging:
    ``Rz(a) . Rz(b) == Rz(a + b)`` for every rotation family in the gate set.
    Symbolic operands produce a (possibly multi-symbol) affine
    :class:`ParameterExpression`; an all-numeric sum stays a plain float so
    concrete circuits remain concrete.
    """
    if not is_parameterized(a) and not is_parameterized(b):
        offset_a = a.offset if isinstance(a, ParameterExpression) else float(a)
        offset_b = b.offset if isinstance(b, ParameterExpression) else float(b)
        return offset_a + offset_b
    first = a if isinstance(a, ParameterExpression) else (
        ParameterExpression(a) if isinstance(a, Symbol) else ParameterExpression(terms={}, offset=float(a))
    )
    return first + b


class ParamResolver:
    """Maps symbols (or symbol names) to numeric values."""

    def __init__(self, assignments: Mapping[Union[str, Symbol], Number] | None = None):
        self._values: Dict[str, float] = {}
        if assignments:
            for key, value in assignments.items():
                name = key.name if isinstance(key, Symbol) else str(key)
                self._values[name] = float(value)

    def __repr__(self) -> str:
        return f"ParamResolver({self._values!r})"

    def __contains__(self, key: Union[str, Symbol]) -> bool:
        name = key.name if isinstance(key, Symbol) else str(key)
        return name in self._values

    def value_of(self, value: ParameterValue) -> float:
        """Resolve ``value`` to a float, raising KeyError for unbound symbols."""
        if isinstance(value, Symbol):
            if value.name not in self._values:
                raise KeyError(f"Unbound symbol: {value.name}")
            return self._values[value.name]
        if isinstance(value, ParameterExpression):
            total = value.offset
            for symbol, coefficient in value.terms.items():
                total += coefficient * self.value_of(symbol)
            return total
        return float(value)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def updated(self, assignments: Mapping[Union[str, Symbol], Number]) -> "ParamResolver":
        """Return a new resolver with ``assignments`` overriding current values."""
        merged = self.as_dict()
        merged.update(
            {(k.name if isinstance(k, Symbol) else str(k)): float(v) for k, v in assignments.items()}
        )
        return ParamResolver(merged)


def resolve(value: ParameterValue, resolver: ParamResolver | None) -> float:
    """Resolve ``value`` using ``resolver``; pass numbers straight through."""
    if not is_parameterized(value):
        if isinstance(value, ParameterExpression):
            return value.offset
        return float(value)
    if resolver is None:
        raise ValueError(f"Parameterized value {value} requires a ParamResolver")
    return resolver.value_of(value)
