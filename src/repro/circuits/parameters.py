"""Symbolic parameters for variational circuits.

Variational algorithms (QAOA, VQE) repeatedly execute the same circuit with
different gate angles.  The knowledge-compilation simulator compiles the
circuit *structure* once and re-binds numeric values for the symbolic
parameters on every optimizer iteration, so the circuit IR needs a small
symbolic-parameter layer: a :class:`Symbol` plus affine expressions of a
single symbol (enough to express the ``2 * gamma`` style angles appearing in
QAOA/VQE ansatz circuits).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Union

Number = Union[int, float]


class Symbol:
    """A named free parameter.

    Supports the small amount of arithmetic needed by ansatz construction:
    multiplication by a scalar and addition of a scalar, both of which yield
    :class:`ParameterExpression` objects.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("Symbol name must be non-empty")
        self.name = str(name)

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Symbol) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Symbol", self.name))

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=float(other))

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, coefficient=-1.0)

    def __add__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, offset=float(other))

    __radd__ = __add__

    def __sub__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self, offset=-float(other))


class ParameterExpression:
    """An affine expression ``coefficient * symbol + offset``."""

    def __init__(self, symbol: Symbol, coefficient: float = 1.0, offset: float = 0.0):
        self.symbol = symbol
        self.coefficient = float(coefficient)
        self.offset = float(offset)

    def __repr__(self) -> str:
        return (
            f"ParameterExpression({self.symbol!r}, coefficient={self.coefficient}, "
            f"offset={self.offset})"
        )

    def __str__(self) -> str:
        parts = []
        if self.coefficient != 1.0:
            parts.append(f"{self.coefficient}*{self.symbol}")
        else:
            parts.append(str(self.symbol))
        if self.offset:
            parts.append(f"+ {self.offset}")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParameterExpression)
            and other.symbol == self.symbol
            and other.coefficient == self.coefficient
            and other.offset == self.offset
        )

    def __hash__(self) -> int:
        return hash(("ParameterExpression", self.symbol, self.coefficient, self.offset))

    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(
            self.symbol, self.coefficient * float(other), self.offset * float(other)
        )

    __rmul__ = __mul__

    def __add__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression(self.symbol, self.coefficient, self.offset + float(other))

    __radd__ = __add__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def evaluate(self, value: float) -> float:
        """Evaluate the expression at ``symbol = value``."""
        return self.coefficient * value + self.offset


ParameterValue = Union[Number, Symbol, ParameterExpression]


def is_parameterized(value: ParameterValue) -> bool:
    """Return True if ``value`` still contains a free symbol."""
    return isinstance(value, (Symbol, ParameterExpression))


def parameter_symbols(value: ParameterValue) -> FrozenSet[Symbol]:
    """Return the set of symbols appearing in ``value``."""
    if isinstance(value, Symbol):
        return frozenset({value})
    if isinstance(value, ParameterExpression):
        return frozenset({value.symbol})
    return frozenset()


class ParamResolver:
    """Maps symbols (or symbol names) to numeric values."""

    def __init__(self, assignments: Mapping[Union[str, Symbol], Number] | None = None):
        self._values: Dict[str, float] = {}
        if assignments:
            for key, value in assignments.items():
                name = key.name if isinstance(key, Symbol) else str(key)
                self._values[name] = float(value)

    def __repr__(self) -> str:
        return f"ParamResolver({self._values!r})"

    def __contains__(self, key: Union[str, Symbol]) -> bool:
        name = key.name if isinstance(key, Symbol) else str(key)
        return name in self._values

    def value_of(self, value: ParameterValue) -> float:
        """Resolve ``value`` to a float, raising KeyError for unbound symbols."""
        if isinstance(value, Symbol):
            if value.name not in self._values:
                raise KeyError(f"Unbound symbol: {value.name}")
            return self._values[value.name]
        if isinstance(value, ParameterExpression):
            return value.evaluate(self.value_of(value.symbol))
        return float(value)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def updated(self, assignments: Mapping[Union[str, Symbol], Number]) -> "ParamResolver":
        """Return a new resolver with ``assignments`` overriding current values."""
        merged = self.as_dict()
        merged.update(
            {(k.name if isinstance(k, Symbol) else str(k)): float(v) for k, v in assignments.items()}
        )
        return ParamResolver(merged)


def resolve(value: ParameterValue, resolver: ParamResolver | None) -> float:
    """Resolve ``value`` using ``resolver``; pass numbers straight through."""
    if not is_parameterized(value):
        return float(value)
    if resolver is None:
        raise ValueError(f"Parameterized value {value} requires a ParamResolver")
    return resolver.value_of(value)
