"""Qubit identifiers used throughout the circuit IR.

Qubits are lightweight, hashable, totally-ordered identifiers.  The
simulators map each qubit to a bit position in basis-state indices using the
ordering defined here (sorted order unless the caller supplies an explicit
qubit order), with the first qubit occupying the most-significant bit, which
mirrors the convention used by the paper's Cirq front-end.
"""

from __future__ import annotations

import functools
from typing import Iterable, List, Tuple


@functools.total_ordering
class Qubit:
    """Base class for qubit identifiers.

    Subclasses must provide a ``_comparison_key`` that is unique per qubit
    and orderable against other qubits of any kind.
    """

    def _comparison_key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Qubit):
            return NotImplemented
        return self._comparison_key() == other._comparison_key()

    def __lt__(self, other: "Qubit") -> bool:
        if not isinstance(other, Qubit):
            return NotImplemented
        return self._comparison_key() < other._comparison_key()

    def __hash__(self) -> int:
        return hash(self._comparison_key())


class LineQubit(Qubit):
    """A qubit identified by an integer position on a line."""

    def __init__(self, index: int):
        self.index = int(index)

    def _comparison_key(self) -> Tuple:
        return ("line", self.index)

    def __repr__(self) -> str:
        return f"LineQubit({self.index})"

    def __str__(self) -> str:
        return f"q{self.index}"

    @staticmethod
    def range(*args: int) -> List["LineQubit"]:
        """Return ``LineQubit`` instances for ``range(*args)``."""
        return [LineQubit(i) for i in range(*args)]


class GridQubit(Qubit):
    """A qubit identified by (row, col) coordinates on a 2D grid.

    Used by the VQE 2D-Ising workload where each qubit encodes a grid point.
    """

    def __init__(self, row: int, col: int):
        self.row = int(row)
        self.col = int(col)

    def _comparison_key(self) -> Tuple:
        return ("grid", self.row, self.col)

    def __repr__(self) -> str:
        return f"GridQubit({self.row}, {self.col})"

    def __str__(self) -> str:
        return f"q({self.row},{self.col})"

    @staticmethod
    def rect(rows: int, cols: int) -> List["GridQubit"]:
        """Return qubits covering a ``rows x cols`` rectangle in row-major order."""
        return [GridQubit(r, c) for r in range(rows) for c in range(cols)]


class NamedQubit(Qubit):
    """A qubit identified by an arbitrary string name (ancillas, etc.)."""

    def __init__(self, name: str):
        self.name = str(name)

    def _comparison_key(self) -> Tuple:
        return ("named", self.name)

    def __repr__(self) -> str:
        return f"NamedQubit({self.name!r})"

    def __str__(self) -> str:
        return self.name


def sorted_qubits(qubits: Iterable[Qubit]) -> List[Qubit]:
    """Return the qubits in canonical (sorted) order, without duplicates."""
    seen = set()
    unique = []
    for q in qubits:
        if q not in seen:
            seen.add(q)
            unique.append(q)
    return sorted(unique)
