"""Quantum noise channels and mixtures.

The paper (Table 1) classifies canonical noise models along two axes:

* the effect on the state — Pauli-X type (bit flip, amplitude damping),
  Pauli-Z type (phase flip, phase damping), and combinations (depolarizing,
  generalized amplitude damping);
* whether the model is a *mixture* (probabilistic ensemble of unitaries,
  simulatable with ensembles of state vectors) or a general *channel*
  (requires density matrices / Kraus operators).

Every channel here exposes its Kraus operators; mixtures additionally expose
``(probability, unitary)`` pairs.  The Bayesian-network front end encodes a
channel as a "spurious measurement" random variable selecting the Kraus
branch, exactly as in Figure 2(b)/(c) of the paper.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .gates import Gate, Operation, X, Y, Z
from .parameters import ParameterValue, ParamResolver, Symbol, parameter_symbols, resolve
from .qubits import Qubit

_ATOL = 1e-9


class NoiseChannel:
    """Base class for quantum noise channels.

    A channel is described by Kraus operators ``E_k`` acting as
    ``rho -> sum_k E_k rho E_k^dagger`` with ``sum_k E_k^dagger E_k = I``.
    """

    def __init__(self, name: str, num_qubits: int):
        self._name = name
        self._num_qubits = int(num_qubits)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return frozenset()

    @property
    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        raise NotImplementedError

    @property
    def is_mixture(self) -> bool:
        """True if the channel is a probabilistic mixture of unitaries."""
        return False

    def mixture(
        self, resolver: Optional[ParamResolver] = None
    ) -> List[Tuple[float, np.ndarray]]:
        """Return ``(probability, unitary)`` pairs for mixture channels."""
        raise TypeError(f"{self.name} is not a mixture channel")

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        """Hashable identity of the *resolved* channel, or ``None``.

        Two channels with equal keys have identical Kraus operators, so
        simulators can resolve each distinct (channel class, parameter)
        combination once per circuit instead of once per operation —
        ``Circuit.with_noise`` creates a fresh channel instance per insertion,
        making instance identity useless as a cache key.
        """
        return None

    def on(self, *qubits: Qubit) -> "NoiseOperation":
        return NoiseOperation(self, qubits)

    def __call__(self, *qubits: Qubit) -> "NoiseOperation":
        return self.on(*qubits)

    def __repr__(self) -> str:
        return f"<NoiseChannel {self._name}>"

    def __str__(self) -> str:
        return self._name

    def validate(self, resolver: Optional[ParamResolver] = None) -> None:
        """Check the completeness relation sum_k E_k^dagger E_k = I."""
        dim = 2 ** self.num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for op in self.kraus_operators(resolver):
            total += op.conj().T @ op
        if not np.allclose(total, np.eye(dim), atol=1e-7):
            raise ValueError(f"Kraus operators of {self.name} do not satisfy completeness")


class NoiseOperation(Operation):
    """A noise channel attached to specific qubits."""

    def __init__(self, channel: NoiseChannel, qubits: Iterable[Qubit]):
        qubits = tuple(qubits)
        if len(qubits) != channel.num_qubits:
            raise ValueError(
                f"Channel {channel.name} acts on {channel.num_qubits} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError("NoiseOperation qubits must be distinct")
        # Deliberately bypass Operation.__init__'s gate checks: a channel is
        # not a Gate, but downstream code treats operations uniformly.
        self.gate = None
        self.channel = channel
        self.qubits = qubits

    @property
    def is_measurement(self) -> bool:
        return False

    @property
    def is_noise(self) -> bool:
        return True

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return self.channel.parameters

    @property
    def is_parameterized(self) -> bool:
        return self.channel.is_parameterized

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        raise TypeError("Noise operations have no unitary; use kraus_operators()")

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return self.channel.kraus_operators(resolver)

    def resolve(self, resolver: ParamResolver) -> "NoiseOperation":
        return NoiseOperation(self.channel, self.qubits)

    def with_qubits(self, *qubits: Qubit) -> "NoiseOperation":
        return NoiseOperation(self.channel, qubits)

    def __repr__(self) -> str:
        targets = ", ".join(str(q) for q in self.qubits)
        return f"{self.channel}({targets})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NoiseOperation):
            return NotImplemented
        return self.channel is other.channel and self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash((id(self.channel), self.qubits))


class _SingleParamChannel(NoiseChannel):
    """Base for channels parameterized by a single probability-like value."""

    def __init__(self, name: str, value: ParameterValue):
        super().__init__(name, 1)
        self.value = value

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return parameter_symbols(self.value)

    def _resolved(self, resolver: Optional[ParamResolver]) -> float:
        value = resolve(self.value, resolver)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{self.name} parameter must be in [0, 1], got {value}")
        return value

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        return (type(self).__name__, self._resolved(resolver))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value})"


class BitFlipChannel(_SingleParamChannel):
    """Applies X with probability p (a Pauli-X type mixture)."""

    def __init__(self, p: ParameterValue):
        super().__init__("bit_flip", p)

    @property
    def is_mixture(self) -> bool:
        return True

    def mixture(self, resolver: Optional[ParamResolver] = None) -> List[Tuple[float, np.ndarray]]:
        p = self._resolved(resolver)
        return [(1.0 - p, np.eye(2, dtype=complex)), (p, X.unitary())]

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [math.sqrt(prob) * unitary for prob, unitary in self.mixture(resolver)]


class PhaseFlipChannel(_SingleParamChannel):
    """Applies Z with probability p (a Pauli-Z type mixture)."""

    def __init__(self, p: ParameterValue):
        super().__init__("phase_flip", p)

    @property
    def is_mixture(self) -> bool:
        return True

    def mixture(self, resolver: Optional[ParamResolver] = None) -> List[Tuple[float, np.ndarray]]:
        p = self._resolved(resolver)
        return [(1.0 - p, np.eye(2, dtype=complex)), (p, Z.unitary())]

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [math.sqrt(prob) * unitary for prob, unitary in self.mixture(resolver)]


class DepolarizingChannel(_SingleParamChannel):
    """Symmetric depolarizing noise: X, Y or Z each with probability p/3.

    This is the noise model used after every gate in the paper's noisy QAOA
    and VQE benchmarks (with p = 0.5%).
    """

    def __init__(self, p: ParameterValue):
        super().__init__("depolarizing", p)

    @property
    def is_mixture(self) -> bool:
        return True

    def mixture(self, resolver: Optional[ParamResolver] = None) -> List[Tuple[float, np.ndarray]]:
        p = self._resolved(resolver)
        return [
            (1.0 - p, np.eye(2, dtype=complex)),
            (p / 3.0, X.unitary()),
            (p / 3.0, Y.unitary()),
            (p / 3.0, Z.unitary()),
        ]

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [math.sqrt(prob) * unitary for prob, unitary in self.mixture(resolver)]


class AsymmetricDepolarizingChannel(NoiseChannel):
    """Depolarizing noise with independent X, Y and Z probabilities."""

    def __init__(self, p_x: ParameterValue, p_y: ParameterValue, p_z: ParameterValue):
        super().__init__("asymmetric_depolarizing", 1)
        self.p_x = p_x
        self.p_y = p_y
        self.p_z = p_z

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return parameter_symbols(self.p_x) | parameter_symbols(self.p_y) | parameter_symbols(self.p_z)

    @property
    def is_mixture(self) -> bool:
        return True

    def mixture(self, resolver: Optional[ParamResolver] = None) -> List[Tuple[float, np.ndarray]]:
        p_x = resolve(self.p_x, resolver)
        p_y = resolve(self.p_y, resolver)
        p_z = resolve(self.p_z, resolver)
        p_i = 1.0 - p_x - p_y - p_z
        if p_i < -_ATOL:
            raise ValueError("asymmetric depolarizing probabilities exceed 1")
        return [
            (max(p_i, 0.0), np.eye(2, dtype=complex)),
            (p_x, X.unitary()),
            (p_y, Y.unitary()),
            (p_z, Z.unitary()),
        ]

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [math.sqrt(prob) * unitary for prob, unitary in self.mixture(resolver)]

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        return (
            type(self).__name__,
            resolve(self.p_x, resolver),
            resolve(self.p_y, resolver),
            resolve(self.p_z, resolver),
        )

    def __repr__(self) -> str:
        return f"AsymmetricDepolarizingChannel({self.p_x}, {self.p_y}, {self.p_z})"


class PhaseDampingChannel(_SingleParamChannel):
    """Phase damping with strength gamma (related to T2 time).

    Kraus operators E0 = diag(1, sqrt(1 - gamma)), E1 = diag(0, sqrt(gamma)).
    This is the channel in the paper's running noisy Bell-state example with
    gamma = 0.36.
    """

    def __init__(self, gamma: ParameterValue):
        super().__init__("phase_damping", gamma)

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        gamma = self._resolved(resolver)
        e0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        e1 = np.array([[0.0, 0.0], [0.0, math.sqrt(gamma)]], dtype=complex)
        return [e0, e1]


class AmplitudeDampingChannel(_SingleParamChannel):
    """Amplitude damping with strength gamma (related to T1 time)."""

    def __init__(self, gamma: ParameterValue):
        super().__init__("amplitude_damping", gamma)

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        gamma = self._resolved(resolver)
        e0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        e1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
        return [e0, e1]


class GeneralizedAmplitudeDampingChannel(NoiseChannel):
    """Generalized amplitude damping (finite-temperature relaxation)."""

    def __init__(self, p: ParameterValue, gamma: ParameterValue):
        super().__init__("generalized_amplitude_damping", 1)
        self.p = p
        self.gamma = gamma

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return parameter_symbols(self.p) | parameter_symbols(self.gamma)

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        p = resolve(self.p, resolver)
        gamma = resolve(self.gamma, resolver)
        sqrt_p = math.sqrt(p)
        sqrt_q = math.sqrt(1.0 - p)
        e0 = sqrt_p * np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        e1 = sqrt_p * np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
        e2 = sqrt_q * np.array([[math.sqrt(1.0 - gamma), 0.0], [0.0, 1.0]], dtype=complex)
        e3 = sqrt_q * np.array([[0.0, 0.0], [math.sqrt(gamma), 0.0]], dtype=complex)
        return [e0, e1, e2, e3]

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        return (type(self).__name__, resolve(self.p, resolver), resolve(self.gamma, resolver))

    def __repr__(self) -> str:
        return f"GeneralizedAmplitudeDampingChannel({self.p}, {self.gamma})"


class MixtureChannel(NoiseChannel):
    """An explicit probabilistic mixture of unitaries."""

    def __init__(self, components: Sequence[Tuple[float, np.ndarray]], name: str = "mixture"):
        components = [(float(p), np.asarray(u, dtype=complex)) for p, u in components]
        if not components:
            raise ValueError("MixtureChannel requires at least one component")
        total = sum(p for p, _ in components)
        if abs(total - 1.0) > 1e-7:
            raise ValueError(f"mixture probabilities must sum to 1, got {total}")
        dim = components[0][1].shape[0]
        super().__init__(name, dim.bit_length() - 1)
        self._components = components

    @property
    def is_mixture(self) -> bool:
        return True

    def mixture(self, resolver: Optional[ParamResolver] = None) -> List[Tuple[float, np.ndarray]]:
        return [(p, u.copy()) for p, u in self._components]

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [math.sqrt(p) * u for p, u in self._components]

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        # Components are fixed at construction, so instance identity is exact.
        return (type(self).__name__, id(self))


class KrausChannel(NoiseChannel):
    """A channel defined by an explicit list of Kraus operators."""

    def __init__(self, operators: Sequence[np.ndarray], name: str = "kraus"):
        operators = [np.asarray(op, dtype=complex) for op in operators]
        if not operators:
            raise ValueError("KrausChannel requires at least one operator")
        dim = operators[0].shape[0]
        super().__init__(name, dim.bit_length() - 1)
        self._operators = operators
        self.validate()

    def kraus_operators(self, resolver: Optional[ParamResolver] = None) -> List[np.ndarray]:
        return [op.copy() for op in self._operators]

    def cache_key(self, resolver: Optional[ParamResolver] = None) -> Optional[Tuple]:
        return (type(self).__name__, id(self))


def bit_flip(p: ParameterValue) -> BitFlipChannel:
    return BitFlipChannel(p)


def phase_flip(p: ParameterValue) -> PhaseFlipChannel:
    return PhaseFlipChannel(p)


def depolarize(p: ParameterValue) -> DepolarizingChannel:
    return DepolarizingChannel(p)


def amplitude_damp(gamma: ParameterValue) -> AmplitudeDampingChannel:
    return AmplitudeDampingChannel(gamma)


def phase_damp(gamma: ParameterValue) -> PhaseDampingChannel:
    return PhaseDampingChannel(gamma)


def generalized_amplitude_damp(p: ParameterValue, gamma: ParameterValue) -> GeneralizedAmplitudeDampingChannel:
    return GeneralizedAmplitudeDampingChannel(p, gamma)
