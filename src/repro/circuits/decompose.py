"""Gate decomposition utilities.

The Bayesian-network encoding handles arbitrary unitaries directly, but the
paper notes that gates are commonly decomposed "until such translation is
possible" — and decompositions are also useful for mapping circuits onto
restricted gate sets and for growing circuit depth in controlled ways for
scaling experiments.  This module provides the standard constructions:

* SWAP as three CNOTs,
* controlled-Z / controlled-phase from CNOTs and Rz rotations,
* an arbitrary controlled single-qubit unitary via the ABC (Z-Y-Z)
  decomposition,
* Toffoli in the textbook H/T/CNOT form.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Optional, Tuple

import numpy as np

from .gates import CNOT, H, Operation, Rz, Ry, T, TDG, Gate, PhaseShift
from .qubits import Qubit

_ATOL = 1e-9


def zyz_angles(unitary: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a single-qubit unitary as ``e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``.

    Returns ``(alpha, beta, gamma, delta)``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError("zyz_angles expects a single-qubit unitary")
    determinant = np.linalg.det(unitary)
    alpha = cmath.phase(determinant) / 2.0
    special = unitary * cmath.exp(-1j * alpha)

    # With det(special) = 1:
    #   special = [[ e^{-i(beta+delta)/2} cos(gamma/2), -e^{-i(beta-delta)/2} sin(gamma/2)],
    #              [ e^{+i(beta-delta)/2} sin(gamma/2),  e^{+i(beta+delta)/2} cos(gamma/2)]]
    gamma = 2.0 * math.atan2(abs(special[1, 0]), abs(special[0, 0]))
    if abs(special[0, 0]) > _ATOL and abs(special[1, 0]) > _ATOL:
        phase_sum = 2.0 * cmath.phase(special[1, 1])
        phase_diff = 2.0 * cmath.phase(special[1, 0])
        beta = (phase_sum + phase_diff) / 2.0
        delta = (phase_sum - phase_diff) / 2.0
    elif abs(special[0, 0]) <= _ATOL:
        # Anti-diagonal (gamma = pi): only beta - delta is determined.
        beta, delta = 2.0 * cmath.phase(special[1, 0]), 0.0
    else:
        # Diagonal (gamma = 0): only beta + delta is determined.
        beta, delta = 2.0 * cmath.phase(special[1, 1]), 0.0
    return alpha, beta, gamma, delta


def reconstruct_from_zyz(alpha: float, beta: float, gamma: float, delta: float) -> np.ndarray:
    """Rebuild the unitary from ZYZ angles (used to validate decompositions)."""
    return (
        cmath.exp(1j * alpha)
        * Rz(beta).unitary()
        @ Ry(gamma).unitary()
        @ Rz(delta).unitary()
    )


def decompose_swap(a: Qubit, b: Qubit) -> List[Operation]:
    """SWAP as three alternating CNOTs."""
    return [CNOT(a, b), CNOT(b, a), CNOT(a, b)]


def decompose_controlled_z(control: Qubit, target: Qubit) -> List[Operation]:
    """CZ from a CNOT conjugated by Hadamards on the target."""
    return [H(target), CNOT(control, target), H(target)]


def decompose_controlled_phase(angle: float, control: Qubit, target: Qubit) -> List[Operation]:
    """Controlled phase diag(1,1,1,e^{i angle}) from Rz rotations and CNOTs."""
    half = angle / 2.0
    return [
        PhaseShift(half)(control),
        PhaseShift(half)(target),
        CNOT(control, target),
        PhaseShift(-half)(target),
        CNOT(control, target),
    ]


def decompose_controlled_unitary(
    unitary: np.ndarray, control: Qubit, target: Qubit
) -> List[Operation]:
    """Controlled-U via the ABC construction (Nielsen & Chuang, Section 4.3).

    U = e^{i alpha} A X B X C with A B C = I; the controlled version applies
    A, CNOT, B, CNOT, C plus a phase rotation on the control.
    """
    alpha, beta, gamma, delta = zyz_angles(unitary)
    operations: List[Operation] = []
    # C = Rz((delta - beta) / 2)
    operations.append(Rz((delta - beta) / 2.0)(target))
    operations.append(CNOT(control, target))
    # B = Ry(-gamma / 2) Rz(-(delta + beta) / 2)
    operations.append(Rz(-(delta + beta) / 2.0)(target))
    operations.append(Ry(-gamma / 2.0)(target))
    operations.append(CNOT(control, target))
    # A = Rz(beta) Ry(gamma / 2)
    operations.append(Ry(gamma / 2.0)(target))
    operations.append(Rz(beta)(target))
    # Phase correction on the control.
    if abs(alpha) > _ATOL:
        operations.append(PhaseShift(alpha)(control))
    return operations


def decompose_toffoli(control_a: Qubit, control_b: Qubit, target: Qubit) -> List[Operation]:
    """The textbook Toffoli decomposition into H, T, T-dagger and CNOT."""
    return [
        H(target),
        CNOT(control_b, target),
        TDG(target),
        CNOT(control_a, target),
        T(target),
        CNOT(control_b, target),
        TDG(target),
        CNOT(control_a, target),
        T(control_b),
        T(target),
        H(target),
        CNOT(control_a, control_b),
        T(control_a),
        TDG(control_b),
        CNOT(control_a, control_b),
    ]
