"""The :class:`Circuit` container: an ordered sequence of moments of operations.

A circuit holds unitary gate operations, noise operations and terminal
measurements.  It knows how to:

* schedule appended operations into moments (earliest-slot packing),
* report structural statistics (qubit count, gate count, depth),
* resolve symbolic parameters,
* attach a noise model after every gate (the construction used by the
  paper's noisy QAOA/VQE benchmarks), and
* compute its overall unitary for small ideal circuits (used by tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .gates import Gate, MeasurementGate, Operation
from .noise import NoiseChannel, NoiseOperation
from .parameters import ParamResolver, Symbol
from .qubits import Qubit, sorted_qubits


class Moment:
    """A set of operations acting on disjoint qubits, executed in parallel."""

    def __init__(self, operations: Iterable[Operation] = ()):
        self.operations: List[Operation] = []
        self._qubits: Set[Qubit] = set()
        for op in operations:
            self.append(op)

    def append(self, operation: Operation) -> None:
        overlap = self._qubits.intersection(operation.qubits)
        if overlap:
            raise ValueError(f"Moment already contains operations on {overlap}")
        self.operations.append(operation)
        self._qubits.update(operation.qubits)

    def can_accept(self, operation: Operation) -> bool:
        return not self._qubits.intersection(operation.qubits)

    @property
    def qubits(self) -> Set[Qubit]:
        return set(self._qubits)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"Moment({self.operations!r})"


class Circuit:
    """An ordered list of moments of operations on qubits."""

    def __init__(self, operations: Iterable[Operation] = ()):
        self.moments: List[Moment] = []
        self.append(operations)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, operations: Iterable[Operation] | Operation, new_moment: bool = False) -> None:
        """Append operations, packing each into the earliest available moment.

        With ``new_moment=True``, the first appended operation starts a fresh
        moment (useful for aligning algorithm iterations).
        """
        if isinstance(operations, Operation):
            operations = [operations]
        force_new = new_moment
        for op in operations:
            if not isinstance(op, Operation):
                raise TypeError(f"Expected Operation, got {type(op).__name__}")
            self._insert_earliest(op, force_new)
            force_new = False

    def _insert_earliest(self, operation: Operation, force_new: bool) -> None:
        if force_new or not self.moments:
            self.moments.append(Moment([operation]))
            return
        # Find the latest moment that touches any of the operation's qubits;
        # the operation must go strictly after it.
        insert_at = 0
        for index in range(len(self.moments) - 1, -1, -1):
            if self.moments[index].qubits.intersection(operation.qubits):
                insert_at = index + 1
                break
        for index in range(insert_at, len(self.moments)):
            if self.moments[index].can_accept(operation):
                self.moments[index].append(operation)
                return
        self.moments.append(Moment([operation]))

    def __add__(self, other: "Circuit") -> "Circuit":
        combined = Circuit()
        combined.append(self.all_operations())
        combined.append(other.all_operations())
        return combined

    def copy(self) -> "Circuit":
        duplicate = Circuit()
        for moment in self.moments:
            duplicate.moments.append(Moment(list(moment)))
        return duplicate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_operations(self) -> List[Operation]:
        return [op for moment in self.moments for op in moment]

    def unitary_operations(self) -> List[Operation]:
        """All gate operations excluding noise and measurements."""
        return [
            op
            for op in self.all_operations()
            if not op.is_measurement and not isinstance(op, NoiseOperation)
        ]

    def noise_operations(self) -> List[NoiseOperation]:
        return [op for op in self.all_operations() if isinstance(op, NoiseOperation)]

    def measurement_operations(self) -> List[Operation]:
        return [op for op in self.all_operations() if op.is_measurement]

    def all_qubits(self) -> List[Qubit]:
        return sorted_qubits(q for op in self.all_operations() for q in op.qubits)

    @property
    def num_qubits(self) -> int:
        return len(self.all_qubits())

    @property
    def depth(self) -> int:
        return len(self.moments)

    def gate_count(self, include_noise: bool = False, include_measurements: bool = False) -> int:
        count = len(self.unitary_operations())
        if include_noise:
            count += len(self.noise_operations())
        if include_measurements:
            count += len(self.measurement_operations())
        return count

    @property
    def parameters(self) -> Set[Symbol]:
        symbols: Set[Symbol] = set()
        for op in self.all_operations():
            symbols.update(op.parameters)
        return symbols

    @property
    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    @property
    def has_noise(self) -> bool:
        return bool(self.noise_operations())

    def __iter__(self) -> Iterator[Moment]:
        return iter(self.moments)

    def __len__(self) -> int:
        return len(self.moments)

    def __repr__(self) -> str:
        return f"Circuit(qubits={self.num_qubits}, moments={len(self.moments)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.all_operations() == other.all_operations()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def resolve_parameters(self, resolver: ParamResolver) -> "Circuit":
        """Return a copy of the circuit with symbols replaced by numbers."""
        resolved = Circuit()
        for moment in self.moments:
            new_moment = Moment(op.resolve(resolver) for op in moment)
            resolved.moments.append(new_moment)
        return resolved

    def with_noise(self, channel_factory, skip_measurements: bool = True) -> "Circuit":
        """Insert a fresh noise channel on each qubit after every gate.

        ``channel_factory`` is a zero-argument callable returning a
        single-qubit :class:`NoiseChannel`; a new channel instance is created
        per insertion so channels stay independent.  This matches the paper's
        noisy benchmarks ("symmetric depolarizing noise channel with 0.5%
        probability of occurrence after each gate").
        """
        noisy = Circuit()
        for op in self.all_operations():
            if op.is_measurement and skip_measurements:
                noisy.append(op)
                continue
            noisy.append(op)
            if isinstance(op, NoiseOperation):
                continue
            for qubit in op.qubits:
                channel = channel_factory()
                if not isinstance(channel, NoiseChannel):
                    raise TypeError("channel_factory must return a NoiseChannel")
                noisy.append(channel.on(qubit))
        return noisy

    def without_measurements(self) -> "Circuit":
        stripped = Circuit()
        stripped.append(op for op in self.all_operations() if not op.is_measurement)
        return stripped

    # ------------------------------------------------------------------
    # Dense semantics (for validation on small circuits)
    # ------------------------------------------------------------------
    def unitary(
        self,
        qubit_order: Optional[Sequence[Qubit]] = None,
        resolver: Optional[ParamResolver] = None,
    ) -> np.ndarray:
        """Compute the overall unitary of an ideal (noise-free) circuit.

        The first qubit in ``qubit_order`` is the most significant bit of the
        basis-state index.  Raises if the circuit contains noise operations.
        """
        if self.has_noise:
            raise ValueError("Circuit contains noise; it has no overall unitary")
        from ..linalg.tensor_ops import expand_operator

        qubits = list(qubit_order) if qubit_order is not None else self.all_qubits()
        index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        num = len(qubits)
        total = np.eye(2 ** num, dtype=complex)
        for op in self.all_operations():
            if op.is_measurement:
                continue
            targets = [index_of[q] for q in op.qubits]
            expanded = expand_operator(op.unitary(resolver), targets, num)
            total = expanded @ total
        return total

    # ------------------------------------------------------------------
    # Text diagram
    # ------------------------------------------------------------------
    def to_text_diagram(self) -> str:
        """Render a simple per-qubit timeline diagram (for debugging/examples)."""
        qubits = self.all_qubits()
        rows: Dict[Qubit, List[str]] = {q: [] for q in qubits}
        for moment in self.moments:
            width = 1
            labels: Dict[Qubit, str] = {}
            for op in moment:
                if isinstance(op, NoiseOperation):
                    base = f"~{op.channel.name}"
                elif op.is_measurement:
                    base = "M"
                else:
                    base = op.gate.name
                for position, qubit in enumerate(op.qubits):
                    label = base if len(op.qubits) == 1 else f"{base}[{position}]"
                    labels[qubit] = label
                    width = max(width, len(label))
            for qubit in qubits:
                cell = labels.get(qubit, "-" * 1)
                rows[qubit].append(cell.center(width, "-"))
        lines = []
        name_width = max((len(str(q)) for q in qubits), default=0)
        for qubit in qubits:
            lines.append(f"{str(qubit).rjust(name_width)}: " + "---".join(rows[qubit]))
        return "\n".join(lines)
