"""Quantum gates and operations.

A :class:`Gate` is a reusable description of a unitary (possibly
parameterized by symbols); applying it to concrete qubits with
:meth:`Gate.on` yields an :class:`Operation` that can be appended to a
circuit.

Two structural properties of a gate's unitary matter to the
knowledge-compilation pipeline:

* *monomial* (generalized permutation) unitaries — exactly one non-zero
  entry per row and column — compile to deterministic conditional amplitude
  tables and therefore to plain CNF clauses without weight variables;
* non-monomial unitaries (Hadamard, rotations about X/Y, ...) compile to
  weighted table entries.

The helpers :func:`is_monomial_matrix` and :func:`monomial_action` expose
that structure.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .parameters import (
    ParameterExpression,
    ParameterValue,
    ParamResolver,
    Symbol,
    is_parameterized,
    parameter_symbols,
    resolve,
)
from .qubits import Qubit

_ATOL = 1e-9


def is_monomial_matrix(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True if ``matrix`` has exactly one non-zero entry per row and column."""
    nonzero = np.abs(matrix) > atol
    return bool(np.all(nonzero.sum(axis=0) == 1) and np.all(nonzero.sum(axis=1) == 1))


def monomial_action(matrix: np.ndarray, atol: float = _ATOL) -> Tuple[List[int], List[complex]]:
    """Decompose a monomial unitary into a basis-state permutation plus phases.

    Returns ``(perm, phases)`` such that the gate maps input basis state ``i``
    to ``phases[i] * |perm[i]>``.
    """
    if not is_monomial_matrix(matrix, atol):
        raise ValueError("matrix is not monomial (one non-zero per row/column)")
    dim = matrix.shape[0]
    perm: List[int] = [0] * dim
    phases: List[complex] = [0j] * dim
    for col in range(dim):
        rows = np.nonzero(np.abs(matrix[:, col]) > atol)[0]
        row = int(rows[0])
        perm[col] = row
        phases[col] = complex(matrix[row, col])
    return perm, phases


class Gate:
    """Base class for quantum gates."""

    def __init__(self, name: str, num_qubits: int):
        self._name = name
        self._num_qubits = int(num_qubits)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Return the gate's unitary matrix (resolving symbols if needed)."""
        raise NotImplementedError

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        """Free symbols appearing in this gate."""
        return frozenset()

    @property
    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    def resolve(self, resolver: ParamResolver) -> "Gate":
        """Return a copy of this gate with symbols replaced by numbers."""
        return self

    def clifford_ops(self, resolver: Optional[ParamResolver] = None):
        """Tableau metadata: the gate as stabilizer primitives, or ``None``.

        Returns a tuple of :class:`repro.circuits.clifford.CliffordOp`
        primitives (``H``/``S``/``SDG``/``X``/``Y``/``Z``/``CNOT``/``CZ``/
        ``SWAP`` on gate-local qubit indices) equivalent to this gate's
        unitary up to global phase, or ``None`` when the gate is not (or not
        recognizably) Clifford.  Recognition is semantic — ``Rz(k*pi/2)``
        and friends qualify at Clifford angles — see
        :func:`repro.circuits.clifford.gate_clifford_ops`.
        """
        from .clifford import gate_clifford_ops

        return gate_clifford_ops(self, resolver)

    @property
    def is_clifford(self) -> bool:
        """True if the gate (at its current parameters) is a Clifford gate."""
        return self.clifford_ops() is not None

    def is_monomial(self, resolver: Optional[ParamResolver] = None) -> bool:
        """True if the gate's unitary is a generalized permutation matrix.

        Parameterized gates report structural monomiality, i.e. whether the
        unitary is monomial for *every* parameter value (diagonal and
        controlled-phase style gates are; X/Y rotations are not).
        """
        if self.is_parameterized and resolver is None:
            return self._structurally_monomial()
        return is_monomial_matrix(self.unitary(resolver))

    def _structurally_monomial(self) -> bool:
        return False

    def on(self, *qubits: Qubit) -> "Operation":
        return Operation(self, qubits)

    def __call__(self, *qubits: Qubit) -> "Operation":
        return self.on(*qubits)

    def __repr__(self) -> str:
        return f"<Gate {self._name}>"

    def __str__(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if self.is_parameterized or other.is_parameterized:
            return self is other
        return (
            self.num_qubits == other.num_qubits
            and np.allclose(self.unitary(), other.unitary(), atol=_ATOL)
        )

    def __hash__(self) -> int:
        return hash((self._name, self._num_qubits))


class MatrixGate(Gate):
    """A gate defined by an explicit unitary matrix."""

    def __init__(self, name: str, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=complex)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise ValueError("matrix must be square with power-of-two dimension")
        if not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-7):
            raise ValueError(f"matrix for gate {name!r} is not unitary")
        super().__init__(name, dim.bit_length() - 1)
        self._matrix = matrix

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        return self._matrix.copy()


class _ConstantGate(Gate):
    """Internal helper for gates with fixed matrices (no unitarity re-check)."""

    def __init__(self, name: str, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=complex)
        super().__init__(name, matrix.shape[0].bit_length() - 1)
        self._matrix = matrix

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        return self._matrix.copy()


_SQRT_HALF = 1.0 / math.sqrt(2.0)

I = _ConstantGate("I", np.eye(2))
X = _ConstantGate("X", np.array([[0, 1], [1, 0]]))
Y = _ConstantGate("Y", np.array([[0, -1j], [1j, 0]]))
Z = _ConstantGate("Z", np.array([[1, 0], [0, -1]]))
H = _ConstantGate("H", np.array([[_SQRT_HALF, _SQRT_HALF], [_SQRT_HALF, -_SQRT_HALF]]))
S = _ConstantGate("S", np.array([[1, 0], [0, 1j]]))
SDG = _ConstantGate("SDG", np.array([[1, 0], [0, -1j]]))
T = _ConstantGate("T", np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]))
TDG = _ConstantGate("TDG", np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]))

CNOT = _ConstantGate(
    "CNOT",
    np.array([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]),
)
CZ = _ConstantGate("CZ", np.diag([1, 1, 1, -1]).astype(complex))
SWAP = _ConstantGate(
    "SWAP",
    np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]),
)
ISWAP = _ConstantGate(
    "ISWAP",
    np.array([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]),
)
TOFFOLI = _ConstantGate(
    "TOFFOLI",
    np.block(
        [
            [np.eye(6), np.zeros((6, 2))],
            [np.zeros((2, 6)), np.array([[0, 1], [1, 0]])],
        ]
    ),
)
CCZ = _ConstantGate("CCZ", np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex))
FREDKIN = _ConstantGate(
    "FREDKIN",
    np.array(
        [
            [1, 0, 0, 0, 0, 0, 0, 0],
            [0, 1, 0, 0, 0, 0, 0, 0],
            [0, 0, 1, 0, 0, 0, 0, 0],
            [0, 0, 0, 1, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, 0, 0, 0],
            [0, 0, 0, 0, 0, 0, 1, 0],
            [0, 0, 0, 0, 0, 1, 0, 0],
            [0, 0, 0, 0, 0, 0, 0, 1],
        ]
    ),
)


class _RotationGate(Gate):
    """Base class for single-parameter rotation gates."""

    def __init__(self, name: str, angle: ParameterValue):
        super().__init__(name, self._NUM_QUBITS)
        self.angle = angle

    _NUM_QUBITS = 1

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return parameter_symbols(self.angle)

    def resolve(self, resolver: ParamResolver) -> "Gate":
        if not self.is_parameterized:
            return self
        return type(self)(resolve(self.angle, resolver))

    def _resolved_angle(self, resolver: Optional[ParamResolver]) -> float:
        return resolve(self.angle, resolver)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.angle})"

    def __str__(self) -> str:
        return f"{self._name}({self.angle})"


class Rx(_RotationGate):
    """Rotation about the X axis: exp(-i angle X / 2)."""

    def __init__(self, angle: ParameterValue):
        super().__init__("Rx", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


class Ry(_RotationGate):
    """Rotation about the Y axis: exp(-i angle Y / 2)."""

    def __init__(self, angle: ParameterValue):
        super().__init__("Ry", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)


class Rz(_RotationGate):
    """Rotation about the Z axis: exp(-i angle Z / 2).  Monomial for all angles."""

    def __init__(self, angle: ParameterValue):
        super().__init__("Rz", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        return np.array(
            [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]], dtype=complex
        )

    def _structurally_monomial(self) -> bool:
        return True


class PhaseShift(_RotationGate):
    """diag(1, exp(i angle)).  Monomial for all angles."""

    def __init__(self, angle: ParameterValue):
        super().__init__("P", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        return np.array([[1, 0], [0, cmath.exp(1j * theta)]], dtype=complex)

    def _structurally_monomial(self) -> bool:
        return True


class CPhase(_RotationGate):
    """Controlled phase: diag(1, 1, 1, exp(i angle)).  Monomial."""

    _NUM_QUBITS = 2

    def __init__(self, angle: ParameterValue):
        super().__init__("CP", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        return np.diag([1, 1, 1, cmath.exp(1j * theta)]).astype(complex)

    def _structurally_monomial(self) -> bool:
        return True


class ZZ(_RotationGate):
    """Two-qubit Ising coupling exp(-i angle Z⊗Z / 2).  Diagonal, hence monomial.

    This is the workhorse entangling gate of both the QAOA Max-Cut and the
    VQE Ising ansatz circuits in the paper's evaluation.
    """

    _NUM_QUBITS = 2

    def __init__(self, angle: ParameterValue):
        super().__init__("ZZ", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        minus = cmath.exp(-1j * theta / 2)
        plus = cmath.exp(1j * theta / 2)
        return np.diag([minus, plus, plus, minus]).astype(complex)

    def _structurally_monomial(self) -> bool:
        return True


class XX(_RotationGate):
    """Two-qubit coupling exp(-i angle X⊗X / 2) (not monomial)."""

    _NUM_QUBITS = 2

    def __init__(self, angle: ParameterValue):
        super().__init__("XX", angle)

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        theta = self._resolved_angle(resolver)
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        matrix = np.eye(4, dtype=complex) * c
        anti = -1j * s
        for i in range(4):
            matrix[i, 3 - i] = anti
        for i in range(4):
            matrix[i, i] = c
        return matrix


class ControlledGate(Gate):
    """A gate controlled on one additional qubit (control is the first qubit)."""

    def __init__(self, sub_gate: Gate):
        super().__init__(f"C{sub_gate.name}", sub_gate.num_qubits + 1)
        self.sub_gate = sub_gate

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return self.sub_gate.parameters

    def resolve(self, resolver: ParamResolver) -> "Gate":
        return ControlledGate(self.sub_gate.resolve(resolver))

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        sub = self.sub_gate.unitary(resolver)
        dim = sub.shape[0]
        full = np.eye(2 * dim, dtype=complex)
        full[dim:, dim:] = sub
        return full

    def _structurally_monomial(self) -> bool:
        return self.sub_gate._structurally_monomial()


class PermutationGate(Gate):
    """A gate permuting computational basis states, with optional phases.

    Used to express classical reversible arithmetic (e.g. modular
    multiplication in Shor's algorithm) compactly; always monomial.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        permutation: Sequence[int],
        phases: Optional[Sequence[complex]] = None,
    ):
        super().__init__(name, num_qubits)
        dim = 2 ** num_qubits
        permutation = list(permutation)
        if sorted(permutation) != list(range(dim)):
            raise ValueError("permutation must be a permutation of basis-state indices")
        self.permutation = permutation
        self.phases = [complex(p) for p in phases] if phases is not None else [1.0 + 0j] * dim
        for phase in self.phases:
            if abs(abs(phase) - 1.0) > 1e-7:
                raise ValueError("phases must have unit magnitude")

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        dim = len(self.permutation)
        matrix = np.zeros((dim, dim), dtype=complex)
        for src, dst in enumerate(self.permutation):
            matrix[dst, src] = self.phases[src]
        return matrix

    def _structurally_monomial(self) -> bool:
        return True


class MeasurementGate(Gate):
    """Computational-basis measurement of one or more qubits.

    Measurements are terminal in this toolchain: simulators sample the final
    wavefunction (or compiled arithmetic circuit) once all unitary/noise
    operations have been applied.
    """

    def __init__(self, num_qubits: int, key: str = ""):
        super().__init__("M", num_qubits)
        self.key = key

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        raise TypeError("MeasurementGate has no unitary")

    def __repr__(self) -> str:
        return f"MeasurementGate(num_qubits={self.num_qubits}, key={self.key!r})"


def measure(*qubits: Qubit, key: str = "") -> "Operation":
    """Convenience constructor for a measurement operation on ``qubits``."""
    if not qubits:
        raise ValueError("measure requires at least one qubit")
    return MeasurementGate(len(qubits), key or ",".join(str(q) for q in qubits)).on(*qubits)


class Operation:
    """A gate applied to a specific tuple of qubits."""

    def __init__(self, gate: Gate, qubits: Iterable[Qubit]):
        qubits = tuple(qubits)
        if len(qubits) != gate.num_qubits:
            raise ValueError(
                f"Gate {gate.name} acts on {gate.num_qubits} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError("Operation qubits must be distinct")
        self.gate = gate
        self.qubits = qubits

    @property
    def is_measurement(self) -> bool:
        return isinstance(self.gate, MeasurementGate)

    @property
    def parameters(self) -> FrozenSet[Symbol]:
        return self.gate.parameters

    @property
    def is_parameterized(self) -> bool:
        return self.gate.is_parameterized

    def unitary(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        return self.gate.unitary(resolver)

    def resolve(self, resolver: ParamResolver) -> "Operation":
        return Operation(self.gate.resolve(resolver), self.qubits)

    def with_qubits(self, *qubits: Qubit) -> "Operation":
        return Operation(self.gate, qubits)

    def __repr__(self) -> str:
        targets = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate}({targets})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.gate == other.gate and self.qubits == other.qubits

    def __hash__(self) -> int:
        return hash((self.gate.name, self.qubits))


def standard_gate_by_name(name: str) -> Gate:
    """Look up a constant standard gate by its canonical name."""
    table: Dict[str, Gate] = {
        "I": I,
        "X": X,
        "Y": Y,
        "Z": Z,
        "H": H,
        "S": S,
        "SDG": SDG,
        "T": T,
        "TDG": TDG,
        "CNOT": CNOT,
        "CX": CNOT,
        "CZ": CZ,
        "SWAP": SWAP,
        "ISWAP": ISWAP,
        "TOFFOLI": TOFFOLI,
        "CCX": TOFFOLI,
        "CCZ": CCZ,
        "FREDKIN": FREDKIN,
        "CSWAP": FREDKIN,
    }
    try:
        return table[name.upper()]
    except KeyError as exc:
        raise KeyError(f"Unknown standard gate: {name}") from exc
