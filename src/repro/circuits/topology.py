"""Circuit topology fingerprints and parameter canonicalization.

The knowledge-compilation pipeline compiles circuit *structure* — gate
classes and qubit wiring — while numeric parameters are re-bound per query.
Two circuits that differ only in rotation angles therefore share one compiled
arithmetic circuit, provided the cache can (a) recognize the shared topology
and (b) translate each circuit's concrete angles into the weight binding of
the shared compile.  This module supplies both halves:

* :func:`canonicalize_circuit` rewrites every parameterized-family gate angle
  (symbolic *or* concrete) to a fresh canonical symbol ``__p{i}``, producing
  a *template* circuit whose compiled form is valid for **any** angle values,
  plus the per-slot binding that recovers the original values;
* :attr:`CanonicalCircuit.topology_key` is a content hash of everything that
  determines compiled structure (wiring, gate classes, constant-gate
  matrices, noise-channel Kraus data, initial bits) and **nothing** that does
  not (angle values, symbol names, qubit names).

A QAOA ansatz carrying symbols, the same ansatz resolved at twenty different
parameter points, and a structurally identical circuit built from scratch all
map to one key — the compile-once/sweep-many contract of the paper.

Lifting a concrete angle to a symbol is always *correct* (the generic
structure evaluates exactly at every binding) but can be mildly *pessimal*
at degenerate values: ``Rx(0)`` compiles to the identity's tiny structure
when compiled directly, while the lifted template keeps the generic
``cos/sin`` weight entries bound to ``1``/``0``.  The trade is deliberate —
one reusable compile beats twenty bespoke ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .circuit import Circuit, Moment
from .gates import (
    ControlledGate,
    Gate,
    MeasurementGate,
    Operation,
    PermutationGate,
    _RotationGate,
)
from .noise import NoiseOperation
from .parameters import ParameterValue, ParamResolver, Symbol, resolve
from .qubits import Qubit

#: Bump when the canonical description or compiled on-disk format changes, so
#: stale persistent cache entries are never reused across formats.
TOPOLOGY_FORMAT_VERSION = 1

_ROUND_DIGITS = 12


class _SymbolAllocator:
    """Allocates the canonical ``__p{i}`` symbols and records their bindings."""

    def __init__(self) -> None:
        self.bindings: List[Tuple[str, ParameterValue]] = []

    def new_symbol(self, original: ParameterValue) -> Symbol:
        name = f"__p{len(self.bindings)}"
        self.bindings.append((name, original))
        return Symbol(name)


def _matrix_token(matrix: np.ndarray) -> Tuple:
    matrix = np.asarray(matrix, dtype=complex)
    return ("mat", matrix.shape, np.round(matrix, _ROUND_DIGITS).tobytes())


_STRUCTURE_ATOL = 1e-9
#: Fixed generic probe angles (arbitrary irrational-ish values) classifying a
#: rotation class's structural zero/one pattern.
_PROBE_ANGLES = (0.7316421, 1.9431753, 2.5147169)


def _entry_masks(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(is_zero, is_one) masks of a unitary's entries, mirroring the encoder."""
    matrix = np.asarray(matrix, dtype=complex)
    return (
        np.abs(matrix) <= _STRUCTURE_ATOL,
        np.abs(matrix - 1.0) <= _STRUCTURE_ATOL,
    )


def _liftable_concrete_angle(gate: "_RotationGate") -> bool:
    """Whether a concrete rotation angle may be lifted to a symbol.

    Lifting is structure-preserving only when the concrete unitary's
    zero/one entry pattern equals the gate class's *generic* pattern (the
    intersection over random probe angles, exactly how the CNF encoder
    classifies parameterized tables).  Degenerate angles — ``Ry(0)`` is the
    identity, ``Rx(pi)`` is monomial — compile to genuinely smaller
    structures when kept concrete, and lifting them would silently change
    compiled artifacts (e.g. which output bits unit propagation forces); such
    gates are keyed by their matrix instead.
    """
    try:
        concrete = gate.unitary(None)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return False
    zero, one = _entry_masks(concrete)
    generic_zero = np.ones_like(zero)
    generic_one = np.ones_like(one)
    for angle in _PROBE_ANGLES:
        probe_zero, probe_one = _entry_masks(type(gate)(angle).unitary(None))
        generic_zero &= probe_zero
        generic_one &= probe_one
    return bool(np.array_equal(zero, generic_zero) and np.array_equal(one, generic_one))


def _rewrite_gate(gate: Gate, alloc: _SymbolAllocator) -> Tuple[Gate, Tuple]:
    """Return ``(template_gate, signature)`` for one gate.

    The signature captures exactly the structural identity of the gate; the
    template gate is the original with angle slots replaced by canonical
    symbols (or the original object when nothing needs rewriting).
    """
    if isinstance(gate, _RotationGate):
        # Every rotation-family angle — symbolic expression or generic
        # concrete number — becomes its own canonical symbol.  The signature
        # carries only the gate class, making the key angle-value
        # independent.  Degenerate concrete angles (see
        # :func:`_liftable_concrete_angle`) keep their exact matrix.
        if gate.is_parameterized or _liftable_concrete_angle(gate):
            return type(gate)(alloc.new_symbol(gate.angle)), ("rot", type(gate).__name__)
        return gate, _matrix_token(gate.unitary())
    if isinstance(gate, ControlledGate):
        inner, inner_signature = _rewrite_gate(gate.sub_gate, alloc)
        template = gate if inner is gate.sub_gate else ControlledGate(inner)
        return template, ("ctrl", inner_signature)
    if isinstance(gate, MeasurementGate):
        return gate, ("meas", gate.num_qubits)
    if isinstance(gate, PermutationGate):
        # Keyed by permutation + phases directly; materializing the unitary
        # would be O(4^k) for the wide arithmetic gates of Shor's algorithm.
        phases = tuple(complex(np.round(p, _ROUND_DIGITS)) for p in gate.phases)
        return gate, ("perm", tuple(gate.permutation), phases)
    if not gate.is_parameterized:
        return gate, _matrix_token(gate.unitary())
    # Unknown parameterized gate class: no rewrite.  Keying by repr (which
    # names the class, its values and symbol names) keeps correctness — two
    # circuits share a template only when these gates are literally equal and
    # the pass-through resolver covers their symbols.
    return gate, ("opaque", type(gate).__name__, repr(gate))


def _noise_signature(operation: NoiseOperation) -> Tuple:
    channel = operation.channel
    if channel.is_parameterized:
        # Symbolic noise stays symbolic in the template (probe resolvers would
        # otherwise sample probabilities outside [0, 1]); the repr-based key
        # means sharing requires literally matching channel definitions, and
        # the user's own resolver passes through to bind them.
        symbols = tuple(sorted(s.name for s in channel.parameters))
        return ("noise_sym", type(channel).__name__, repr(channel), symbols)
    kraus = np.asarray(channel.kraus_operators(None), dtype=complex)
    return ("noise", type(channel).__name__, kraus.shape, np.round(kraus, _ROUND_DIGITS).tobytes())


def bind_canonical_parameters(
    bindings: Sequence[Tuple[str, ParameterValue]],
    resolver: Optional[ParamResolver],
) -> Optional[ParamResolver]:
    """Translate a caller resolver into canonical-symbol assignments.

    The single implementation behind :meth:`CanonicalCircuit.bind` and
    :meth:`repro.simulator.kc_simulator.CompiledCircuit.effective_resolver`:
    every canonical symbol gets the value of its original expression under
    ``resolver``, merged over the caller's own assignments so symbols the
    canonicalization left untouched (e.g. symbolic noise strengths) still
    resolve.  With no bindings, ``resolver`` passes through unchanged.

    Raises
    ------
    ValueError
        If an original value is symbolic and ``resolver`` is ``None``.
    """
    if not bindings:
        return resolver
    merged: Dict[str, float] = {} if resolver is None else resolver.as_dict()
    for name, original in bindings:
        merged[name] = resolve(original, resolver)
    return ParamResolver(merged)


class CanonicalCircuit:
    """A circuit rewritten over canonical parameter symbols.

    Attributes
    ----------
    circuit:
        The original circuit the canonical form was derived from.
    template:
        The rewritten circuit: identical moment structure, with every
        rotation-family angle replaced by a canonical ``__p{i}`` symbol.
        This is what the knowledge compiler actually compiles.
    bindings:
        ``(canonical_name, original_value)`` pairs, one per rewritten angle
        slot, in order of appearance.  ``original_value`` is the slot's
        original :data:`ParameterValue` — a number, a :class:`Symbol` or an
        affine :class:`ParameterExpression`.
    topology_key:
        Hex SHA-256 digest of the structural description.  Equal keys mean
        the compiled artifact is interchangeable modulo weight re-binding.
    """

    def __init__(
        self,
        circuit: Circuit,
        template: Circuit,
        bindings: List[Tuple[str, ParameterValue]],
        topology_key: str,
    ):
        self.circuit = circuit
        self.template = template
        self.bindings = bindings
        self.topology_key = topology_key

    @property
    def is_rewritten(self) -> bool:
        """True if any gate parameter was lifted to a canonical symbol."""
        return bool(self.bindings)

    def bind(self, resolver: Optional[ParamResolver]) -> Optional[ParamResolver]:
        """Translate a resolver over the original circuit to the template.

        Returns a resolver assigning every canonical symbol the value of its
        original expression under ``resolver`` (concrete originals need no
        resolver at all), merged over the caller's own assignments so that
        non-rewritten symbols — e.g. symbolic noise strengths — still
        resolve.

        Raises
        ------
        ValueError
            If an original angle is symbolic and ``resolver`` is ``None``
            (the same contract as querying an unresolved circuit directly).
        """
        return bind_canonical_parameters(self.bindings, resolver)

    def __repr__(self) -> str:
        return (
            f"CanonicalCircuit(key={self.topology_key[:12]}..., "
            f"lifted={len(self.bindings)})"
        )


def canonicalize_circuit(
    circuit: Circuit,
    qubit_order: Optional[Sequence[Qubit]] = None,
    initial_bits: Optional[Sequence[int]] = None,
) -> CanonicalCircuit:
    """Compute the canonical form and topology key of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to fingerprint (parameterized or fully resolved).
    qubit_order:
        The qubit order the compile will use (defaults to the circuit's
        sorted qubits); qubits enter the key by *position*, not name.
    initial_bits:
        Initial computational-basis bits baked into the compile (part of the
        key: different initial states compile to different structures).

    Returns
    -------
    CanonicalCircuit
        Template + bindings + key; see the class docstring.
    """
    qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
    position_of: Dict[Qubit, int] = {qubit: index for index, qubit in enumerate(qubits)}
    alloc = _SymbolAllocator()

    description: List = [
        TOPOLOGY_FORMAT_VERSION,
        len(qubits),
        tuple(int(b) for b in initial_bits) if initial_bits is not None else None,
    ]
    template = Circuit()
    for moment in circuit.moments:
        new_operations: List[Operation] = []
        for operation in moment:
            # Qubits absent from an explicit qubit_order are an error later in
            # the pipeline; surface it here with the same vocabulary.
            try:
                positions = tuple(position_of[qubit] for qubit in operation.qubits)
            except KeyError as error:
                raise ValueError(f"operation {operation!r} uses a qubit outside qubit_order") from error
            if isinstance(operation, NoiseOperation):
                description.append((_noise_signature(operation), positions))
                new_operations.append(operation)
                continue
            template_gate, signature = _rewrite_gate(operation.gate, alloc)
            description.append((signature, positions))
            new_operations.append(
                operation if template_gate is operation.gate else Operation(template_gate, operation.qubits)
            )
        # Preserve the exact moment structure: operation order determines
        # Bayesian-network node insertion order and hence CNF numbering.
        template.moments.append(Moment(new_operations))

    digest = hashlib.sha256(repr(description).encode("utf-8")).hexdigest()
    return CanonicalCircuit(circuit, template, alloc.bindings, digest)


def circuit_topology_key(
    circuit: Circuit,
    qubit_order: Optional[Sequence[Qubit]] = None,
    initial_bits: Optional[Sequence[int]] = None,
) -> str:
    """The topology fingerprint alone (see :func:`canonicalize_circuit`)."""
    return canonicalize_circuit(circuit, qubit_order, initial_bits).topology_key
