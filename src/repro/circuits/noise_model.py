"""Circuit-level noise models.

``Circuit.with_noise`` attaches one fixed channel after every gate — the
construction the paper's noisy benchmarks use.  Real devices are better
described by a *noise model* that distinguishes gate classes: two-qubit gates
are typically an order of magnitude noisier than single-qubit gates, idle
qubits decohere, and measurement has its own error.  :class:`NoiseModel`
captures that policy and applies it to a circuit, producing exactly the kind
of noisy circuit the knowledge-compilation simulator consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import Operation
from .noise import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    NoiseChannel,
    NoiseOperation,
    PhaseDampingChannel,
)
from .parameters import ParameterValue
from .qubits import Qubit

ChannelFactory = Callable[[], NoiseChannel]

# Distinguishes "argument omitted" from an explicit ``None`` (= disabled):
# ``multi_qubit_noise`` falls back to ``two_qubit_noise`` only when omitted.
_UNSET = object()


def _idle_factories(
    idle_noise: "Optional[ChannelFactory | Sequence[ChannelFactory]]",
) -> Tuple[ChannelFactory, ...]:
    """Normalize the ``idle_noise`` argument to a tuple of channel factories."""
    if idle_noise is None:
        return ()
    if callable(idle_noise):
        return (idle_noise,)
    return tuple(idle_noise)


class NoiseModel:
    """A per-gate-class noise policy applied to whole circuits.

    Parameters
    ----------
    single_qubit_noise, two_qubit_noise, multi_qubit_noise:
        Factories producing a fresh single-qubit channel applied to every
        qubit touched by a gate of the corresponding class (``None`` disables
        that class).  ``multi_qubit_noise`` (gates on 3+ qubits) defaults to
        the two-qubit factory when omitted; passing ``None`` explicitly
        disables it even when ``two_qubit_noise`` is set.
    measurement_noise:
        Channel factory applied to each measured qubit *before* its terminal
        measurement (models readout error as a pre-measurement flip).
    idle_noise:
        A channel factory — or a sequence of factories, applied in order —
        producing the channels attached once per moment to every qubit that
        is idle during that moment (models decoherence while waiting).
        Normalized to the tuple attribute ``idle_noise``.
    """

    def __init__(
        self,
        single_qubit_noise: Optional[ChannelFactory] = None,
        two_qubit_noise: Optional[ChannelFactory] = None,
        multi_qubit_noise: Optional[ChannelFactory] = _UNSET,
        measurement_noise: Optional[ChannelFactory] = None,
        idle_noise: "Optional[ChannelFactory | Sequence[ChannelFactory]]" = None,
    ):
        self.single_qubit_noise = single_qubit_noise
        self.two_qubit_noise = two_qubit_noise
        self.multi_qubit_noise = (
            two_qubit_noise if multi_qubit_noise is _UNSET else multi_qubit_noise
        )
        self.measurement_noise = measurement_noise
        self.idle_noise: Tuple[ChannelFactory, ...] = _idle_factories(idle_noise)

    # ------------------------------------------------------------------
    @classmethod
    def depolarizing(
        cls,
        single_qubit_probability: ParameterValue = 0.001,
        two_qubit_probability: ParameterValue = 0.01,
        measurement_probability: Optional[ParameterValue] = None,
    ) -> "NoiseModel":
        """The standard device model: depolarizing noise scaled by gate class."""
        measurement = (
            (lambda: BitFlipChannel(measurement_probability))
            if measurement_probability is not None
            else None
        )
        return cls(
            single_qubit_noise=lambda: DepolarizingChannel(single_qubit_probability),
            two_qubit_noise=lambda: DepolarizingChannel(two_qubit_probability),
            measurement_noise=measurement,
        )

    @classmethod
    def thermal_relaxation(
        cls,
        amplitude_damping: ParameterValue = 0.002,
        phase_damping: ParameterValue = 0.004,
    ) -> "NoiseModel":
        """T1/T2-style idle decoherence: amplitude plus phase damping on idle qubits."""
        return cls(
            idle_noise=[
                lambda: AmplitudeDampingChannel(amplitude_damping),
                lambda: PhaseDampingChannel(phase_damping),
            ]
        )

    # ------------------------------------------------------------------
    def _channel_for(self, operation: Operation) -> Optional[ChannelFactory]:
        arity = len(operation.qubits)
        if arity == 1:
            return self.single_qubit_noise
        if arity == 2:
            return self.two_qubit_noise
        return self.multi_qubit_noise

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a noisy copy of ``circuit`` according to this model.

        Walks the circuit moment by moment: each gate gets its class's
        channel on every touched qubit, measured qubits get the measurement
        channel *before* their terminal measurement, and qubits idle during
        a moment get the idle channels (in order).  Existing noise
        operations pass through untouched.

        Args:
            circuit: The ideal (or partially noisy) circuit to decorate.

        Returns:
            A new :class:`Circuit`; the input is not modified.

        Raises:
            TypeError: If a configured factory returns something other than
                a :class:`NoiseChannel` (raised on first use).
        """
        all_qubits = circuit.all_qubits()
        noisy = Circuit()
        for moment in circuit.moments:
            busy: set = set()
            for operation in moment:
                busy.update(operation.qubits)
                if isinstance(operation, NoiseOperation):
                    noisy.append(operation)
                    continue
                if operation.is_measurement:
                    if self.measurement_noise is not None:
                        for qubit in operation.qubits:
                            noisy.append(self.measurement_noise().on(qubit))
                    noisy.append(operation)
                    continue
                noisy.append(operation)
                factory = self._channel_for(operation)
                if factory is not None:
                    for qubit in operation.qubits:
                        noisy.append(factory().on(qubit))
            if self.idle_noise:
                for qubit in all_qubits:
                    if qubit not in busy:
                        for idle_factory in self.idle_noise:
                            noisy.append(idle_factory().on(qubit))
        return noisy

    def __call__(self, circuit: Circuit) -> Circuit:
        return self.apply(circuit)

    def __repr__(self) -> str:
        parts = []
        if self.single_qubit_noise is not None:
            parts.append("1q")
        if self.two_qubit_noise is not None:
            parts.append("2q")
        if self.multi_qubit_noise is not None and self.multi_qubit_noise is not self.two_qubit_noise:
            parts.append("multi")
        if self.measurement_noise is not None:
            parts.append("meas")
        if self.idle_noise:
            names = "+".join(factory().name for factory in self.idle_noise)
            parts.append(f"idle[{names}]")
        return f"NoiseModel({'+'.join(parts) or 'none'})"
