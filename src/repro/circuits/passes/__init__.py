"""Circuit-rewrite optimizer passes.

See :mod:`repro.circuits.passes.base` for the framework contract and
``docs/compiler-passes.md`` for the pass catalogue and the invariants each
pass promises (enforced by ``tests/test_passes.py`` and the differential
fuzzer).
"""

from .base import (
    OptimizationResult,
    OptimizeSpec,
    Pass,
    PassPipeline,
    PipelineStats,
    RewriteStats,
    default_pipeline,
    optimize_circuit,
    resolve_pipeline,
)
from .clifford_prefix import CliffordPrefixPass, split_clifford_prefix
from .commutation import CommutationPass
from .fusion import FusionPass
from .light_cone import LightConePass

__all__ = [
    "CliffordPrefixPass",
    "CommutationPass",
    "FusionPass",
    "LightConePass",
    "OptimizationResult",
    "OptimizeSpec",
    "Pass",
    "PassPipeline",
    "PipelineStats",
    "RewriteStats",
    "default_pipeline",
    "optimize_circuit",
    "resolve_pipeline",
    "split_clifford_prefix",
]
