"""The pass framework: :class:`Pass`, :class:`PassPipeline`, rewrite stats.

A pass is a *pure* circuit-to-circuit rewrite: it never mutates its input,
and when it finds nothing to rewrite it returns the input object unchanged
(moment structure and gate identities preserved exactly).  Every pass
promises:

* **semantics** — the output circuit is equivalent to the input up to global
  phase on the qubits the caller can observe (all qubits for every pass
  except light-cone pruning, which preserves the joint distribution over
  *measured* qubits);
* **monotonicity** — the operation count never increases;
* **idempotence** — running the same pass twice equals running it once;
* **value-blindness** (rewriting passes) — every rewrite decision for a
  rotation-family gate depends only on the gate's *class* and wiring, never
  on its angle value, so a symbolic ansatz and its resolved instances (at
  generic angles) rewrite identically and keep sharing one
  ``circuit_topology_key`` / compiled artifact.  The one deliberate
  exception mirrors the canonicalizer's degenerate-angle carve-out:
  a *concrete* gate whose unitary is the identity up to global phase is
  dropped (such angles already key by matrix rather than lifting).

``tests/test_passes.py`` enforces each promise metamorphically and
``tests/test_differential_fuzz.py`` checks optimized-vs-unoptimized parity
across every backend.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

from ..circuit import Circuit

#: Values accepted by the ``optimize=`` keyword across the execution layers.
OptimizeSpec = Union[None, bool, str, "PassPipeline"]


class RewriteStats(NamedTuple):
    """What one pass did to one circuit."""

    pass_name: str
    operations_before: int
    operations_after: int
    #: Local rewrite actions applied (merges, cancellations, drops, moves).
    rewrites: int

    @property
    def removed(self) -> int:
        return self.operations_before - self.operations_after

    @property
    def changed(self) -> bool:
        return self.rewrites > 0


class PipelineStats(NamedTuple):
    """Aggregated per-pass stats for one :meth:`PassPipeline.run`."""

    passes: Tuple[RewriteStats, ...]
    operations_before: int
    operations_after: int
    iterations: int

    @property
    def removed(self) -> int:
        return self.operations_before - self.operations_after

    @property
    def changed(self) -> bool:
        return any(stats.changed for stats in self.passes)

    def summary(self) -> str:
        """One human-readable line per pass plus the total (for examples/CLIs)."""
        lines = [
            f"{self.operations_before} -> {self.operations_after} operations "
            f"({self.iterations} iteration{'s' if self.iterations != 1 else ''})"
        ]
        totals: "dict[str, List[int]]" = {}
        for stats in self.passes:
            entry = totals.setdefault(stats.pass_name, [0, 0])
            entry[0] += stats.rewrites
            entry[1] += stats.removed
        for name, (rewrites, removed) in totals.items():
            lines.append(f"  {name}: {rewrites} rewrites, {removed} operations removed")
        return "\n".join(lines)


class OptimizationResult(NamedTuple):
    """An optimized circuit plus the stats describing how it got there."""

    circuit: Circuit
    stats: PipelineStats


def _operation_count(circuit: Circuit) -> int:
    return len(circuit.all_operations())


class Pass:
    """Base class for circuit rewrites.  Subclasses implement :meth:`rewrite`."""

    #: Stable identifier used in stats, docs and tests.
    name = "pass"

    def rewrite(self, circuit: Circuit) -> Tuple[Circuit, int]:
        """Return ``(rewritten_circuit, rewrite_actions)``.

        Must be pure: never mutate ``circuit``, and return the input object
        itself (with ``0`` actions) when there is nothing to rewrite.
        """
        raise NotImplementedError

    def run(self, circuit: Circuit) -> Tuple[Circuit, RewriteStats]:
        """Apply the pass once, returning the new circuit and its stats."""
        before = _operation_count(circuit)
        rewritten, actions = self.rewrite(circuit)
        return rewritten, RewriteStats(self.name, before, _operation_count(rewritten), actions)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class PassPipeline:
    """A sequence of passes, iterated to a fixed point.

    One iteration applies every pass once, in order; iterations repeat until
    a full round performs zero rewrite actions (each pass's enabling
    conditions can be created by another — a cancellation can make two
    rotations adjacent) or ``max_iterations`` rounds have run.  The default
    bound is a safety net, not a tuning knob: each round either rewrites
    (strictly consuming a finite supply of merge opportunities) or
    terminates.
    """

    def __init__(self, passes: Sequence[Pass], max_iterations: int = 16):
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.max_iterations = int(max_iterations)

    def run(self, circuit: Circuit) -> OptimizationResult:
        """Rewrite ``circuit`` to a fixed point of every pass."""
        before = _operation_count(circuit)
        all_stats: List[RewriteStats] = []
        iterations = 0
        current = circuit
        for _ in range(self.max_iterations):
            iterations += 1
            round_actions = 0
            for single_pass in self.passes:
                current, stats = single_pass.run(current)
                all_stats.append(stats)
                round_actions += stats.rewrites
            if round_actions == 0:
                break
        return OptimizationResult(
            current,
            PipelineStats(tuple(all_stats), before, _operation_count(current), iterations),
        )

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"PassPipeline([{names}])"


def default_pipeline() -> PassPipeline:
    """The value-blind rewrite pipeline safe in front of every backend.

    Light-cone pruning, adjacent-gate fusion and commutation-aware
    cancellation — everything whose rewrite decisions are independent of
    rotation angle values, so optimized symbolic ansätze and their resolved
    instances keep sharing one topology key.  Clifford-prefix extraction is
    deliberately *not* here: whether a rotation is Clifford depends on its
    bound angle, so it runs at routing time (see
    :class:`repro.simulator.hybrid.HybridSimulator`), not at compile time.
    """
    from .commutation import CommutationPass
    from .fusion import FusionPass
    from .light_cone import LightConePass

    return PassPipeline([LightConePass(), FusionPass(), CommutationPass()])


def resolve_pipeline(optimize: OptimizeSpec) -> Optional[PassPipeline]:
    """Normalize an ``optimize=`` keyword value to a pipeline (or ``None``).

    ``None``/``False`` disable optimization; ``True`` and ``"auto"`` select
    :func:`default_pipeline`; a :class:`PassPipeline` passes through.
    """
    if optimize is None or optimize is False:
        return None
    if optimize is True or optimize == "auto":
        return default_pipeline()
    if isinstance(optimize, PassPipeline):
        return optimize
    raise ValueError(
        f"optimize must be None, a bool, 'auto' or a PassPipeline, got {optimize!r}"
    )


def optimize_circuit(circuit: Circuit, optimize: OptimizeSpec = True) -> OptimizationResult:
    """One-call convenience: rewrite ``circuit`` with the selected pipeline."""
    pipeline = resolve_pipeline(optimize)
    if pipeline is None:
        count = _operation_count(circuit)
        return OptimizationResult(circuit, PipelineStats((), count, count, 0))
    return pipeline.run(circuit)
