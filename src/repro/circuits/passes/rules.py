"""Shared rewrite rules: merge, cancellation, identity and commutation tests.

The rules split by gate kind to keep every decision **value-blind** for
rotation families:

* :class:`~repro.circuits.gates._RotationGate` instances (symbolic *or*
  concrete) only interact through class-based rules — same-class merge
  (``Rz(a) . Rz(b) -> Rz(a + b)``, exact for every family in the gate set)
  and probe-angle structural diagonality — so a symbolic ansatz and its
  resolved instances rewrite identically;
* constant gates may use numeric tests (inverse-pair products, diagonality,
  matrix commutators), memoized by **matrix value**, never by object
  identity, so a mutated gate object can never hit a stale entry;
* the one concrete-angle rule — dropping a gate whose unitary is the
  identity up to global phase — applies only where the canonicalizer's
  degenerate-angle carve-out already keys the gate by matrix
  (:func:`~repro.circuits.topology._liftable_concrete_angle` is false), so
  topology-key sharing between symbolic and resolved circuits survives.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..clifford import equal_up_to_global_phase
from ..gates import CNOT, ControlledGate, Gate, Operation, Rx, X, _RotationGate
from ..noise import NoiseOperation
from ..parameters import add_parameter_values
from ..topology import _PROBE_ANGLES, _liftable_concrete_angle

_ATOL = 1e-9

#: Sentinel returned by :func:`try_merge` when the pair cancels outright.
CANCEL = object()

#: Rotation families whose unitary is invariant under swapping their qubits
#: (diagonal with a symmetric diagonal), so operations match on qubit *set*.
_SYMMETRIC_FAMILY_NAMES = ("ZZ", "CP")

# ---------------------------------------------------------------------------
# Structural diagonality.
# ---------------------------------------------------------------------------
#: Per rotation *class* (an immutable property, safe to key by class).
_DIAGONAL_CLASS_CACHE: Dict[type, bool] = {}
#: Per constant-gate matrix value (mutation-safe: keyed by entries, not id).
_DIAGONAL_MATRIX_CACHE: Dict[Tuple[int, bytes], bool] = {}
_DIAGONAL_MATRIX_CACHE_MAX = 1024


def _matrix_is_diagonal(matrix: np.ndarray) -> bool:
    off = matrix - np.diag(np.diag(matrix))
    return bool(np.all(np.abs(off) <= _ATOL))


def _rotation_class_diagonal(gate_class: type) -> bool:
    cached = _DIAGONAL_CLASS_CACHE.get(gate_class)
    if cached is None:
        cached = all(
            _matrix_is_diagonal(gate_class(angle).unitary(None)) for angle in _PROBE_ANGLES
        )
        _DIAGONAL_CLASS_CACHE[gate_class] = cached
    return cached


def structurally_diagonal(gate: Gate) -> bool:
    """Whether the gate's unitary is diagonal for *every* parameter value.

    Rotation families answer per class (probed at the canonicalizer's fixed
    generic angles, concrete and symbolic instances alike); constant gates
    answer numerically with a value-keyed memo; other parameterized gates
    conservatively answer ``False``.
    """
    if isinstance(gate, _RotationGate):
        return _rotation_class_diagonal(type(gate))
    if isinstance(gate, ControlledGate):
        return structurally_diagonal(gate.sub_gate)
    if gate.is_parameterized:
        return False
    try:
        matrix = gate.unitary(None)
    except TypeError:  # measurement gates have no unitary
        return False
    key = (matrix.shape[0], np.round(matrix, 9).tobytes())
    cached = _DIAGONAL_MATRIX_CACHE.get(key)
    if cached is None:
        cached = _matrix_is_diagonal(matrix)
        if len(_DIAGONAL_MATRIX_CACHE) >= _DIAGONAL_MATRIX_CACHE_MAX:
            _DIAGONAL_MATRIX_CACHE.clear()
        _DIAGONAL_MATRIX_CACHE[key] = cached
    return cached


# ---------------------------------------------------------------------------
# Identity removal.
# ---------------------------------------------------------------------------
def removable_identity(operation: Operation) -> bool:
    """True if the operation may be dropped (unitary = global phase only).

    Parameterized gates are never removable.  Concrete rotation-family gates
    are removable only when their angle is *degenerate* in the
    canonicalizer's sense (not liftable to a generic symbol — ``Rz(0)`` is,
    ``Rz(4*pi)`` = ``-I`` is not: the latter shares the generic zero/one
    pattern and keeps sharing the lifted compile instead).
    """
    if operation.is_measurement or isinstance(operation, NoiseOperation):
        return False
    gate = operation.gate
    if gate.is_parameterized:
        return False
    if isinstance(gate, _RotationGate) and _liftable_concrete_angle(gate):
        return False
    matrix = gate.unitary(None)
    return equal_up_to_global_phase(matrix, np.eye(matrix.shape[0]))


# ---------------------------------------------------------------------------
# Merging and cancellation.
# ---------------------------------------------------------------------------
def _rotation_qubits_match(prev: Operation, cur: Operation) -> bool:
    if prev.qubits == cur.qubits:
        return True
    return (
        prev.gate.name in _SYMMETRIC_FAMILY_NAMES
        and set(prev.qubits) == set(cur.qubits)
    )


def _merge_rotations(
    gate_class: type, prev: Operation, cur: Operation, prev_angle, cur_angle
):
    angle = add_parameter_values(prev_angle, cur_angle)
    merged = gate_class(angle)
    wrapped: Gate = merged
    if isinstance(prev.gate, ControlledGate):
        wrapped = ControlledGate(merged)
    operation = Operation(wrapped, prev.qubits)
    if removable_identity(operation):
        return CANCEL
    return operation


def try_merge(prev: Operation, cur: Operation):
    """Merge or cancel two unitary-gate operations, ``prev`` before ``cur``.

    Returns a merged :class:`Operation` (placed on ``prev``'s qubits),
    :data:`CANCEL` when the pair multiplies to the identity up to global
    phase, or ``None`` when the pair must be left alone.  Callers guarantee
    adjacency (or commutation of everything in between).
    """
    prev_gate, cur_gate = prev.gate, cur.gate
    # Same-family rotations: exact angle addition, symbolic or concrete.
    if (
        isinstance(prev_gate, _RotationGate)
        and type(prev_gate) is type(cur_gate)
        and _rotation_qubits_match(prev, cur)
    ):
        return _merge_rotations(type(prev_gate), prev, cur, prev_gate.angle, cur_gate.angle)
    # Controlled rotations of the same family (control is qubit 0 for both).
    if (
        isinstance(prev_gate, ControlledGate)
        and isinstance(cur_gate, ControlledGate)
        and isinstance(prev_gate.sub_gate, _RotationGate)
        and type(prev_gate.sub_gate) is type(cur_gate.sub_gate)
        and prev.qubits == cur.qubits
    ):
        return _merge_rotations(
            type(prev_gate.sub_gate), prev, cur, prev_gate.sub_gate.angle, cur_gate.sub_gate.angle
        )
    # Constant-gate inverse pairs (H.H, T.TDG, CNOT.CNOT, ...).  Rotation
    # instances are excluded even when concrete: a numeric product test
    # would cancel generic-angle pairs (e.g. Rz(t).P(-t)) that their
    # symbolic twins cannot, splitting the shared topology key.
    if (
        not isinstance(prev_gate, _RotationGate)
        and not isinstance(cur_gate, _RotationGate)
        and not prev_gate.is_parameterized
        and not cur_gate.is_parameterized
        and prev.qubits == cur.qubits
    ):
        product = cur_gate.unitary(None) @ prev_gate.unitary(None)
        if equal_up_to_global_phase(product, np.eye(product.shape[0])):
            return CANCEL
    return None


# ---------------------------------------------------------------------------
# Commutation.
# ---------------------------------------------------------------------------
def _is_cnot(gate: Gate) -> bool:
    return gate is CNOT or (not gate.is_parameterized and gate == CNOT)


def _x_axis_1q(gate: Gate) -> bool:
    return gate is X or isinstance(gate, Rx) or (not gate.is_parameterized and gate.num_qubits == 1 and gate == X)


def commutes(a: Operation, b: Operation) -> bool:
    """Sufficient (never necessary) structural commutation test.

    Rules, all value-blind for rotation families:

    * disjoint qubits always commute;
    * two structurally diagonal gates commute however they overlap;
    * a diagonal gate on a CNOT's control commutes with the CNOT, an
      X-family gate on its target likewise; two CNOTs sharing only controls
      (or only targets) commute;
    * constant gates on the same qubit tuple fall back to a numeric
      commutator test.
    """
    if not set(a.qubits).intersection(b.qubits):
        return True
    if a.is_measurement or b.is_measurement:
        return False
    if isinstance(a, NoiseOperation) or isinstance(b, NoiseOperation):
        return False
    if structurally_diagonal(a.gate) and structurally_diagonal(b.gate):
        return True
    for cnot, other in ((a, b), (b, a)):
        if not _is_cnot(cnot.gate):
            continue
        control, target = cnot.qubits
        if _is_cnot(other.gate):
            shared = set(cnot.qubits).intersection(other.qubits)
            if shared == {control} and other.qubits[0] == control:
                return True
            if shared == {target} and other.qubits[1] == target:
                return True
            continue
        if len(other.qubits) == 1:
            if other.qubits[0] == control and structurally_diagonal(other.gate):
                return True
            if other.qubits[0] == target and _x_axis_1q(other.gate):
                return True
    if (
        a.qubits == b.qubits
        and not a.gate.is_parameterized
        and not b.gate.is_parameterized
        and not isinstance(a.gate, _RotationGate)
        and not isinstance(b.gate, _RotationGate)
    ):
        ua, ub = a.gate.unitary(None), b.gate.unitary(None)
        return bool(np.allclose(ua @ ub, ub @ ua, atol=_ATOL))
    return False
