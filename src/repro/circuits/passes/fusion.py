"""Adjacent-gate fusion: rotation merging and inverse-pair cancellation.

The pass walks the operation list once, keeping an output list with holes.
For every qubit it tracks the index of the last surviving operation touching
it; a new operation whose qubits *all* point at the same surviving operation
is adjacent to it on every shared wire and may merge with it
(:func:`~repro.circuits.passes.rules.try_merge`): same-family rotations add
their angles exactly (``Rz(a) . Rz(b) -> Rz(a + b)``, symbolic or concrete),
constant inverse pairs (``H . H``, ``T . TDG``, ``CNOT . CNOT``) cancel.
Merges cascade — a merged rotation may in turn merge with the operation that
became adjacent once its neighbour disappeared — and gates whose unitary is
the identity up to global phase (under the canonicalizer's degenerate-angle
carve-out) are dropped outright.

Noise channels and measurements are barriers: a channel need not commute
with a unitary, so nothing fuses across them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..circuit import Circuit
from ..gates import Operation
from ..noise import NoiseOperation
from ..qubits import Qubit
from .base import Pass
from .rules import CANCEL, removable_identity, try_merge

#: A partner-search strategy: given the output list and per-qubit last-index
#: map, return the index of a merge candidate for ``current`` (or ``None``).
PartnerFinder = Callable[[List[Optional[Operation]], Dict[Qubit, int], Operation], Optional[int]]


def run_peephole(circuit: Circuit, find_partner: PartnerFinder) -> Tuple[Circuit, int]:
    """Generic merge/cancel peephole shared by fusion and commutation.

    Walks operations in order; for each unitary-gate operation, repeatedly
    asks ``find_partner`` for an earlier surviving operation to merge with,
    applies :func:`try_merge`, and cascades until no partner merges.  Pure:
    the input circuit is never mutated, and the input object itself is
    returned when zero rewrite actions fired.
    """
    operations = circuit.all_operations()
    out: List[Optional[Operation]] = []
    last: Dict[Qubit, int] = {}
    actions = 0

    def place(operation: Operation) -> None:
        out.append(operation)
        index = len(out) - 1
        for qubit in operation.qubits:
            last[qubit] = index

    def unplace(index: int) -> None:
        removed = out[index]
        assert removed is not None
        out[index] = None
        for qubit in removed.qubits:
            if last.get(qubit) != index:
                continue
            del last[qubit]
            for j in range(index - 1, -1, -1):
                earlier = out[j]
                if earlier is not None and qubit in earlier.qubits:
                    last[qubit] = j
                    break

    for operation in operations:
        if operation.is_measurement or isinstance(operation, NoiseOperation):
            place(operation)
            continue
        current: Optional[Operation] = operation
        while current is not None:
            partner_index = find_partner(out, last, current)
            if partner_index is None:
                break
            partner = out[partner_index]
            assert partner is not None
            merged = try_merge(partner, current)
            if merged is None:
                break
            actions += 1
            unplace(partner_index)
            current = None if merged is CANCEL else merged
        if current is None:
            continue
        if removable_identity(current):
            actions += 1
            continue
        place(current)

    if actions == 0:
        return circuit, 0
    rewritten = Circuit()
    rewritten.append([operation for operation in out if operation is not None])
    return rewritten, actions


def _adjacent_partner(
    out: List[Optional[Operation]], last: Dict[Qubit, int], current: Operation
) -> Optional[int]:
    indices = {last.get(qubit) for qubit in current.qubits}
    if len(indices) != 1:
        return None
    (index,) = indices
    if index is None:
        return None
    partner = out[index]
    if partner is None or partner.is_measurement or isinstance(partner, NoiseOperation):
        return None
    return index


class FusionPass(Pass):
    """Merge/cancel pairs of operations adjacent on every shared wire."""

    name = "fusion"

    def rewrite(self, circuit: Circuit) -> Tuple[Circuit, int]:
        return run_peephole(circuit, _adjacent_partner)
