"""Commutation-based gate cancellation.

Fusion only sees pairs that are adjacent on every shared wire; this pass
additionally looks *through* operations that provably commute with the
incoming gate.  Scanning the surviving output backwards from the end, every
operation the incoming gate commutes with (per the structural, value-blind
rules in :func:`~repro.circuits.passes.rules.commutes`) is skipped; the
first operation that offers a merge (:func:`try_merge`) is taken; the first
operation that neither commutes nor merges blocks the search.

Merging at a distance is sound because the merged operation has the same
gate family and qubits as the gate being moved: everything it was moved past
commutes with the result too, so the merged gate may equally sit at the
partner's position.  The classic payoff is ``T(q0) . CNOT(q0,q1) . TDG(q0)``
— T is diagonal on the CNOT control, so T and TDG meet and cancel, leaving a
bare CNOT (and, downstream, a circuit the stabilizer backend can take).

Noise channels and measurements never commute past anything sharing a wire.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuit import Circuit
from ..gates import Operation
from ..noise import NoiseOperation
from ..qubits import Qubit
from .base import Pass
from .fusion import run_peephole
from .rules import commutes, try_merge


def _commuting_partner(
    out: List[Optional[Operation]], last: Dict[Qubit, int], current: Operation
) -> Optional[int]:
    for index in range(len(out) - 1, -1, -1):
        earlier = out[index]
        if earlier is None:
            continue
        if not set(earlier.qubits).intersection(current.qubits):
            continue
        if earlier.is_measurement or isinstance(earlier, NoiseOperation):
            return None
        if try_merge(earlier, current) is not None:
            return index
        if commutes(earlier, current):
            continue
        return None
    return None


class CommutationPass(Pass):
    """Cancel/merge gate pairs separated by provably commuting operations."""

    name = "commutation"

    def rewrite(self, circuit: Circuit) -> Tuple[Circuit, int]:
        return run_peephole(circuit, _commuting_partner)
