"""Clifford-prefix extraction for hybrid stabilizer + dense routing.

Many ansatz circuits open with a Clifford block (the ``H`` layer of QAOA,
state-preparation ladders, encoding circuits) before any non-Clifford
rotation appears.  :func:`split_clifford_prefix` cuts a circuit into a
maximal Clifford *prefix* and the *remainder*: walking the operations in
order with a monotonically growing set of blocked qubits, an operation joins
the prefix when it is a unitary gate, none of its qubits is blocked, and it
decomposes into tableau updates (``clifford_ops``); anything else — rotation
at a non-Clifford angle, noise channel, measurement — joins the remainder
and blocks its qubits.  A prefix operation therefore never shares a wire
with any earlier remainder operation, so the reordering is exact.

Whether a rotation is Clifford depends on its *bound angle*, so this pass
is value-sensitive and deliberately not part of
:func:`~repro.circuits.passes.base.default_pipeline` (it would split the
shared topology key between a symbolic ansatz and a resolved instance that
happens to land on Clifford angles).  It runs at routing time instead:
:class:`~repro.simulator.hybrid.HybridSimulator` executes the prefix on the
stabilizer tableau and hands only the dense tail to the state-vector
backend.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..circuit import Circuit
from ..gates import Operation
from ..noise import NoiseOperation
from ..parameters import ParamResolver
from ..qubits import Qubit
from .base import Pass


def split_clifford_prefix(
    circuit: Circuit, resolver: Optional[ParamResolver] = None
) -> Tuple[Circuit, Circuit]:
    """Split ``circuit`` into ``(prefix, remainder)``.

    ``prefix`` is Clifford under ``resolver`` (every gate provides
    ``clifford_ops``) and ``remainder`` holds everything else;
    concatenating ``prefix + remainder`` is exactly equivalent to the input.
    Either part may be empty.
    """
    prefix_ops: List[Operation] = []
    remainder_ops: List[Operation] = []
    blocked: Set[Qubit] = set()
    for operation in circuit.all_operations():
        if (
            not operation.is_measurement
            and not isinstance(operation, NoiseOperation)
            and not blocked.intersection(operation.qubits)
        ):
            if operation.gate.clifford_ops(resolver) is not None:
                prefix_ops.append(operation)
                continue
        remainder_ops.append(operation)
        blocked.update(operation.qubits)
    prefix = Circuit()
    prefix.append(prefix_ops)
    remainder = Circuit()
    remainder.append(remainder_ops)
    return prefix, remainder


class CliffordPrefixPass(Pass):
    """Reorder a circuit into Clifford prefix followed by the remainder.

    The rewrite is a pure reordering (no operation is added, removed or
    changed); the rewrite count is the number of operations that moved
    earlier relative to the original order.  Useful standalone when a caller
    wants the split reflected in the circuit itself; the hybrid router calls
    :func:`split_clifford_prefix` directly and keeps the two halves apart.
    """

    name = "clifford_prefix"

    def __init__(self, resolver: Optional[ParamResolver] = None):
        self.resolver = resolver

    def rewrite(self, circuit: Circuit) -> Tuple[Circuit, int]:
        operations = circuit.all_operations()
        prefix, remainder = split_clifford_prefix(circuit, self.resolver)
        rewritten = Circuit()
        rewritten.append(prefix.all_operations() + remainder.all_operations())
        # Moment packing may interleave disjoint remainder operations back
        # between prefix operations; compare post-packing order so an
        # already-split circuit is recognized as a fixed point.
        final = rewritten.all_operations()
        if final == operations:
            return circuit, 0
        moved = sum(1 for before, after in zip(operations, final) if before is not after)
        return rewritten, moved
