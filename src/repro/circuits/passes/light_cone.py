"""Light-cone (causal-cone) pruning relative to the measured qubits.

An operation can only influence a measurement outcome if its qubits
intersect the backward-growing cone seeded by the measurement gates: walking
the circuit in reverse, an operation touching the cone joins it (its other
qubits become part of the cone); everything else — gates *and* noise on
spectator qubits — is dead weight for every measured observable and is
dropped.  The knowledge compiler then never builds Bayesian-network nodes,
CNF clauses or d-DNNF structure for the spectator wires at all.

Contract: the joint distribution over the **measured** qubits is preserved
exactly (dropped operations are trace-preserving maps on qubits that are
traced out).  The full-state distribution over spectator qubits is *not*
preserved — a circuit without any measurement gate therefore passes through
untouched, since every qubit is implicitly observable.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..circuit import Circuit
from ..qubits import Qubit
from .base import Pass


class LightConePass(Pass):
    """Drop operations outside the causal cone of the measurement gates."""

    name = "light_cone"

    def rewrite(self, circuit: Circuit) -> Tuple[Circuit, int]:
        operations = circuit.all_operations()
        cone: Set[Qubit] = set()
        for operation in operations:
            if operation.is_measurement:
                cone.update(operation.qubits)
        if not cone:
            return circuit, 0

        keep = [False] * len(operations)
        for index in range(len(operations) - 1, -1, -1):
            operation = operations[index]
            if operation.is_measurement:
                keep[index] = True
                continue
            if cone.intersection(operation.qubits):
                keep[index] = True
                cone.update(operation.qubits)
        dropped = keep.count(False)
        if dropped == 0:
            return circuit, 0
        kept: List = [op for op, flag in zip(operations, keep) if flag]
        rewritten = Circuit()
        rewritten.append(kept)
        return rewritten, dropped
