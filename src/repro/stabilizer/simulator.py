"""Stabilizer (tableau) simulator backend with Pauli-noise sampling.

The sixth backend: exact polynomial-cost simulation of Clifford circuits via
the Aaronson–Gottesman tableau (:mod:`repro.stabilizer.tableau`).  Where
every other backend pays ``2^n`` (or ``(B, 2^n)``) state cost, this one runs
Bell/GHZ preparation, Deutsch–Jozsa, Bernstein–Vazirani, Simon, hidden shift
and the Clifford skeleton of RCS-style workloads at hundreds of qubits in
milliseconds.

Noise support mirrors :mod:`repro.trajectory` in spirit: single-qubit *Pauli
mixture* channels (bit flip, phase flip, symmetric/asymmetric depolarizing)
are unravelled stochastically — each shot draws one Pauli per channel and the
tableau absorbs it as a gate — which keeps sampling unbiased at qubit counts
where a density matrix (or even one dense state vector) is unthinkable.
Shots are grouped by their jump pattern so the common no-jump pattern runs
the tableau once and replays only measurement randomness.

Non-Clifford gates and non-Pauli channels raise
:class:`~repro.errors.UnsupportedCircuitError` with the
blocking operation named; the :class:`~repro.simulator.hybrid.HybridSimulator`
catches this class of circuit *before* construction via
:func:`repro.circuits.clifford.classify_circuit` and routes it to a dense
backend instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.clifford import CliffordOp, channel_pauli_mixture, operation_clifford_ops
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..errors import UnsupportedCircuitError
from ..linalg.tensor_ops import index_to_bits
from ..simulator.base import Simulator
from ..simulator.results import SampleResult
from .tableau import Tableau

#: Dense state-vector reconstruction cap (2^14 amplitudes).
DENSE_STATE_QUBITS = 14
#: Dense probability-vector reconstruction cap (2^20 entries).
DENSE_PROBABILITY_QUBITS = 20


class StabilizerResult:
    """Final stabilizer state of an ideal Clifford simulation.

    API-compatible with :class:`~repro.simulator.results.StateVectorResult`
    where physically possible: ``qubits``, ``num_qubits``, ``state_vector``
    (dense, small ``n`` only), ``probabilities()`` (dense, small ``n`` only)
    and ``sample()`` (any ``n`` — the whole point of the backend).
    """

    def __init__(self, qubits: Sequence[Qubit], tableau: Tableau):
        self.qubits = list(qubits)
        self.tableau = tableau

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def state_vector(self) -> np.ndarray:
        """Dense state vector, defined up to global phase (``n <= 14``)."""
        if self.num_qubits > DENSE_STATE_QUBITS:
            raise ValueError(
                f"dense state vector capped at {DENSE_STATE_QUBITS} qubits "
                f"(got {self.num_qubits}); use sample() or probabilities()"
            )
        return self.tableau.state_vector()

    def probabilities(self) -> np.ndarray:
        """Dense ``(2^n,)`` measurement distribution (``n <= 20``)."""
        if self.num_qubits > DENSE_PROBABILITY_QUBITS:
            raise ValueError(
                f"dense probabilities capped at {DENSE_PROBABILITY_QUBITS} qubits "
                f"(got {self.num_qubits}); use sample()"
            )
        return self.tableau.probabilities()

    def sample(self, repetitions: int, rng: Optional[np.random.Generator] = None) -> SampleResult:
        rng = rng or np.random.default_rng()
        bits = self.tableau.sample(repetitions, rng)
        return SampleResult(self.qubits, [tuple(row) for row in bits])

    def measure(
        self,
        position: int,
        rng: Optional[np.random.Generator] = None,
        forced: Optional[int] = None,
    ) -> Tuple[int, bool]:
        """Collapse qubit ``position`` (index into ``self.qubits``) in place."""
        return self.tableau.measure(position, rng=rng, forced=forced)

    def __repr__(self) -> str:
        return f"StabilizerResult(qubits={self.num_qubits})"


class _CompiledClifford:
    """A circuit lowered to tableau primitives with noise-channel slots."""

    __slots__ = ("num_qubits", "steps", "num_channels")

    def __init__(self, num_qubits: int, steps: List[Tuple], num_channels: int):
        self.num_qubits = num_qubits
        self.steps = steps
        self.num_channels = num_channels


class StabilizerSimulator(Simulator):
    """Tableau-based simulation of Clifford (and Clifford + Pauli-noise) circuits."""

    name = "stabilizer"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)

    # ------------------------------------------------------------------
    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> StabilizerResult:
        """Run an ideal Clifford circuit exactly.

        Args:
            circuit: The noise-free Clifford circuit to run.
            resolver: Binds any symbolic parameters (angles must resolve to
                Clifford values, e.g. multiples of ``pi/2`` for rotations).
            qubit_order: Qubit-to-basis-position order (first qubit = most
                significant bit); defaults to the circuit's sorted qubits.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`StabilizerResult` holding the final tableau.

        Raises:
            UnsupportedCircuitError: If the circuit contains noise (use
                :meth:`sample`), or a gate that is not recognized as
                Clifford.
        """
        if circuit.has_noise:
            raise UnsupportedCircuitError(
                "StabilizerSimulator.simulate only supports ideal circuits; "
                "sample() handles Pauli-noise circuits stochastically"
            )
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        program = self._compile(circuit, qubits, resolver)
        tableau = self._run(program, initial_state, choices=None)
        return StabilizerResult(qubits, tableau)

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw measurement samples in ``O(poly(n))`` per tableau pass.

        Ideal circuits run the tableau once and replay only measurement
        randomness.  Pauli-noise circuits draw one Pauli per channel per
        shot, group the shots by jump pattern, and run one tableau per
        distinct pattern — with realistic noise strengths most shots share
        the no-jump pattern.

        Args:
            circuit: The Clifford (optionally Pauli-noisy) circuit.
            repetitions: Number of bitstring samples to draw.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            seed: Per-call seed for reproducibility in isolation; ``None``
                draws from the backend's default generator.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings.

        Raises:
            UnsupportedCircuitError: For non-Clifford gates or non-Pauli
                noise channels.
        """
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        rng = self._rng(seed)
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        program = self._compile(circuit, qubits, resolver)
        if program.num_channels == 0:
            tableau = self._run(program, initial_state, choices=None)
            bits = tableau.sample(repetitions, rng)
            return SampleResult(qubits, [tuple(row) for row in bits])
        choices = self._draw_noise_choices(program, repetitions, rng)
        samples: List[Optional[Tuple[int, ...]]] = [None] * repetitions
        patterns, inverse = np.unique(choices, axis=0, return_inverse=True)
        for pattern_index, pattern in enumerate(patterns):
            shot_rows = np.nonzero(inverse == pattern_index)[0]
            tableau = self._run(program, initial_state, choices=pattern)
            bits = tableau.sample(shot_rows.size, rng)
            for row, shot in zip(bits, shot_rows):
                samples[int(shot)] = tuple(row)
        return SampleResult(qubits, samples)

    # ------------------------------------------------------------------
    def _compile(
        self,
        circuit: Circuit,
        qubits: Sequence[Qubit],
        resolver: Optional[ParamResolver],
    ) -> _CompiledClifford:
        """Lower the circuit to tableau primitives, classifying each gate once."""
        index_of: Dict[Qubit, int] = {qubit: i for i, qubit in enumerate(qubits)}
        steps: List[Tuple] = []
        num_channels = 0
        channel_cache: Dict[Tuple, Tuple[np.ndarray, List[str]]] = {}
        for operation in circuit.all_operations():
            if operation.is_measurement:
                continue
            try:
                positions = tuple(index_of[qubit] for qubit in operation.qubits)
            except KeyError as error:
                raise ValueError(
                    f"operation {operation!r} uses a qubit outside qubit_order"
                ) from error
            if isinstance(operation, NoiseOperation):
                key = operation.channel.cache_key(resolver)
                entry = channel_cache.get(key) if key is not None else None
                if entry is None:
                    mixture = channel_pauli_mixture(operation.channel, resolver)
                    if mixture is None:
                        raise UnsupportedCircuitError(
                            f"stabilizer backend requires single-qubit Pauli mixture "
                            f"noise; got {operation!r}"
                        )
                    probabilities = np.array([p for p, _ in mixture], dtype=float)
                    probabilities = np.maximum(probabilities, 0.0)
                    cumulative = np.cumsum(probabilities / probabilities.sum())
                    entry = (cumulative, [name for _, name in mixture])
                    if key is not None:
                        channel_cache[key] = entry
                steps.append(("noise", positions[0], num_channels, entry[0], entry[1]))
                num_channels += 1
                continue
            ops = operation_clifford_ops(operation, positions, resolver)
            if ops is None:
                raise UnsupportedCircuitError(
                    f"stabilizer backend requires Clifford gates; got non-Clifford "
                    f"operation {operation!r}"
                )
            if ops:
                steps.append(("gates", ops))
        return _CompiledClifford(len(qubits), steps, num_channels)

    @staticmethod
    def _draw_noise_choices(
        program: _CompiledClifford, repetitions: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-shot Pauli branch per channel, shape ``(repetitions, num_channels)``."""
        choices = np.zeros((repetitions, program.num_channels), dtype=np.uint8)
        for step in program.steps:
            if step[0] != "noise":
                continue
            _, _, slot, cumulative, _names = step
            draws = np.searchsorted(cumulative, rng.random(repetitions), side="right")
            choices[:, slot] = np.minimum(draws, len(cumulative) - 1)
        return choices

    def _run(
        self,
        program: _CompiledClifford,
        initial_state: int,
        choices: Optional[np.ndarray],
    ) -> Tableau:
        initial_bits = (
            index_to_bits(initial_state, program.num_qubits) if initial_state else None
        )
        tableau = Tableau(program.num_qubits, initial_bits)
        for step in program.steps:
            if step[0] == "gates":
                for op in step[1]:
                    tableau.apply(op.name, op.qubits)
            else:
                _, position, slot, _cumulative, names = step
                if choices is None:
                    raise ValueError("noise operation encountered in ideal simulation")
                pauli = names[int(choices[slot])]
                if pauli != "I":
                    tableau.apply(pauli, (position,))
        return tableau
