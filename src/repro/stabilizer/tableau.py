"""Aaronson–Gottesman stabilizer tableau with vectorized row operations.

The tableau (CHP, arXiv:quant-ph/0406196) represents an ``n``-qubit
stabilizer state by ``2n`` Pauli generators — ``n`` destabilizers followed by
``n`` stabilizers — packed into one boolean ``(2n, 2n+1)`` array: columns
``0..n-1`` are the X bits, ``n..2n-1`` the Z bits, and the last column the
sign bit.  Row ``i`` encodes the Hermitian Pauli

    ``(-1)^{r_i} * prod_j  i^{x_ij z_ij} X_j^{x_ij} Z_j^{z_ij}``.

Clifford gates are O(2n) boolean *column* updates applied to every generator
at once; measurement costs one symplectic row reduction.  Two things go
beyond the textbook algorithm:

* :meth:`Tableau.sample` draws any number of full computational-basis
  measurement records **without replaying the circuit**: the outcome
  distribution of a stabilizer state is uniform over an affine subspace
  ``x0 (+) span(B)`` where ``B`` is a GF(2) basis of the stabilizer X-block's
  row space, so sampling is one matrix product over GF(2) per batch — the
  only randomness replayed is the measurement randomness;
* :meth:`Tableau.state_vector` reconstructs the dense state (for parity
  tests at small ``n``) by projecting a support basis state through every
  stabilizer, ``|psi> ∝ prod_j (I + g_j) |x0>``.

Bit convention matches the rest of the toolchain: qubit 0 is the most
significant bit of a basis-state index.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..linalg.tensor_ops import bits_to_index


def gf2_row_basis(rows: np.ndarray) -> np.ndarray:
    """Row-reduce a boolean matrix over GF(2); returns the independent rows.

    The output is in row-echelon form with ``shape (rank, n)`` and dtype
    ``uint8``.
    """
    matrix = np.ascontiguousarray(rows, dtype=np.uint8).copy()
    if matrix.ndim != 2:
        raise ValueError("gf2_row_basis expects a 2-D matrix")
    num_rows, num_cols = matrix.shape
    rank = 0
    for col in range(num_cols):
        if rank == num_rows:
            break
        pivots = np.nonzero(matrix[rank:, col])[0]
        if pivots.size == 0:
            continue
        pivot = rank + int(pivots[0])
        if pivot != rank:
            matrix[[rank, pivot]] = matrix[[pivot, rank]]
        others = np.nonzero(matrix[:, col])[0]
        others = others[others != rank]
        if others.size:
            matrix[others] ^= matrix[rank]
        rank += 1
    return matrix[:rank]


class Tableau:
    """A stabilizer/destabilizer tableau over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, initial_bits: Optional[Sequence[int]] = None):
        n = int(num_qubits)
        if n < 1:
            raise ValueError("Tableau needs at least one qubit")
        self.n = n
        self.table = np.zeros((2 * n, 2 * n + 1), dtype=bool)
        rows = np.arange(n)
        self.x[rows, rows] = True            # destabilizer i = X_i
        self.z[n + rows, rows] = True        # stabilizer i = Z_i
        if initial_bits is not None:
            bits = [int(b) & 1 for b in initial_bits]
            if len(bits) != n:
                raise ValueError("initial_bits length must equal num_qubits")
            for qubit, bit in enumerate(bits):
                if bit:
                    self.apply("X", (qubit,))

    # -- packed-array views ------------------------------------------------
    @property
    def x(self) -> np.ndarray:
        """X-bit block, shape ``(2n, n)`` (a view into the packed table)."""
        return self.table[:, : self.n]

    @property
    def z(self) -> np.ndarray:
        """Z-bit block, shape ``(2n, n)`` (a view into the packed table)."""
        return self.table[:, self.n : 2 * self.n]

    @property
    def r(self) -> np.ndarray:
        """Sign column, shape ``(2n,)`` (a view into the packed table)."""
        return self.table[:, 2 * self.n]

    def copy(self) -> "Tableau":
        duplicate = Tableau.__new__(Tableau)
        duplicate.n = self.n
        duplicate.table = self.table.copy()
        return duplicate

    # -- Clifford gates as column updates ----------------------------------
    def h(self, a: int) -> None:
        x, z = self.x[:, a], self.z[:, a]
        self.r[:] ^= x & z
        self.table[:, [a, self.n + a]] = self.table[:, [self.n + a, a]]

    def s(self, a: int) -> None:
        x, z = self.x[:, a], self.z[:, a]
        self.r[:] ^= x & z
        z ^= x

    def sdg(self, a: int) -> None:
        x, z = self.x[:, a], self.z[:, a]
        self.r[:] ^= x & ~z
        z ^= x

    def x_gate(self, a: int) -> None:
        self.r[:] ^= self.z[:, a]

    def y_gate(self, a: int) -> None:
        self.r[:] ^= self.x[:, a] ^ self.z[:, a]

    def z_gate(self, a: int) -> None:
        self.r[:] ^= self.x[:, a]

    def cnot(self, a: int, b: int) -> None:
        xa, za = self.x[:, a], self.z[:, a]
        xb, zb = self.x[:, b], self.z[:, b]
        self.r[:] ^= xa & zb & (xb ^ za ^ True)
        xb ^= xa
        za ^= zb

    def cz(self, a: int, b: int) -> None:
        xa, za = self.x[:, a], self.z[:, a]
        xb, zb = self.x[:, b], self.z[:, b]
        self.r[:] ^= xa & xb & (za ^ zb)
        za ^= xb
        zb ^= xa

    def swap(self, a: int, b: int) -> None:
        n = self.n
        self.table[:, [a, b, n + a, n + b]] = self.table[:, [b, a, n + b, n + a]]

    _GATES = {
        "X": "x_gate",
        "Y": "y_gate",
        "Z": "z_gate",
        "H": "h",
        "S": "s",
        "SDG": "sdg",
        "CNOT": "cnot",
        "CZ": "cz",
        "SWAP": "swap",
    }

    def apply(self, name: str, qubits: Sequence[int]) -> None:
        """Apply a named primitive (see :data:`~repro.circuits.clifford.CLIFFORD_PRIMITIVES`)."""
        try:
            method = getattr(self, self._GATES[name])
        except KeyError as exc:
            raise ValueError(f"unknown stabilizer primitive {name!r}") from exc
        method(*qubits)

    # -- Pauli-product phase bookkeeping -----------------------------------
    @staticmethod
    def _g(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> np.ndarray:
        """Aaronson–Gottesman ``g``: the i-exponent of one-qubit Pauli products.

        ``(x1, z1)`` belongs to the left factor, ``(x2, z2)`` to the right;
        inputs are boolean arrays (broadcastable), output is int8.
        """
        x1i = x1.astype(np.int8)
        z1i = z1.astype(np.int8)
        x2i = x2.astype(np.int8)
        z2i = z2.astype(np.int8)
        both = x1i * z1i * (z2i - x2i)
        x_only = x1i * (1 - z1i) * z2i * (2 * x2i - 1)
        z_only = (1 - x1i) * z1i * x2i * (1 - 2 * z2i)
        return both + x_only + z_only

    def _rowsum(self, targets: np.ndarray, source: int) -> None:
        """Left-multiply each target row by the source row (phases tracked mod 4)."""
        x1, z1 = self.x[source], self.z[source]
        x2, z2 = self.x[targets], self.z[targets]
        phase = (
            2 * self.r[targets].astype(np.int64)
            + 2 * int(self.r[source])
            + self._g(x1[None, :], z1[None, :], x2, z2).sum(axis=1, dtype=np.int64)
        ) % 4
        self.r[targets] = phase == 2
        self.x[targets] ^= x1
        self.z[targets] ^= z1

    def _product_phase(self, stabilizer_rows: np.ndarray) -> int:
        """Phase exponent (mod 4) of the product of the given stabilizer rows."""
        x_acc = np.zeros(self.n, dtype=bool)
        z_acc = np.zeros(self.n, dtype=bool)
        phase = 0
        for row in stabilizer_rows:
            phase = (
                phase
                + 2 * int(self.r[row])
                + int(self._g(self.x[row], self.z[row], x_acc, z_acc).sum(dtype=np.int64))
            ) % 4
            x_acc ^= self.x[row]
            z_acc ^= self.z[row]
        return phase

    # -- Measurement -------------------------------------------------------
    def measure(
        self,
        qubit: int,
        rng: Optional[np.random.Generator] = None,
        forced: Optional[int] = None,
    ) -> Tuple[int, bool]:
        """Measure ``qubit`` in the computational basis, collapsing the state.

        Returns ``(outcome, deterministic)``.  When the outcome is random
        (some stabilizer anticommutes with ``Z_qubit``), the result is drawn
        from ``rng`` unless ``forced`` pins it — both 0 and 1 have
        probability 1/2, so any forced value is a valid post-measurement
        branch.  ``forced`` is ignored for deterministic outcomes.
        """
        n = self.n
        anticommuting = np.nonzero(self.x[n:, qubit])[0]
        if anticommuting.size:
            pivot = n + int(anticommuting[0])
            others = np.nonzero(self.x[:, qubit])[0]
            others = others[others != pivot]
            if others.size:
                self._rowsum(others, pivot)
            self.table[pivot - n] = self.table[pivot]
            self.table[pivot] = False
            self.z[pivot, qubit] = True
            if forced is None:
                if rng is None:
                    raise ValueError("random measurement outcome requires an rng or forced value")
                outcome = int(rng.integers(0, 2))
            else:
                outcome = int(forced) & 1
            self.r[pivot] = bool(outcome)
            return outcome, False
        rows = n + np.nonzero(self.x[:n, qubit])[0]
        phase = self._product_phase(rows)
        return int(phase == 2), True

    def measure_all(
        self,
        rng: Optional[np.random.Generator] = None,
        forced: Optional[int] = None,
    ) -> np.ndarray:
        """Measure every qubit in order; returns the outcome bits (uint8)."""
        return np.array(
            [self.measure(qubit, rng=rng, forced=forced)[0] for qubit in range(self.n)],
            dtype=np.uint8,
        )

    # -- Output distribution ------------------------------------------------
    def support(self) -> Tuple[np.ndarray, np.ndarray]:
        """The affine support of the measurement distribution.

        Returns ``(x0, basis)``: one support bitstring (uint8, shape ``(n,)``)
        and a GF(2) basis (uint8, shape ``(k, n)``) such that the outcome
        distribution is uniform over ``{x0 (+) c.B : c in GF(2)^k}``.
        """
        x0 = self.copy().measure_all(forced=0)
        basis = gf2_row_basis(self.x[self.n :, :])
        return x0, basis

    def sample(self, repetitions: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``repetitions`` measurement records, shape ``(repetitions, n)``.

        Replays only measurement randomness: one GF(2) matrix product maps
        uniform coefficient bits through the support basis.
        """
        x0, basis = self.support()
        if basis.shape[0] == 0:
            return np.tile(x0, (repetitions, 1))
        coefficients = rng.integers(0, 2, size=(repetitions, basis.shape[0]), dtype=np.uint8)
        bits = (coefficients.astype(np.uint32) @ basis) & 1
        return bits.astype(np.uint8) ^ x0

    def support_indices(self) -> Tuple[np.ndarray, int]:
        """All support basis-state indices plus the subspace dimension ``k``.

        Enumerates ``2^k`` indices; callers should guard ``k`` (the simulator
        caps dense reconstructions at small ``n``).
        """
        x0, basis = self.support()
        shifts = self.n - 1 - np.arange(self.n)
        start = int((x0.astype(np.int64) << shifts).sum())
        indices = np.array([start], dtype=np.int64)
        for row in basis:
            translated = indices ^ int((row.astype(np.int64) << shifts).sum())
            indices = np.concatenate([indices, translated])
        return indices, basis.shape[0]

    def probabilities(self) -> np.ndarray:
        """Dense ``(2^n,)`` outcome distribution (small ``n`` only)."""
        indices, rank = self.support_indices()
        distribution = np.zeros(2 ** self.n)
        distribution[indices] = 0.5 ** rank
        return distribution

    def state_vector(self) -> np.ndarray:
        """Dense ``(2^n,)`` state vector, up to global phase (small ``n`` only).

        Projects a support basis state through every stabilizer:
        ``|psi> ∝ prod_j (I + g_j) |x0>``.
        """
        n = self.n
        dim = 2 ** n
        x0, _ = self.support()
        psi = np.zeros(dim, dtype=complex)
        psi[bits_to_index(x0)] = 1.0
        indices = np.arange(dim, dtype=np.int64)
        shifts = n - 1 - np.arange(n)
        for row in range(n, 2 * n):
            psi = 0.5 * (psi + self._apply_pauli_row(row, psi, indices, shifts))
        norm = np.linalg.norm(psi)
        if norm <= 0:  # pragma: no cover - support point guarantees overlap
            raise RuntimeError("stabilizer projection annihilated the support state")
        return psi / norm

    def _apply_pauli_row(
        self, row: int, psi: np.ndarray, indices: np.ndarray, shifts: np.ndarray
    ) -> np.ndarray:
        """Apply the row's Pauli (including sign and i^{xz} factors) to ``psi``."""
        x_bits = self.x[row].astype(np.int64)
        z_bits = self.z[row].astype(np.int64)
        x_mask = int((x_bits << shifts).sum())
        sources = indices ^ x_mask
        # parity of  b . z  for each source index b
        parity = np.zeros_like(indices)
        for qubit in np.nonzero(z_bits)[0]:
            parity ^= (sources >> int(shifts[qubit])) & 1
        constant = (-1) ** int(self.r[row]) * (1j) ** int((x_bits & z_bits).sum())
        phases = constant * np.where(parity, -1.0, 1.0)
        return phases * psi[sources]

    def __repr__(self) -> str:
        return f"Tableau(num_qubits={self.n})"
