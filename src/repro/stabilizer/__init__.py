"""Stabilizer-tableau backend: polynomial-cost exact Clifford simulation.

See :mod:`repro.stabilizer.tableau` for the Aaronson–Gottesman
representation and :mod:`repro.stabilizer.simulator` for the
:class:`~repro.simulator.base.Simulator` implementation with Pauli-noise
sampling.  Automatic routing between this backend and the dense/KC backends
lives in :mod:`repro.simulator.hybrid`.
"""

from .simulator import StabilizerResult, StabilizerSimulator
from .tableau import Tableau, gf2_row_basis

__all__ = ["StabilizerSimulator", "StabilizerResult", "Tableau", "gf2_row_basis"]
