"""Labelled tensors for the tensor-network contraction simulator."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class Tensor:
    """A dense tensor whose axes are identified by hashable index labels.

    Every axis has dimension 2 (qubit wires), but the implementation does not
    rely on that except through the circuit builder.
    """

    def __init__(self, data: np.ndarray, indices: Sequence[object]):
        data = np.asarray(data, dtype=complex)
        indices = list(indices)
        if data.ndim != len(indices):
            raise ValueError(
                f"tensor rank {data.ndim} does not match index count {len(indices)}"
            )
        if len(set(indices)) != len(indices):
            raise ValueError("tensor indices must be unique")
        self.data = data
        self.indices: List[object] = indices

    @property
    def rank(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    def scalar(self) -> complex:
        if self.rank != 0:
            raise ValueError("tensor is not a scalar")
        return complex(self.data)

    def __repr__(self) -> str:
        return f"Tensor(indices={self.indices}, shape={self.data.shape})"


def contract_pair(a: Tensor, b: Tensor) -> Tensor:
    """Contract two tensors over all shared indices."""
    shared = [index for index in a.indices if index in b.indices]
    a_axes = [a.indices.index(index) for index in shared]
    b_axes = [b.indices.index(index) for index in shared]
    data = np.tensordot(a.data, b.data, axes=(a_axes, b_axes))
    remaining_a = [index for index in a.indices if index not in shared]
    remaining_b = [index for index in b.indices if index not in shared]
    return Tensor(data, remaining_a + remaining_b)


def contraction_cost(a: Tensor, b: Tensor) -> int:
    """Number of elements in the tensor resulting from contracting ``a`` with ``b``.

    Used by the greedy contraction-order heuristic.
    """
    shared = set(a.indices) & set(b.indices)
    open_rank = (a.rank - len(shared)) + (b.rank - len(shared))
    return 2 ** open_rank
