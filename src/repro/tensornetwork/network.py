"""Tensor-network construction from quantum circuits.

An ideal quantum circuit maps directly to a tensor network (Markov & Shi
2008): each gate is a tensor whose axes are the qubit wire segments entering
and leaving it, initial qubit states are rank-1 tensors, and fixing an output
bitstring attaches rank-1 projector tensors to the final wire segments.
Contracting the whole network yields the amplitude ``<bits|C|0...0>`` — the
basic query the qTorch baseline answers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..errors import UnsupportedCircuitError
from .tensor import Tensor


class TensorNetwork:
    """A collection of labelled tensors plus the set of open (uncontracted) indices."""

    def __init__(self, tensors: Sequence[Tensor], open_indices: Sequence[object] = ()):
        self.tensors: List[Tensor] = list(tensors)
        self.open_indices: List[object] = list(open_indices)

    @property
    def num_tensors(self) -> int:
        return len(self.tensors)

    def all_indices(self) -> List[object]:
        seen = []
        seen_set = set()
        for tensor in self.tensors:
            for index in tensor.indices:
                if index not in seen_set:
                    seen_set.add(index)
                    seen.append(index)
        return seen

    def __repr__(self) -> str:
        return f"TensorNetwork(tensors={len(self.tensors)}, open={len(self.open_indices)})"


def circuit_to_network(
    circuit: Circuit,
    output_bits: Optional[Sequence[int]] = None,
    resolver: Optional[ParamResolver] = None,
    qubit_order: Optional[Sequence[Qubit]] = None,
    initial_bits: Optional[Sequence[int]] = None,
) -> TensorNetwork:
    """Build the amplitude tensor network of an ideal circuit.

    ``output_bits`` fixes the final state of every qubit (yielding a scalar
    network whose contraction is the amplitude).  If omitted, the final wire
    indices remain open and contraction yields the full state tensor.
    """
    if circuit.has_noise:
        raise UnsupportedCircuitError("tensor network construction supports ideal circuits only")
    qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
    index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
    num_qubits = len(qubits)
    if initial_bits is None:
        initial_bits = [0] * num_qubits
    if len(initial_bits) != num_qubits:
        raise ValueError("initial_bits length mismatch")

    # wire_segment[q] is the label of the current (latest) wire segment of qubit q.
    wire_segment: List[Tuple[int, int]] = [(q, 0) for q in range(num_qubits)]
    segment_counter: List[int] = [0] * num_qubits
    tensors: List[Tensor] = []

    for position, bit in enumerate(initial_bits):
        state = np.zeros(2, dtype=complex)
        state[int(bit)] = 1.0
        tensors.append(Tensor(state, [wire_segment[position]]))

    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        if isinstance(op, NoiseOperation):
            raise UnsupportedCircuitError("tensor network construction supports ideal circuits only")
        targets = [index_of[q] for q in op.qubits]
        k = len(targets)
        in_indices = [wire_segment[t] for t in targets]
        out_indices = []
        for t in targets:
            segment_counter[t] += 1
            wire_segment[t] = (t, segment_counter[t])
            out_indices.append(wire_segment[t])
        unitary = op.unitary(resolver).reshape((2,) * (2 * k))
        tensors.append(Tensor(unitary, out_indices + in_indices))

    open_indices: List[object] = []
    if output_bits is not None:
        if len(output_bits) != num_qubits:
            raise ValueError("output_bits length mismatch")
        for position, bit in enumerate(output_bits):
            projector = np.zeros(2, dtype=complex)
            projector[int(bit)] = 1.0
            tensors.append(Tensor(projector, [wire_segment[position]]))
    else:
        open_indices = [wire_segment[position] for position in range(num_qubits)]

    return TensorNetwork(tensors, open_indices)
