"""Tensor-network contraction simulator (the reproduction's qTorch stand-in).

The backend answers amplitude queries ``<x|C|0...0>`` by contracting the
circuit's tensor network.  Sampling the output wavefunction is therefore an
MCMC procedure where every proposal costs one full network contraction —
exactly the per-sample cost structure the paper's Figure 8 comparison relies
on (and the reason knowledge compilation wins by ~66x for wide shallow
circuits: its per-sample cost is a linear pass over a small compiled AC,
whereas the tensor-network backend re-contracts the circuit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import index_to_bits
from ..simulator.base import Simulator
from ..simulator.results import SampleResult, StateVectorResult
from .contraction import contract_network
from .network import circuit_to_network


class TensorNetworkSimulator(Simulator):
    """Amplitude-query simulation via tensor-network contraction."""

    name = "tensor_network"

    def __init__(self, contraction_method: str = "greedy", seed: Optional[int] = None):
        super().__init__(seed)
        self.contraction_method = contraction_method

    # ------------------------------------------------------------------
    def amplitude(
        self,
        circuit: Circuit,
        bits: Sequence[int],
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
    ) -> complex:
        """Amplitude of ``bits`` in the circuit's final state.

        Args:
            circuit: The ideal circuit to contract.
            bits: One output bit per qubit (first qubit = most significant).
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            initial_bits: Starting basis state bits (``|0...0>`` when
                omitted).

        Returns:
            The complex amplitude ``<bits|C|initial>`` from one contraction.

        Raises:
            UnsupportedCircuitError: If the circuit contains noise
                operations (raised by the network builder; this backend is
                ideal-only).
        """
        network = circuit_to_network(
            circuit,
            output_bits=bits,
            resolver=resolver,
            qubit_order=qubit_order,
            initial_bits=initial_bits,
        )
        return contract_network(network, self.contraction_method).scalar()

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> StateVectorResult:
        """Recover the full state vector by leaving the output indices open.

        Only sensible for small circuits (tests); sampling does not use it.
        """
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        initial_bits = index_to_bits(initial_state, len(qubits)) if initial_state else None
        network = circuit_to_network(
            circuit,
            output_bits=None,
            resolver=resolver,
            qubit_order=qubits,
            initial_bits=initial_bits,
        )
        result = contract_network(network, self.contraction_method)
        # Order the open axes by qubit position.
        positions = {index: position for position, index in enumerate(result.indices)}
        order = [positions[index] for index in network.open_indices]
        state = np.transpose(result.data, order).reshape(-1)
        return StateVectorResult(qubits, state)

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        burn_in: int = 16,
        initial_state: int = 0,
    ) -> SampleResult:
        """Metropolis sampling over output bitstrings using amplitude queries.

        Each proposal flips one output bit and requires one network
        contraction for the new amplitude — the per-sample cost structure of
        the paper's Figure 8 baseline.

        Args:
            circuit: The ideal circuit to sample.
            repetitions: Number of recorded samples (after ``burn_in``).
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            seed: Per-call seed; ``None`` uses the backend's default
                generator.
            burn_in: Discarded equilibration steps before recording.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings (the
            stationary distribution is the exact output distribution).
        """
        rng = self._rng(seed)
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        num_qubits = len(qubits)
        initial_bits = index_to_bits(initial_state, num_qubits) if initial_state else None

        def weight_of(bits: Tuple[int, ...]) -> float:
            return abs(self.amplitude(circuit, bits, resolver, qubits, initial_bits)) ** 2

        current = tuple(int(b) for b in rng.integers(0, 2, size=num_qubits))
        current_weight = weight_of(current)
        # Ensure the chain starts from a state with non-zero weight.
        attempts = 0
        while current_weight <= 0.0 and attempts < 4 * num_qubits + 16:
            current = tuple(int(b) for b in rng.integers(0, 2, size=num_qubits))
            current_weight = weight_of(current)
            attempts += 1

        samples: List[Tuple[int, ...]] = []
        total_steps = repetitions + burn_in
        for step in range(total_steps):
            flip = int(rng.integers(0, num_qubits))
            proposal = list(current)
            proposal[flip] ^= 1
            proposal_tuple = tuple(proposal)
            proposal_weight = weight_of(proposal_tuple)
            accept = proposal_weight > 0 and (
                current_weight <= 0 or rng.random() < min(1.0, proposal_weight / current_weight)
            )
            if accept:
                current = proposal_tuple
                current_weight = proposal_weight
            if step >= burn_in:
                samples.append(current)
        return SampleResult(qubits, samples)
