"""Contraction-order heuristics and network contraction.

Two heuristics are provided, mirroring the options tensor-network simulators
such as qTorch expose:

* ``greedy`` — repeatedly contract the tensor pair whose result is smallest
  (ties broken by the amount of memory eliminated);
* ``min_degree`` — derive an index elimination order from a min-degree
  treewidth heuristic on the network's interaction graph (via ``networkx``)
  and contract all tensors sharing each index in that order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .network import TensorNetwork
from .tensor import Tensor, contract_pair, contraction_cost


def interaction_graph(network: TensorNetwork) -> nx.Graph:
    """Graph whose nodes are indices, with edges between indices sharing a tensor."""
    graph = nx.Graph()
    graph.add_nodes_from(network.all_indices())
    for tensor in network.tensors:
        indices = tensor.indices
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                graph.add_edge(indices[i], indices[j])
    return graph


def min_degree_index_order(network: TensorNetwork) -> List[object]:
    """Index elimination order from networkx's min-degree treewidth heuristic."""
    graph = interaction_graph(network)
    closed = [index for index in graph.nodes if index not in set(network.open_indices)]
    if not closed:
        return []
    subgraph = graph.subgraph(closed).copy()
    try:
        from networkx.algorithms.approximation import treewidth_min_degree

        _, decomposition = treewidth_min_degree(subgraph)
        # Recover an elimination order by peeling leaves of the tree decomposition.
        order: List[object] = []
        seen = set()
        bags = list(nx.dfs_postorder_nodes(decomposition))
        for bag in bags:
            for index in bag:
                if index not in seen:
                    seen.add(index)
                    order.append(index)
        remaining = [index for index in closed if index not in seen]
        return order + remaining
    except Exception:  # pragma: no cover  # reprolint: disable=broad-except -- networkx treewidth heuristics fail on degenerate graphs; any deterministic order is still correct, just slower
        return sorted(closed, key=str)


def contract_greedy(network: TensorNetwork) -> Tensor:
    """Contract the network with the greedy smallest-result-first heuristic."""
    tensors = list(network.tensors)
    if not tensors:
        return Tensor(np.array(1.0 + 0j), [])
    while len(tensors) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best_cost: Optional[Tuple[int, int]] = None
        for i in range(len(tensors)):
            for j in range(i + 1, len(tensors)):
                if not set(tensors[i].indices) & set(tensors[j].indices):
                    continue
                cost = contraction_cost(tensors[i], tensors[j])
                eliminated = tensors[i].size + tensors[j].size
                key = (cost, -eliminated)
                if best_cost is None or key < best_cost:
                    best_cost = key
                    best_pair = (i, j)
        if best_pair is None:
            # Disconnected network: take outer products, smallest tensors first.
            tensors.sort(key=lambda t: t.size)
            merged = contract_pair(tensors[0], tensors[1])
            tensors = [merged] + tensors[2:]
            continue
        i, j = best_pair
        merged = contract_pair(tensors[i], tensors[j])
        tensors = [t for position, t in enumerate(tensors) if position not in (i, j)]
        tensors.append(merged)
    return tensors[0]


def contract_by_index_elimination(network: TensorNetwork, order: Sequence[object]) -> Tensor:
    """Contract by eliminating indices in ``order``.

    Eliminating an index merges every tensor containing it into one and sums
    the index out (it is guaranteed closed because open indices are excluded
    from elimination orders).
    """
    tensors = list(network.tensors)
    open_set = set(network.open_indices)
    for index in order:
        group = [t for t in tensors if index in t.indices]
        if not group:
            continue
        rest = [t for t in tensors if index not in t.indices]
        merged = group[0]
        for other in group[1:]:
            merged = contract_pair(merged, other)
        if index in merged.indices and index not in open_set:
            axis = merged.indices.index(index)
            merged = Tensor(merged.data.sum(axis=axis), [ix for ix in merged.indices if ix != index])
        rest.append(merged)
        tensors = rest
    # Combine whatever is left (typically scalars and open-index tensors).
    result = tensors[0]
    for other in tensors[1:]:
        result = contract_pair(result, other)
    return result


def contract_network(network: TensorNetwork, method: str = "greedy") -> Tensor:
    """Fully contract the network with the requested heuristic."""
    if method == "greedy":
        return contract_greedy(network)
    if method == "min_degree":
        order = min_degree_index_order(network)
        return contract_by_index_elimination(network, order)
    raise ValueError(f"unknown contraction method: {method}")
