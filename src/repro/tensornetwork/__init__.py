"""Tensor-network contraction simulator backend (qTorch stand-in)."""

from .contraction import (
    contract_by_index_elimination,
    contract_greedy,
    contract_network,
    interaction_graph,
    min_degree_index_order,
)
from .network import TensorNetwork, circuit_to_network
from .simulator import TensorNetworkSimulator
from .tensor import Tensor, contract_pair, contraction_cost

__all__ = [
    "Tensor",
    "TensorNetwork",
    "TensorNetworkSimulator",
    "circuit_to_network",
    "contract_by_index_elimination",
    "contract_greedy",
    "contract_network",
    "contract_pair",
    "contraction_cost",
    "interaction_graph",
    "min_degree_index_order",
]
