"""repro — knowledge-compilation based simulation of noisy variational quantum algorithms.

A from-scratch reproduction of Huang, Holtzen, Millstein, Van den Broeck and
Martonosi, *"Logical Abstractions for Noisy Variational Quantum Algorithm
Simulation"* (ASPLOS 2021).

Top-level convenience imports expose the most common entry points::

    from repro import Circuit, LineQubit, H, CNOT, device

    job = device("auto").run([bell, ghz], repetitions=1000)
    for row in job.result():
        print(row["backend"], row["counts"])

The unified execution API (``device() -> Device.run() -> Job``) routes every
work item to the right backend by declared capability; the simulator classes
remain available for direct, single-backend use::

    from repro import (
        KnowledgeCompilationSimulator, StateVectorSimulator,
        DensityMatrixSimulator, TensorNetworkSimulator,
    )

Subpackages
-----------
``repro.api``            Device/Job execution API, backend registry, scheduler
``repro.errors``         typed error hierarchy (UnsupportedCircuitError, ...)
``repro.circuits``       circuit IR: qubits, gates, noise channels, parameters
``repro.statevector``    dense state-vector baseline (qsim stand-in)
``repro.densitymatrix``  dense density-matrix baseline (Cirq noisy-simulator stand-in)
``repro.tensornetwork``  tensor-network contraction baseline (qTorch stand-in)
``repro.trajectory``     batched quantum-trajectory (Monte Carlo wavefunction) backend
``repro.stabilizer``     Aaronson–Gottesman tableau backend for Clifford circuits
``repro.bayesnet``       complex-valued Bayesian networks + variable elimination
``repro.cnf``            weighted CNF encoding of Bayesian networks
``repro.knowledge``      d-DNNF compiler and arithmetic circuits
``repro.sampling``       Gibbs sampling, ideal sampling, divergence metrics
``repro.simulator``      the knowledge-compilation simulator and result types
``repro.variational``    QAOA Max-Cut, VQE Ising, Nelder-Mead optimizer
``repro.algorithms``     validation suite (Bell, Grover, Shor, QFT, ...)
``repro.experiments``    per-figure/table reproduction harness
"""

from .circuits import (
    CNOT,
    CZ,
    H,
    SWAP,
    TOFFOLI,
    X,
    Y,
    Z,
    Circuit,
    DepolarizingChannel,
    GridQubit,
    LineQubit,
    MeasurementGate,
    NamedQubit,
    ParamResolver,
    Rx,
    Ry,
    Rz,
    Symbol,
    ZZ,
    depolarize,
    measure,
)
from .circuits.passes import (
    CliffordPrefixPass,
    CommutationPass,
    FusionPass,
    LightConePass,
    OptimizationResult,
    Pass,
    PassPipeline,
    PipelineStats,
    RewriteStats,
    default_pipeline,
    optimize_circuit,
    split_clifford_prefix,
)
from .api import (
    BackendCapabilities,
    BatchResult,
    CostModel,
    Device,
    FaultInjector,
    Job,
    JobJournal,
    RetryPolicy,
    backend_capabilities,
    capability_matrix,
    default_cost_model,
    device,
    extract_features,
    fit_cost_model,
    list_backends,
    register_backend,
    resume_job,
)
from .circuits.clifford import classify_circuit, is_clifford, is_pauli_noise
from .circuits.topology import canonicalize_circuit, circuit_topology_key
from .densitymatrix import DensityMatrixSimulator
from .errors import (
    BackendCapabilityError,
    CompilationError,
    CostModelError,
    InvalidRequestError,
    JobCancelledError,
    JobError,
    JobTimeoutError,
    MemoryBudgetError,
    MissingObservableError,
    ReproError,
    RequestTypeError,
    TransientError,
    UnsupportedCircuitError,
    WorkerCrashedError,
)
from .knowledge.cache import CompiledCircuitCache, configure_default, default_cache
from .simulator import DensityMatrixResult, SampleResult, Simulator, StateVectorResult
from .simulator.hybrid import BackendDecision, HybridSimulator, select_backend
from .simulator.kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator
from .simulator.sweep import ParameterSweep, SweepResult, resolver_grid, resolver_zip
from .stabilizer import StabilizerResult, StabilizerSimulator
from .statevector import StateVectorSimulator
from .tensornetwork import TensorNetworkSimulator
from .trajectory import TrajectorySimulator

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "Circuit",
    "LineQubit",
    "GridQubit",
    "NamedQubit",
    "Symbol",
    "ParamResolver",
    "H",
    "X",
    "Y",
    "Z",
    "CNOT",
    "CZ",
    "SWAP",
    "TOFFOLI",
    "Rx",
    "Ry",
    "Rz",
    "ZZ",
    "measure",
    "MeasurementGate",
    "DepolarizingChannel",
    "depolarize",
    "Simulator",
    "SampleResult",
    "StateVectorResult",
    "DensityMatrixResult",
    "StateVectorSimulator",
    "DensityMatrixSimulator",
    "TensorNetworkSimulator",
    "TrajectorySimulator",
    "StabilizerSimulator",
    "StabilizerResult",
    "HybridSimulator",
    "BackendDecision",
    "select_backend",
    "classify_circuit",
    "is_clifford",
    "is_pauli_noise",
    "KnowledgeCompilationSimulator",
    "CompiledCircuit",
    "CompiledCircuitCache",
    "default_cache",
    "configure_default",
    "canonicalize_circuit",
    "circuit_topology_key",
    "Pass",
    "PassPipeline",
    "RewriteStats",
    "PipelineStats",
    "OptimizationResult",
    "LightConePass",
    "FusionPass",
    "CommutationPass",
    "CliffordPrefixPass",
    "default_pipeline",
    "optimize_circuit",
    "split_clifford_prefix",
    "ParameterSweep",
    "SweepResult",
    "resolver_grid",
    "resolver_zip",
    "device",
    "Device",
    "Job",
    "BatchResult",
    "BackendCapabilities",
    "backend_capabilities",
    "capability_matrix",
    "list_backends",
    "register_backend",
    "CostModel",
    "fit_cost_model",
    "default_cost_model",
    "extract_features",
    "RetryPolicy",
    "FaultInjector",
    "JobJournal",
    "resume_job",
    "ReproError",
    "UnsupportedCircuitError",
    "BackendCapabilityError",
    "CompilationError",
    "MemoryBudgetError",
    "CostModelError",
    "InvalidRequestError",
    "RequestTypeError",
    "MissingObservableError",
    "TransientError",
    "JobError",
    "JobCancelledError",
    "JobTimeoutError",
    "WorkerCrashedError",
]
