"""Shor's factoring algorithm (quantum order finding).

The quantum kernel is period finding for f(k) = a^k mod N: a counting
register in uniform superposition controls modular-multiplication
permutations of a work register, followed by an inverse QFT on the counting
register.  Modular multiplication is expressed with
:class:`~repro.circuits.gates.PermutationGate`, the same
reversible-arithmetic shortcut used by compact Shor implementations
(Beauregard-style), which keeps qubit counts small while exercising the full
control/period-finding structure.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import ControlledGate, H, PermutationGate, X
from ..circuits.qubits import LineQubit, Qubit
from .common import AlgorithmInstance
from .qft import qft_operations


def modular_multiplication_permutation(multiplier: int, modulus: int, num_work_qubits: int) -> List[int]:
    """Permutation of work-register basis states for x -> multiplier * x mod modulus.

    States >= modulus map to themselves (they are never populated).
    """
    dimension = 2 ** num_work_qubits
    if modulus > dimension:
        raise ValueError("work register too small for the modulus")
    if math.gcd(multiplier, modulus) != 1:
        raise ValueError("multiplier must be coprime with the modulus")
    permutation = list(range(dimension))
    for x in range(modulus):
        permutation[x] = (multiplier * x) % modulus
    return permutation


def multiplicative_order(a: int, modulus: int) -> int:
    """The multiplicative order of ``a`` modulo ``modulus``."""
    if math.gcd(a, modulus) != 1:
        raise ValueError("a must be coprime with the modulus")
    value = a % modulus
    order = 1
    while value != 1:
        value = (value * a) % modulus
        order += 1
    return order


def order_finding_circuit(a: int, modulus: int, num_counting_qubits: Optional[int] = None) -> AlgorithmInstance:
    """The quantum order-finding kernel of Shor's algorithm.

    Measuring the counting register concentrates probability on multiples of
    2^t / r where r is the multiplicative order of ``a`` mod ``modulus``.
    """
    if modulus < 3:
        raise ValueError("modulus must be at least 3")
    num_work_qubits = max(1, (modulus - 1).bit_length())
    if num_counting_qubits is None:
        num_counting_qubits = 2 * num_work_qubits - 1
    counting = LineQubit.range(num_counting_qubits)
    work = LineQubit.range(num_counting_qubits, num_counting_qubits + num_work_qubits)

    circuit = Circuit()
    circuit.append(H(q) for q in counting)
    # Work register starts in |1>.
    circuit.append(X(work[-1]))
    for position, control in enumerate(reversed(counting)):
        power = 2 ** position
        multiplier = pow(a, power, modulus)
        permutation = modular_multiplication_permutation(multiplier, modulus, num_work_qubits)
        gate = ControlledGate(
            PermutationGate(f"x{multiplier}mod{modulus}", num_work_qubits, permutation)
        )
        circuit.append(gate(control, *work))
    circuit.append(qft_operations(counting, inverse=True))

    order = multiplicative_order(a, modulus)
    expected = expected_counting_distribution(order, num_counting_qubits)
    return AlgorithmInstance(
        f"order_finding_a{a}_N{modulus}",
        circuit,
        list(counting) + list(work),
        description="Quantum order finding (Shor's algorithm kernel)",
        metadata={
            "a": a,
            "modulus": modulus,
            "order": order,
            "num_counting_qubits": num_counting_qubits,
            "num_work_qubits": num_work_qubits,
            "counting_distribution": expected,
        },
    )


def expected_counting_distribution(order: int, num_counting_qubits: int) -> np.ndarray:
    """Analytic distribution of the counting register for a given order."""
    dimension = 2 ** num_counting_qubits
    distribution = np.zeros(dimension)
    for s in range(order):
        amplitudes = np.exp(2j * math.pi * s / order * np.arange(dimension)) / dimension
        # Sum over the uniformly-populated eigenstates: the counting register
        # measurement probability for outcome y is |sum_k exp(2 pi i k (s/r - y/2^t))|^2 / (r 2^t)
        y = np.arange(dimension)
        phases = np.exp(2j * math.pi * (s / order - y / dimension) * np.arange(dimension)[:, None])
        distribution += np.abs(phases.sum(axis=0)) ** 2 / (order * dimension ** 2)
    return distribution


def classical_postprocess(measured_value: int, num_counting_qubits: int, modulus: int, a: int) -> Optional[Tuple[int, int]]:
    """Recover candidate factors from a counting-register measurement.

    Uses the continued-fraction expansion of measured / 2^t to estimate the
    order, then the standard gcd trick.  Returns a factor pair or None.
    """
    dimension = 2 ** num_counting_qubits
    if measured_value == 0:
        return None
    fraction = Fraction(measured_value, dimension).limit_denominator(modulus)
    order = fraction.denominator
    if order % 2 != 0:
        return None
    if pow(a, order, modulus) != 1:
        return None
    half_power = pow(a, order // 2, modulus)
    if half_power == modulus - 1:
        return None
    factor_a = math.gcd(half_power - 1, modulus)
    factor_b = math.gcd(half_power + 1, modulus)
    if factor_a in (1, modulus) and factor_b in (1, modulus):
        return None
    factor = factor_a if factor_a not in (1, modulus) else factor_b
    return factor, modulus // factor


def shor_factor(
    modulus: int,
    a: int,
    simulator,
    num_counting_qubits: Optional[int] = None,
    repetitions: int = 32,
    seed: Optional[int] = None,
) -> Optional[Tuple[int, int]]:
    """Run the full (quantum sample + classical post-process) factoring loop."""
    instance = order_finding_circuit(a, modulus, num_counting_qubits)
    samples = simulator.sample(instance.circuit, repetitions, seed=seed)
    t = instance.metadata["num_counting_qubits"]
    for bits in samples:
        measured = 0
        for bit in bits[:t]:
            measured = (measured << 1) | bit
        factors = classical_postprocess(measured, t, modulus, a)
        if factors is not None:
            return factors
    return None
