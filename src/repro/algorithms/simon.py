"""Simon's algorithm: find the hidden XOR period of a two-to-one function."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CNOT, H
from ..circuits.qubits import LineQubit, Qubit
from .common import DENSE_EXPECTATION_QUBITS, AlgorithmInstance


def _simon_oracle(
    inputs: Sequence[Qubit], outputs: Sequence[Qubit], secret: Sequence[int]
) -> List:
    """Standard Simon oracle: copy x into the output register, then XOR in the
    secret conditioned on the first set bit of x, making f(x) = f(x XOR s)."""
    operations = []
    for input_qubit, output_qubit in zip(inputs, outputs):
        operations.append(CNOT(input_qubit, output_qubit))
    pivot = next((i for i, bit in enumerate(secret) if bit), None)
    if pivot is not None:
        for position, bit in enumerate(secret):
            if bit:
                operations.append(CNOT(inputs[pivot], outputs[position]))
    return operations


def simon_circuit(secret: Sequence[int]) -> AlgorithmInstance:
    """Build one query round of Simon's algorithm.

    Measuring the input register yields a uniformly random string ``y`` with
    ``y . secret = 0 (mod 2)``; the classical post-processing solves the
    resulting linear system.  The expected distribution over the input
    register is uniform over that orthogonal subspace.

    Oracle and basis changes are ``H``/``CNOT`` only — pure Clifford
    (``metadata["clifford"]``), so the instance dispatches to the
    stabilizer tableau at any register width.
    """
    secret = [int(b) & 1 for b in secret]
    n = len(secret)
    if n < 2:
        raise ValueError("Simon's problem needs at least two bits")
    inputs = LineQubit.range(n)
    outputs = LineQubit.range(n, 2 * n)
    circuit = Circuit()
    circuit.append(H(q) for q in inputs)
    circuit.append(_simon_oracle(inputs, outputs, secret))
    circuit.append(H(q) for q in inputs)

    # Expected marginal over the input register: uniform over {y : y.s = 0}.
    # Dense only at dense-simulable widths; wide instances rely on
    # secret_consistent() checks instead.
    input_marginal = None
    if n <= DENSE_EXPECTATION_QUBITS:
        orthogonal = [
            y
            for y in range(2 ** n)
            if sum(((y >> (n - 1 - i)) & 1) * secret[i] for i in range(n)) % 2 == 0
        ]
        input_marginal = np.zeros(2 ** n)
        for y in orthogonal:
            input_marginal[y] = 1.0 / len(orthogonal)

    return AlgorithmInstance(
        f"simon_{''.join(str(b) for b in secret)}",
        circuit,
        list(inputs) + list(outputs),
        description="One query round of Simon's period-finding algorithm",
        metadata={
            "secret": secret,
            "input_marginal": input_marginal,
            "num_input_qubits": n,
            "clifford": True,
        },
    )


def secret_consistent(samples: Sequence[Sequence[int]], secret: Sequence[int], num_input_qubits: int) -> bool:
    """Check that every sampled input-register string is orthogonal to the secret."""
    for bits in samples:
        y = bits[:num_input_qubits]
        parity = sum(int(a) & int(b) for a, b in zip(y, secret)) % 2
        if parity != 0:
            return False
    return True


def recover_secret(samples: Sequence[Sequence[int]], num_input_qubits: int) -> Optional[Tuple[int, ...]]:
    """Solve the GF(2) linear system from sampled input-register strings.

    Returns the unique non-zero vector orthogonal to all samples, or ``None``
    if the samples do not yet pin it down.
    """
    rows = []
    for bits in samples:
        row = tuple(int(b) for b in bits[:num_input_qubits])
        if any(row):
            rows.append(row)
    candidates = []
    for candidate in range(1, 2 ** num_input_qubits):
        bits = [(candidate >> (num_input_qubits - 1 - i)) & 1 for i in range(num_input_qubits)]
        if all(sum(r * b for r, b in zip(row, bits)) % 2 == 0 for row in rows):
            candidates.append(tuple(bits))
    if len(candidates) == 1:
        return candidates[0]
    return None
