"""Random circuit sampling (RCS) workloads.

The paper uses RCS instances (in the style of the Google quantum-supremacy
benchmark circuits) as the *unstructured* workload in Figure 6: random
single-qubit gates interleaved with entangling gates on a fixed template
rapidly entangle every qubit, leaving little independence structure for
knowledge compilation to exploit — AC size grows exponentially, unlike the
structured Grover/Shor workloads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CZ, H, Rx, Ry, Rz, T, X, Y
from ..circuits.qubits import LineQubit, Qubit
from .common import AlgorithmInstance


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    entangler: str = "cz",
) -> AlgorithmInstance:
    """A random circuit on a 1D chain: random single-qubit gates + brick-work CZs.

    ``depth`` counts layers; each layer applies one random single-qubit gate
    per qubit followed by entangling gates on alternating neighbouring pairs.
    """
    if num_qubits < 2:
        raise ValueError("random circuits need at least two qubits")
    if entangler not in ("cz",):
        raise ValueError("only the CZ entangler is supported")
    rng = np.random.default_rng(seed)
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    circuit.append(H(q) for q in qubits)
    single_qubit_choices = ("t", "x_half", "y_half")
    for layer in range(depth):
        for qubit in qubits:
            choice = single_qubit_choices[int(rng.integers(0, len(single_qubit_choices)))]
            if choice == "t":
                circuit.append(T(qubit))
            elif choice == "x_half":
                circuit.append(Rx(np.pi / 2)(qubit))
            else:
                circuit.append(Ry(np.pi / 2)(qubit))
        offset = layer % 2
        for index in range(offset, num_qubits - 1, 2):
            circuit.append(CZ(qubits[index], qubits[index + 1]))
    return AlgorithmInstance(
        f"rcs_{num_qubits}x{depth}_seed{seed}",
        circuit,
        qubits,
        description="Random circuit sampling instance (supremacy-style workload)",
        metadata={"depth": depth, "seed": seed},
    )


_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z")
_CLIFFORD_2Q = ("cz", "cnot", "swap")


def random_clifford_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
) -> AlgorithmInstance:
    """The Clifford skeleton of an RCS instance: random Clifford brick-work.

    Same layered template as :func:`random_circuit`, with the single-qubit
    alphabet restricted to ``{H, S, SDG, X, Y, Z}`` and the entangler drawn
    from ``{CZ, CNOT, SWAP}``.  Every gate advertises Cliffordness through
    the gate-metadata layer (:meth:`repro.circuits.gates.Gate.clifford_ops`),
    so the hybrid dispatcher runs these instances on the stabilizer tableau
    at qubit counts no dense backend can touch.
    """
    if num_qubits < 2:
        raise ValueError("random circuits need at least two qubits")
    from ..circuits.gates import standard_gate_by_name

    rng = np.random.default_rng(seed)
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    circuit.append(H(q) for q in qubits)
    for layer in range(depth):
        for qubit in qubits:
            name = _CLIFFORD_1Q[int(rng.integers(0, len(_CLIFFORD_1Q)))]
            circuit.append(standard_gate_by_name(name)(qubit))
        offset = layer % 2
        for index in range(offset, num_qubits - 1, 2):
            name = _CLIFFORD_2Q[int(rng.integers(0, len(_CLIFFORD_2Q)))]
            circuit.append(standard_gate_by_name(name)(qubits[index], qubits[index + 1]))
    return AlgorithmInstance(
        f"random_clifford_{num_qubits}x{depth}_seed{seed}",
        circuit,
        qubits,
        description="Clifford skeleton of an RCS instance (stabilizer-simulable)",
        metadata={"depth": depth, "seed": seed, "clifford": True},
    )
