"""Benchmark suite of quantum algorithms used to validate the simulators.

These mirror the algorithm suite the paper validates its Cirq backend
against: Bell states, CHSH, teleportation, Deutsch-Jozsa, Bernstein-Vazirani,
Simon, hidden shift, QFT, Grover, Shor (order finding), plus random circuit
sampling as the unstructured workload of Figure 6.
"""

from .basic import (
    bell_state_circuit,
    chsh_circuit,
    chsh_value,
    ghz_circuit,
    teleportation_circuit,
)
from .bernstein_vazirani import bernstein_vazirani_circuit
from .common import AlgorithmInstance, deterministic_distribution
from .deutsch_jozsa import deutsch_circuit, deutsch_jozsa_circuit
from .grover import grover_circuit
from .hidden_shift import hidden_shift_circuit
from .qft import expected_qft_amplitudes, inverse_qft_circuit, qft_circuit, qft_operations
from .rcs import random_circuit, random_clifford_circuit
from .shor import (
    classical_postprocess,
    expected_counting_distribution,
    modular_multiplication_permutation,
    multiplicative_order,
    order_finding_circuit,
    shor_factor,
)
from .simon import recover_secret, secret_consistent, simon_circuit

__all__ = [
    "AlgorithmInstance",
    "deterministic_distribution",
    "bell_state_circuit",
    "ghz_circuit",
    "teleportation_circuit",
    "chsh_circuit",
    "chsh_value",
    "deutsch_circuit",
    "deutsch_jozsa_circuit",
    "bernstein_vazirani_circuit",
    "hidden_shift_circuit",
    "simon_circuit",
    "secret_consistent",
    "recover_secret",
    "qft_circuit",
    "qft_operations",
    "inverse_qft_circuit",
    "expected_qft_amplitudes",
    "grover_circuit",
    "order_finding_circuit",
    "multiplicative_order",
    "modular_multiplication_permutation",
    "expected_counting_distribution",
    "classical_postprocess",
    "shor_factor",
    "random_circuit",
    "random_clifford_circuit",
]
