"""Bernstein–Vazirani algorithm: recover a hidden bitmask with one oracle query."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CNOT, H, X
from ..circuits.qubits import LineQubit
from .common import DENSE_EXPECTATION_QUBITS, AlgorithmInstance


def bernstein_vazirani_circuit(secret: Sequence[int]) -> AlgorithmInstance:
    """Build a Bernstein–Vazirani instance for the given secret bitstring.

    The oracle computes f(x) = secret . x (mod 2); the algorithm recovers
    ``secret`` deterministically in the input register.

    The circuit is built entirely from ``H``/``X``/``CNOT`` — never from
    generic rotations — so every gate advertises Cliffordness through the
    gate-metadata layer and the hybrid dispatcher runs the instance on the
    stabilizer tableau (``metadata["clifford"]`` records the claim).
    """
    secret = [int(b) & 1 for b in secret]
    num_input_qubits = len(secret)
    if num_input_qubits < 1:
        raise ValueError("secret must have at least one bit")
    inputs = LineQubit.range(num_input_qubits)
    ancilla = LineQubit(num_input_qubits)

    circuit = Circuit()
    circuit.append(X(ancilla))
    circuit.append(H(ancilla))
    circuit.append(H(q) for q in inputs)
    for qubit, bit in zip(inputs, secret):
        if bit:
            circuit.append(CNOT(qubit, ancilla))
    circuit.append(H(q) for q in inputs)

    # The dense expected distribution only exists at dense-simulable widths;
    # wide (stabilizer-scale) instances keep the bitstring-level expectation.
    expected = None
    if num_input_qubits + 1 <= DENSE_EXPECTATION_QUBITS:
        expected = np.zeros(2 ** (num_input_qubits + 1))
        base_index = 0
        for bit in secret:
            base_index = (base_index << 1) | bit
        expected[base_index * 2 + 0] = 0.5
        expected[base_index * 2 + 1] = 0.5

    return AlgorithmInstance(
        f"bernstein_vazirani_{''.join(str(b) for b in secret)}",
        circuit,
        list(inputs) + [ancilla],
        expected_distribution=expected,
        expected_bitstring=tuple(secret),
        description="Bernstein-Vazirani hidden bitmask recovery",
        metadata={"secret": secret, "clifford": True},
    )
