"""Grover's search algorithm over a marked computational basis state."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CZ, CCZ, H, X, Z
from ..circuits.gates import ControlledGate
from ..circuits.qubits import LineQubit, Qubit
from .common import AlgorithmInstance


def _multi_controlled_z(qubits: Sequence[Qubit]) -> List:
    """A Z controlled on all of ``qubits`` (phase -1 on |1...1>).

    Built from the native CZ / CCZ gates for up to three qubits and from a
    recursively controlled gate beyond that.
    """
    qubits = list(qubits)
    if len(qubits) == 1:
        return [Z(qubits[0])]
    if len(qubits) == 2:
        return [CZ(qubits[0], qubits[1])]
    if len(qubits) == 3:
        return [CCZ(qubits[0], qubits[1], qubits[2])]
    gate = CCZ
    for _ in range(len(qubits) - 3):
        gate = ControlledGate(gate)
    return [gate(*qubits)]


def _oracle(qubits: Sequence[Qubit], marked: Sequence[int]) -> List:
    """Phase oracle flipping the sign of the marked basis state."""
    operations = []
    for qubit, bit in zip(qubits, marked):
        if not bit:
            operations.append(X(qubit))
    operations.extend(_multi_controlled_z(qubits))
    for qubit, bit in zip(qubits, marked):
        if not bit:
            operations.append(X(qubit))
    return operations


def _diffusion(qubits: Sequence[Qubit]) -> List:
    """The Grover diffusion (inversion about the mean) operator."""
    operations = []
    operations.extend(H(q) for q in qubits)
    operations.extend(X(q) for q in qubits)
    operations.extend(_multi_controlled_z(qubits))
    operations.extend(X(q) for q in qubits)
    operations.extend(H(q) for q in qubits)
    return operations


def grover_circuit(
    marked: Sequence[int], num_iterations: Optional[int] = None
) -> AlgorithmInstance:
    """Grover search for a single marked bitstring.

    ``num_iterations`` defaults to the optimal ``round(pi/4 * sqrt(N))``.
    The expected distribution is computed analytically from the rotation
    picture of Grover's algorithm.
    """
    marked = [int(b) & 1 for b in marked]
    num_qubits = len(marked)
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    dimension = 2 ** num_qubits
    if num_iterations is None:
        num_iterations = max(1, int(round(math.pi / 4.0 * math.sqrt(dimension) - 0.5)))

    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    circuit.append(H(q) for q in qubits)
    for _ in range(num_iterations):
        circuit.append(_oracle(qubits, marked))
        circuit.append(_diffusion(qubits))

    theta = math.asin(1.0 / math.sqrt(dimension))
    success = math.sin((2 * num_iterations + 1) * theta) ** 2
    expected = np.full(dimension, (1.0 - success) / (dimension - 1) if dimension > 1 else 0.0)
    marked_index = 0
    for bit in marked:
        marked_index = (marked_index << 1) | bit
    expected[marked_index] = success

    return AlgorithmInstance(
        f"grover_{''.join(str(b) for b in marked)}_{num_iterations}",
        circuit,
        qubits,
        expected_distribution=expected,
        expected_bitstring=tuple(marked),
        description="Grover search for a marked basis state",
        metadata={"iterations": num_iterations, "success_probability": success},
    )
