"""Hidden-shift algorithm for bent (Maiorana–McFarland) functions.

The benchmark follows the standard Cirq example: for the bent function
f(x, y) = x . y on 2m bits, the algorithm recovers a hidden shift ``s`` of
the function with a single query, measuring ``s`` deterministically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CZ, H, X, Z
from ..circuits.qubits import LineQubit
from .common import DENSE_EXPECTATION_QUBITS, AlgorithmInstance, deterministic_distribution


def hidden_shift_circuit(shift: Sequence[int]) -> AlgorithmInstance:
    """Build a hidden-shift instance; ``shift`` must have even length 2m.

    The oracle pairs qubit i with qubit i + m through CZ gates (the bent
    function x . y); X gates implement the shift.  The output register holds
    the shift exactly.

    ``H``/``X``/``CZ`` only — pure Clifford (``metadata["clifford"]``), so
    the instance dispatches to the stabilizer tableau at any width.
    """
    shift = [int(b) & 1 for b in shift]
    if len(shift) % 2 != 0 or not shift:
        raise ValueError("hidden shift requires an even, positive number of bits")
    num_qubits = len(shift)
    half = num_qubits // 2
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()

    circuit.append(H(q) for q in qubits)
    # Oracle for the shifted function g(x) = f(x + s).
    for index, bit in enumerate(shift):
        if bit:
            circuit.append(X(qubits[index]))
    for index in range(half):
        circuit.append(CZ(qubits[index], qubits[index + half]))
    for index, bit in enumerate(shift):
        if bit:
            circuit.append(X(qubits[index]))
    circuit.append(H(q) for q in qubits)
    # Oracle for the dual bent function (same CZ pattern for x . y).
    for index in range(half):
        circuit.append(CZ(qubits[index], qubits[index + half]))
    circuit.append(H(q) for q in qubits)

    # The algorithm recovers the shift deterministically: the dual of the bent
    # function f(x, y) = x . y is f itself, so the output register reads `shift`.
    # The dense form only exists at dense-simulable widths.
    expected = deterministic_distribution(shift) if num_qubits <= DENSE_EXPECTATION_QUBITS else None
    return AlgorithmInstance(
        f"hidden_shift_{''.join(str(b) for b in shift)}",
        circuit,
        qubits,
        expected_distribution=expected,
        expected_bitstring=tuple(shift),
        description="Hidden shift of a Maiorana-McFarland bent function",
        metadata={"shift": shift, "clifford": True},
    )
