"""Shared helpers for the quantum-algorithm benchmark suite.

Each algorithm module exposes a builder returning an :class:`AlgorithmInstance`
holding the circuit, the qubits carrying the answer, and a predicate/value
describing the expected outcome, so that a single validation harness can run
the whole suite against any simulator backend (Section 3.3.1 / Appendix A.6
of the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CNOT, CZ, H, X
from ..circuits.qubits import LineQubit, Qubit


#: Builders skip materializing dense ``2^n`` expected distributions beyond
#: this register width: the stabilizer backend runs instances at widths where
#: a dense array (unlike ``expected_bitstring``-style checks) cannot exist.
DENSE_EXPECTATION_QUBITS = 16


class AlgorithmInstance:
    """A named benchmark circuit plus its expected behaviour."""

    def __init__(
        self,
        name: str,
        circuit: Circuit,
        qubits: Sequence[Qubit],
        expected_distribution: Optional[np.ndarray] = None,
        expected_bitstring: Optional[Tuple[int, ...]] = None,
        description: str = "",
        metadata: Optional[Dict] = None,
    ):
        self.name = name
        self.circuit = circuit
        self.qubits = list(qubits)
        self.expected_distribution = expected_distribution
        self.expected_bitstring = expected_bitstring
        self.description = description
        self.metadata = metadata or {}

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_clifford(self) -> bool:
        """True when every gate in the circuit is Clifford (noise ignored).

        Builders whose circuits are Clifford by construction (Bell/GHZ,
        Deutsch–Jozsa, Bernstein–Vazirani, Simon, hidden shift, the Clifford
        RCS skeleton) also advertise it as ``metadata["clifford"] = True``;
        this property is the ground truth derived from the gate metadata,
        so the hybrid dispatcher and the advertisement can be cross-checked.
        """
        from ..circuits.clifford import is_clifford

        return is_clifford(self.circuit)

    def __repr__(self) -> str:
        return f"AlgorithmInstance({self.name!r}, qubits={self.num_qubits})"


def bits_to_index(bits: Sequence[int]) -> int:
    index = 0
    for bit in bits:
        index = (index << 1) | (int(bit) & 1)
    return index


def deterministic_distribution(bits: Sequence[int]) -> np.ndarray:
    """A distribution with all mass on one bitstring."""
    distribution = np.zeros(2 ** len(bits))
    distribution[bits_to_index(bits)] = 1.0
    return distribution


def apply_oracle_from_bitmask(
    circuit: Circuit, controls: Sequence[Qubit], target: Qubit, mask: Sequence[int]
) -> None:
    """Append CNOTs implementing f(x) = mask . x (mod 2) into ``target``.

    The standard phase/bit oracle used by Bernstein–Vazirani and hidden-shift
    style benchmarks.
    """
    for qubit, bit in zip(controls, mask):
        if bit:
            circuit.append(CNOT(qubit, target))
