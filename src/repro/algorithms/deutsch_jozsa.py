"""Deutsch and Deutsch–Jozsa algorithms.

Decide whether a Boolean oracle f : {0,1}^n -> {0,1} is constant or balanced
with a single query.  Measuring the input register returns all zeros exactly
when f is constant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CNOT, H, X
from ..circuits.qubits import LineQubit, Qubit
from .common import DENSE_EXPECTATION_QUBITS, AlgorithmInstance, deterministic_distribution


def _phase_oracle_constant(circuit: Circuit, inputs: Sequence[Qubit], ancilla: Qubit, value: int) -> None:
    if value:
        circuit.append(X(ancilla))


def _phase_oracle_balanced(circuit: Circuit, inputs: Sequence[Qubit], ancilla: Qubit, mask: Sequence[int]) -> None:
    for qubit, bit in zip(inputs, mask):
        if bit:
            circuit.append(CNOT(qubit, ancilla))


def deutsch_jozsa_circuit(
    num_input_qubits: int,
    oracle: str = "balanced",
    mask: Optional[Sequence[int]] = None,
    constant_value: int = 0,
) -> AlgorithmInstance:
    """Build a Deutsch–Jozsa instance.

    ``oracle`` is "constant" or "balanced".  Balanced oracles compute
    ``f(x) = mask . x mod 2`` (mask defaults to all ones); constant oracles
    return ``constant_value`` for every input.

    Both oracle families decompose into ``H``/``X``/``CNOT`` only, so the
    instance is pure Clifford (``metadata["clifford"]``) and dispatches to
    the stabilizer tableau.
    """
    if num_input_qubits < 1:
        raise ValueError("need at least one input qubit")
    if oracle not in ("constant", "balanced"):
        raise ValueError("oracle must be 'constant' or 'balanced'")
    if mask is None:
        mask = [1] * num_input_qubits
    if len(mask) != num_input_qubits:
        raise ValueError("mask length must equal the number of input qubits")
    if oracle == "balanced" and not any(mask):
        raise ValueError("a balanced oracle needs a non-zero mask")

    inputs = LineQubit.range(num_input_qubits)
    ancilla = LineQubit(num_input_qubits)
    circuit = Circuit()
    # Ancilla in |->.
    circuit.append(X(ancilla))
    circuit.append(H(ancilla))
    circuit.append(H(q) for q in inputs)
    if oracle == "constant":
        _phase_oracle_constant(circuit, inputs, ancilla, constant_value)
    else:
        _phase_oracle_balanced(circuit, inputs, ancilla, mask)
    circuit.append(H(q) for q in inputs)

    # Measuring the input register: all zeros iff the oracle is constant;
    # for a linear balanced oracle the result is exactly `mask`.
    if oracle == "constant":
        input_bits = tuple([0] * num_input_qubits)
    else:
        input_bits = tuple(int(b) for b in mask)

    # The ancilla stays in |->: uniformly 0/1 upon measurement.  Dense only
    # at dense-simulable widths (wide instances keep expected_bitstring).
    expected = None
    if num_input_qubits + 1 <= DENSE_EXPECTATION_QUBITS:
        expected = np.zeros(2 ** (num_input_qubits + 1))
        base_index = 0
        for bit in input_bits:
            base_index = (base_index << 1) | bit
        expected[base_index * 2 + 0] = 0.5
        expected[base_index * 2 + 1] = 0.5

    return AlgorithmInstance(
        f"deutsch_jozsa_{oracle}_{num_input_qubits}",
        circuit,
        list(inputs) + [ancilla],
        expected_distribution=expected,
        expected_bitstring=input_bits,
        description="Deutsch-Jozsa constant-vs-balanced decision",
        metadata={"oracle": oracle, "mask": list(mask), "clifford": True},
    )


def deutsch_circuit(balanced: bool = True) -> AlgorithmInstance:
    """The single-qubit Deutsch problem (n = 1 special case)."""
    return deutsch_jozsa_circuit(1, oracle="balanced" if balanced else "constant")
