"""Quantum Fourier transform circuits and the period-finding primitive."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CPhase, H, SWAP, X
from ..circuits.qubits import LineQubit, Qubit
from .common import AlgorithmInstance


def qft_operations(qubits: Sequence[Qubit], inverse: bool = False, swaps: bool = True) -> List:
    """The standard QFT gate sequence on ``qubits`` (MSB first)."""
    qubits = list(qubits)
    n = len(qubits)
    operations = []
    for i in range(n):
        operations.append(H(qubits[i]))
        for j in range(i + 1, n):
            angle = math.pi / (2 ** (j - i))
            operations.append(CPhase(angle)(qubits[j], qubits[i]))
    if swaps:
        for i in range(n // 2):
            operations.append(SWAP(qubits[i], qubits[n - 1 - i]))
    if inverse:
        inverted = []
        for op in reversed(operations):
            gate = op.gate
            if isinstance(gate, CPhase):
                inverted.append(CPhase(-gate.angle)(*op.qubits))
            else:
                inverted.append(op)
        return inverted
    return operations


def qft_circuit(num_qubits: int, input_value: int = 0) -> AlgorithmInstance:
    """QFT applied to a computational basis state.

    The output distribution of measuring QFT|x> is uniform for any basis
    input, which the validation harness checks; the amplitudes themselves are
    checked against the analytic form in the unit tests.
    """
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit()
    for position, qubit in enumerate(qubits):
        if (input_value >> (num_qubits - 1 - position)) & 1:
            circuit.append(X(qubit))
    circuit.append(qft_operations(qubits))
    expected = np.full(2 ** num_qubits, 1.0 / 2 ** num_qubits)
    return AlgorithmInstance(
        f"qft_{num_qubits}_{input_value}",
        circuit,
        qubits,
        expected_distribution=expected,
        description="Quantum Fourier transform of a basis state",
        metadata={"input_value": input_value},
    )


def expected_qft_amplitudes(num_qubits: int, input_value: int) -> np.ndarray:
    """Analytic QFT amplitudes: (1/sqrt(N)) exp(2 pi i x k / N)."""
    dim = 2 ** num_qubits
    k = np.arange(dim)
    return np.exp(2j * math.pi * input_value * k / dim) / math.sqrt(dim)


def inverse_qft_circuit(num_qubits: int, frequency: int) -> AlgorithmInstance:
    """Prepare the Fourier basis state for ``frequency`` and invert it.

    The inverse QFT maps it back to the computational basis state
    ``frequency``, so the measurement outcome is deterministic — a strong
    end-to-end validation circuit for phase arithmetic.
    """
    qubits = LineQubit.range(num_qubits)
    dim = 2 ** num_qubits
    if not 0 <= frequency < dim:
        raise ValueError("frequency out of range")
    circuit = Circuit()
    # Prepare the Fourier state of `frequency` explicitly: H on each qubit
    # followed by the appropriate Z-rotations, i.e. the QFT of |frequency>.
    for position, qubit in enumerate(qubits):
        if (frequency >> (num_qubits - 1 - position)) & 1:
            circuit.append(X(qubit))
    circuit.append(qft_operations(qubits))
    circuit.append(qft_operations(qubits, inverse=True))
    expected = np.zeros(dim)
    expected[frequency] = 1.0
    bits = tuple((frequency >> (num_qubits - 1 - i)) & 1 for i in range(num_qubits))
    return AlgorithmInstance(
        f"iqft_roundtrip_{num_qubits}_{frequency}",
        circuit,
        qubits,
        expected_distribution=expected,
        expected_bitstring=bits,
        description="QFT followed by inverse QFT (round trip to a basis state)",
        metadata={"frequency": frequency},
    )
