"""Small structured benchmark circuits: Bell states, GHZ, teleportation, CHSH.

These mirror the Cirq example suite the paper's artifact validates against
(Appendix A.6.1): Bell state creation, the Bell/CHSH inequality experiment
and quantum teleportation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CNOT, CZ, H, Ry, Rx, X, Z
from ..circuits.noise import NoiseChannel
from ..circuits.qubits import LineQubit, Qubit
from .common import DENSE_EXPECTATION_QUBITS, AlgorithmInstance


def bell_state_circuit(noise_channel: Optional[NoiseChannel] = None) -> AlgorithmInstance:
    """The two-qubit Bell state |00> + |11> (optionally with a noise channel after H)."""
    q0, q1 = LineQubit.range(2)
    circuit = Circuit([H(q0)])
    if noise_channel is not None:
        circuit.append(noise_channel.on(q0))
    circuit.append(CNOT(q0, q1))
    expected = None
    if noise_channel is None:
        expected = np.array([0.5, 0.0, 0.0, 0.5])
    return AlgorithmInstance(
        "bell_state",
        circuit,
        [q0, q1],
        expected_distribution=expected,
        description="Bell state creation (the paper's running example circuit)",
        metadata={"clifford": True},
    )


def ghz_circuit(num_qubits: int = 3) -> AlgorithmInstance:
    """An n-qubit GHZ state |0...0> + |1...1>."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    qubits = LineQubit.range(num_qubits)
    circuit = Circuit([H(qubits[0])])
    for a, b in zip(qubits, qubits[1:]):
        circuit.append(CNOT(a, b))
    # Dense expectation only at dense-simulable widths; the stabilizer
    # backend runs GHZ preparation at widths where 2^n arrays cannot exist.
    expected = None
    if num_qubits <= DENSE_EXPECTATION_QUBITS:
        expected = np.zeros(2 ** num_qubits)
        expected[0] = 0.5
        expected[-1] = 0.5
    return AlgorithmInstance(
        f"ghz_{num_qubits}",
        circuit,
        qubits,
        expected_distribution=expected,
        description=f"{num_qubits}-qubit GHZ state",
        metadata={"clifford": True},
    )


def teleportation_circuit(message_angle: float = 0.456) -> AlgorithmInstance:
    """Quantum teleportation with deferred (unitary, CZ/CNOT-controlled) corrections.

    The message qubit is prepared with Ry(message_angle); after teleportation
    the target qubit carries the same state, so measuring it yields 1 with
    probability sin^2(angle / 2) regardless of the other qubits' outcomes.
    """
    message, alice, bob = LineQubit.range(3)
    circuit = Circuit()
    circuit.append(Ry(message_angle)(message))
    # Entangle Alice and Bob.
    circuit.append([H(alice), CNOT(alice, bob)])
    # Bell measurement basis change on (message, alice), corrections deferred.
    circuit.append([CNOT(message, alice), H(message)])
    circuit.append([CNOT(alice, bob), CZ(message, bob)])

    probability_one = math.sin(message_angle / 2.0) ** 2
    # Message and Alice end uniformly random and independent of Bob's state.
    expected = np.zeros(8)
    for message_bit in range(2):
        for alice_bit in range(2):
            expected[(message_bit << 2) | (alice_bit << 1) | 0] = 0.25 * (1 - probability_one)
            expected[(message_bit << 2) | (alice_bit << 1) | 1] = 0.25 * probability_one
    return AlgorithmInstance(
        "teleportation",
        circuit,
        [message, alice, bob],
        expected_distribution=expected,
        description="Quantum teleportation with deferred corrections",
        metadata={"message_angle": message_angle, "p_one": probability_one},
    )


def chsh_circuit(alice_setting: int, bob_setting: int) -> AlgorithmInstance:
    """One of the four CHSH measurement settings on a shared Bell pair.

    Alice measures at angle 0 or pi/2; Bob at pi/4 or -pi/4 (implemented as
    Ry basis rotations before computational-basis measurement).  The expected
    correlation E = <a.b> is +/- 1/sqrt(2), and the CHSH combination over the
    four settings reaches 2*sqrt(2) > 2.
    """
    if alice_setting not in (0, 1) or bob_setting not in (0, 1):
        raise ValueError("settings must be 0 or 1")
    alice, bob = LineQubit.range(2)
    circuit = Circuit([H(alice), CNOT(alice, bob)])
    alice_angle = 0.0 if alice_setting == 0 else math.pi / 2.0
    bob_angle = math.pi / 4.0 if bob_setting == 0 else -math.pi / 4.0
    # Measuring observable cos(t) Z + sin(t) X equals rotating by Ry(-t) then measuring Z.
    circuit.append(Ry(-alice_angle)(alice))
    circuit.append(Ry(-bob_angle)(bob))

    correlation = math.cos(alice_angle - bob_angle)
    same = (1.0 + correlation) / 2.0
    diff = (1.0 - correlation) / 2.0
    expected = np.array([same / 2.0, diff / 2.0, diff / 2.0, same / 2.0])
    return AlgorithmInstance(
        f"chsh_{alice_setting}{bob_setting}",
        circuit,
        [alice, bob],
        expected_distribution=expected,
        description="CHSH inequality measurement setting",
        metadata={"expected_correlation": correlation},
    )


def chsh_value(probabilities_by_setting) -> float:
    """Combine the four settings' outcome distributions into the CHSH S value.

    ``probabilities_by_setting[(a, b)]`` is the 4-outcome distribution for
    Alice setting ``a`` and Bob setting ``b``.
    """
    correlations = {}
    for (a, b), distribution in probabilities_by_setting.items():
        same = float(distribution[0] + distribution[3])
        diff = float(distribution[1] + distribution[2])
        correlations[(a, b)] = same - diff
    return (
        correlations[(0, 0)]
        + correlations[(0, 1)]
        + correlations[(1, 0)]
        - correlations[(1, 1)]
    )
