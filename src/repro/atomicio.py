"""Audited atomic-write helpers (the only sanctioned raw-write site).

Every persisted artifact in ``src/repro`` — journal manifests, compiled
payloads, benchmark emitters, DIMACS dumps — must be written so that a
crash at *any* instruction leaves either the old file or the new file,
never a torn hybrid.  The discipline is the classic one:

1. write the full payload to a same-directory temp file (``os.replace``
   is only atomic within a filesystem),
2. flush + ``fsync`` the descriptor so the *data* is durable before the
   rename makes it *visible*,
3. ``os.replace`` onto the destination (atomic on POSIX and Windows).

The temp name embeds the pid so concurrent writers (pool workers, a
future multi-process service gateway) never collide; last replace wins,
and every observer sees a complete file.

The ``atomic-write`` reprolint rule flags any ``open(..., "w")`` outside
this module and the two audited append-only writers
(``JobJournal.checkpoint_row``'s ``O_APPEND`` fingerprinted WAL and
``CompiledCircuitCache.store_payload``).
"""

from __future__ import annotations

import os
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: Union[str, "os.PathLike[str]"], data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (write-temp + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.{os.getpid()}.tmp")
    handle = open(tmp_path, "wb")
    try:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_path, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, "os.PathLike[str]"], text: str, encoding: str = "utf-8"
) -> None:
    """Durably replace ``path`` with ``text`` (write-temp + fsync + rename)."""
    atomic_write_bytes(path, text.encode(encoding))
