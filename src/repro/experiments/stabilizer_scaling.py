"""Stabilizer-backend scaling: Clifford workloads far beyond dense reach.

Every dense backend in the matrix pays ``2^n`` (or ``(B, 2^n)``) state cost
and the knowledge-compilation backend pays a structure-dependent compile, so
none of them reach 50+ qubits on generic circuits.  The Clifford workloads
of the validation suite — GHZ preparation, hidden shift, the Clifford
skeleton of random circuit sampling — are ``O(poly(n))`` on the stabilizer
tableau, and this experiment demonstrates the scaling: time to draw
``num_samples`` measurement records as the qubit count grows, through the
:class:`~repro.simulator.hybrid.HybridSimulator` so the per-circuit routing
decision is part of what is measured.

At qubit counts where the dense baseline is still feasible the state-vector
time is reported alongside for reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..algorithms import ghz_circuit, hidden_shift_circuit, random_clifford_circuit
from ..simulator.hybrid import HybridSimulator
from ..statevector import StateVectorSimulator
from .common import ExperimentResult, time_callable

#: Largest qubit count the dense reference column is computed for.
DENSE_REFERENCE_CAP = 12


def _instance(workload: str, num_qubits: int, seed: int):
    if workload == "ghz":
        return ghz_circuit(num_qubits)
    if workload == "hidden_shift":
        shift = [(seed >> (i % 16)) & 1 ^ (i & 1) for i in range(num_qubits)]
        return hidden_shift_circuit(shift)
    if workload == "random_clifford":
        return random_clifford_circuit(num_qubits, depth=max(20, num_qubits), seed=seed)
    raise ValueError(f"unknown workload {workload!r}")


def run(
    workloads: Sequence[str] = ("ghz", "hidden_shift", "random_clifford"),
    qubit_counts: Optional[Sequence[int]] = None,
    num_samples: int = 1000,
    seed: int = 7,
) -> ExperimentResult:
    """Sampling time vs. qubit count for Clifford workloads via hybrid dispatch."""
    if qubit_counts is None:
        qubit_counts = [8, 16, 32, 64]
    rows: List[Dict] = []
    for workload in workloads:
        for num_qubits in qubit_counts:
            if workload == "hidden_shift" and num_qubits % 2:
                num_qubits += 1
            instance = _instance(workload, num_qubits, seed)
            simulator = HybridSimulator(seed=seed)
            _, elapsed = time_callable(
                lambda: simulator.sample(instance.circuit, num_samples, seed=seed)
            )
            row: Dict = {
                "workload": workload,
                "qubits": num_qubits,
                "gates": instance.circuit.gate_count(),
                "samples": num_samples,
                "routed_backend": simulator.last_decision.backend,
                "hybrid_seconds": round(elapsed, 4),
            }
            if num_qubits <= DENSE_REFERENCE_CAP:
                dense = StateVectorSimulator(seed=seed)
                _, dense_elapsed = time_callable(
                    lambda: dense.sample(instance.circuit, num_samples, seed=seed)
                )
                row["state_vector_seconds"] = round(dense_elapsed, 4)
            rows.append(row)
    return ExperimentResult(
        "stabilizer_scaling",
        "Clifford-workload sampling time vs qubits (stabilizer via hybrid dispatch)",
        rows,
    )


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [
    ("run", {"qubit_counts": [8, 16], "num_samples": 200}),
]
FULL_RUNS = [
    ("run", {"qubit_counts": [8, 16, 32, 64], "num_samples": 1000}),
]
