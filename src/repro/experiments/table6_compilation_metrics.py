"""Table 6: intermediate compilation-result metrics.

For the largest QAOA and VQE problem instances used in Figures 8 and 9 the
paper reports the number of qubits, gates (Bayesian-network nodes), CNF
clauses, arithmetic-circuit nodes and edges, and the compiled AC size.  This
experiment reproduces the same rows at configurable instance sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuits import depolarize
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising
from .common import ExperimentResult


def _instance(workload: str, num_qubits: int, iterations: int, noisy: bool, noise_probability: float, seed: int):
    if workload == "qaoa":
        ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)
    else:
        ansatz = VQECircuit(square_grid_ising(num_qubits, seed=seed), iterations=iterations)
    circuit = ansatz.circuit
    if noisy:
        circuit = circuit.with_noise(lambda: depolarize(noise_probability))
    return circuit


def run(
    ideal_qaoa_qubits: int = 12,
    ideal_vqe_qubits: int = 9,
    noisy_qaoa_qubits: int = 5,
    noisy_vqe_qubits: int = 4,
    noise_probability: float = 0.005,
    order_method: str = "hypergraph",
    seed: int = 21,
    include_two_iterations: bool = True,
) -> ExperimentResult:
    """Compile each headline instance and report Table 6 metrics."""
    simulator = KnowledgeCompilationSimulator(order_method=order_method)
    cases = []
    iteration_counts = (1, 2) if include_two_iterations else (1,)
    for iterations in iteration_counts:
        cases.append(("Ideal QAOA", "qaoa", ideal_qaoa_qubits, iterations, False))
        cases.append(("Ideal VQE", "vqe", ideal_vqe_qubits, iterations, False))
        cases.append(("Noisy QAOA", "qaoa", noisy_qaoa_qubits, iterations, True))
        cases.append(("Noisy VQE", "vqe", noisy_vqe_qubits, iterations, True))

    rows: List[Dict] = []
    for label, workload, num_qubits, iterations, noisy in cases:
        circuit = _instance(workload, num_qubits, iterations, noisy, noise_probability, seed)
        compiled = simulator.compile_circuit(circuit)
        metrics = compiled.compilation_metrics()
        rows.append(
            {
                "instance": f"{label} {iterations} iteration(s)",
                "qubits": metrics["qubits"],
                "gates_bn_nodes": metrics["bn_nodes"],
                "cnf_clauses": metrics["cnf_clauses"],
                "ac_nodes": metrics["ac_nodes"],
                "ac_edges": metrics["ac_edges"],
                "ac_size_bytes": metrics["ac_size_bytes"],
            }
        )
    return ExperimentResult(
        "table6_compilation_metrics",
        "Intermediate compilation metrics for the headline QAOA/VQE instances (Table 6)",
        rows,
    )


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [
    (
        "run",
        {
            "ideal_qaoa_qubits": 8,
            "ideal_vqe_qubits": 6,
            "noisy_qaoa_qubits": 4,
            "noisy_vqe_qubits": 4,
            "include_two_iterations": False,
        },
    )
]
FULL_RUNS = [("run", {})]
