"""Figure 1: arithmetic-circuit size before and after optimizations.

The paper's Figure 1 contrasts a directly-compiled arithmetic circuit for a
4-qubit noisy QAOA circuit with the reduced-but-equivalent circuit obtained
after logical minimization, qubit-state reordering and elision of internal
qubit states.  This experiment reproduces the comparison quantitatively:
node/edge counts of the compiled AC with the optimizations disabled vs.
enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuits import depolarize
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..variational import QAOACircuit, random_regular_maxcut
from .common import ExperimentResult


def build_noisy_qaoa(num_qubits: int = 4, noise_probability: float = 0.05, seed: int = 11):
    """The 4-qubit noisy QAOA circuit from the paper's Figure 1."""
    problem = random_regular_maxcut(num_qubits, seed=seed)
    ansatz = QAOACircuit(problem, iterations=1)
    resolver = ansatz.resolver([0.6] * ansatz.iterations + [0.4] * ansatz.iterations)
    circuit = ansatz.circuit.resolve_parameters(resolver)
    return circuit.with_noise(lambda: depolarize(noise_probability))


def run(
    num_qubits: int = 4,
    noise_probability: float = 0.05,
    seed: int = 11,
    order_methods: Optional[List[str]] = None,
) -> ExperimentResult:
    """Compare compiled AC sizes across optimization settings.

    Rows cover: direct compilation (lexicographic order, no elision) versus
    the optimized pipeline (min-fill/hypergraph ordering plus internal-state
    elision), mirroring the "Before"/"After" halves of Figure 1.
    """
    circuit = build_noisy_qaoa(num_qubits, noise_probability, seed)
    if order_methods is None:
        # min_fill is intentionally not in the default sweep: on noisy QAOA
        # CNFs it can be orders of magnitude slower than the other orderings
        # without adding information to the before/after comparison.
        order_methods = ["lexicographic", "hypergraph"]
    rows: List[Dict] = []
    for order_method in order_methods:
        for elide in (False, True):
            simulator = KnowledgeCompilationSimulator(order_method=order_method, elide_internal=elide)
            compiled = simulator.compile_circuit(circuit)
            metrics = compiled.compilation_metrics()
            rows.append(
                {
                    "order_method": order_method,
                    "elide_internal_states": elide,
                    "cnf_variables": metrics["cnf_variables"],
                    "cnf_clauses": metrics["cnf_clauses"],
                    "ac_nodes": metrics["ac_nodes"],
                    "ac_edges": metrics["ac_edges"],
                    "ac_size_bytes": metrics["ac_size_bytes"],
                }
            )
    baseline = next(r for r in rows if not r["elide_internal_states"] and r["order_method"] == order_methods[0])
    for row in rows:
        row["node_reduction_vs_direct"] = round(baseline["ac_nodes"] / max(row["ac_nodes"], 1), 2)
    return ExperimentResult(
        "figure1_ac_reduction",
        "Arithmetic circuit size before/after elision and ordering optimizations (Figure 1)",
        rows,
    )


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [("run", {"num_qubits": 4})]
FULL_RUNS = [("run", {"num_qubits": 4})]
