"""Figure 7: sampling error (KL divergence) vs. number of samples.

Two panels: a noise-free QAOA circuit (16 qubits in the paper) and a noisy
QAOA circuit (8 qubits, 0.5% depolarizing noise after each gate).  For each,
the KL divergence between the exact measurement distribution and the
empirical distribution of (a) ideal direct sampling and (b) Gibbs sampling on
the compiled arithmetic circuit is reported as the number of samples grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits import depolarize
from ..densitymatrix import DensityMatrixSimulator
from ..sampling import empirical_distribution, ideal_sample_from_distribution, kl_divergence
from ..sampling.gibbs import GibbsSampler
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..statevector import StateVectorSimulator
from ..variational import QAOACircuit, random_regular_maxcut
from .common import ExperimentResult


def _qaoa_setup(num_qubits: int, noisy: bool, noise_probability: float, seed: int):
    problem = random_regular_maxcut(num_qubits, seed=seed)
    ansatz = QAOACircuit(problem, iterations=1)
    resolver = ansatz.resolver([0.6, 0.4])
    circuit = ansatz.circuit.resolve_parameters(resolver)
    if noisy:
        circuit = circuit.with_noise(lambda: depolarize(noise_probability))
    return ansatz, circuit


def _exact_distribution(circuit) -> np.ndarray:
    if circuit.has_noise:
        return DensityMatrixSimulator().simulate(circuit).probabilities()
    state = StateVectorSimulator().simulate(circuit).state_vector
    return np.abs(state) ** 2


def run(
    num_qubits: int = 8,
    noisy: bool = False,
    noise_probability: float = 0.005,
    sample_counts: Optional[Sequence[int]] = None,
    seed: int = 5,
    num_chains: Optional[int] = None,
) -> ExperimentResult:
    """KL divergence of ideal vs Gibbs sampling as the sample count grows.

    ``num_chains`` sets the Gibbs chain-ensemble size (None lets the sampler
    choose); all samples are drawn with batched many-chain passes.
    """
    if sample_counts is None:
        sample_counts = [10, 30, 100, 300, 1000, 3000]
    ansatz, circuit = _qaoa_setup(num_qubits, noisy, noise_probability, seed)
    exact = _exact_distribution(circuit)

    rng = np.random.default_rng(seed)
    kc = KnowledgeCompilationSimulator(seed=seed)
    compiled = kc.compile_circuit(circuit)
    sampler = GibbsSampler(compiled, rng=np.random.default_rng(seed + 1))

    max_samples = max(sample_counts)
    ideal_samples = ideal_sample_from_distribution(exact, max_samples, ansatz.qubits, rng).samples
    gibbs_samples = sampler.sample(max_samples, burn_in_sweeps=4, num_chains=num_chains).samples

    rows: List[Dict] = []
    for count in sample_counts:
        ideal_empirical = empirical_distribution(ideal_samples[:count], num_qubits)
        gibbs_empirical = empirical_distribution(gibbs_samples[:count], num_qubits)
        rows.append(
            {
                "samples": count,
                "kl_ideal_sampling": kl_divergence(exact, ideal_empirical),
                "kl_gibbs_sampling": kl_divergence(exact, gibbs_empirical),
                "noisy": noisy,
                "qubits": num_qubits,
            }
        )
    label = "noisy" if noisy else "noise-free"
    return ExperimentResult(
        f"figure7_sampling_error_{label}",
        f"KL divergence vs samples for a {label} {num_qubits}-qubit QAOA circuit (Figure 7)",
        rows,
    )


def run_both(
    ideal_qubits: int = 8,
    noisy_qubits: int = 4,
    sample_counts: Optional[Sequence[int]] = None,
    seed: int = 5,
) -> List[ExperimentResult]:
    """Both Figure 7 panels (sizes default to laptop-scale reductions)."""
    return [
        run(ideal_qubits, noisy=False, sample_counts=sample_counts, seed=seed),
        run(noisy_qubits, noisy=True, sample_counts=sample_counts, seed=seed),
    ]


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [("run_both", {"ideal_qubits": 6, "noisy_qubits": 3, "sample_counts": [10, 100, 500]})]
FULL_RUNS = [("run_both", {"ideal_qubits": 8, "noisy_qubits": 4})]
