"""Figure 9: sampling performance for noisy circuits.

Four panels in the paper: noisy QAOA and noisy VQE, one and two iterations,
plotting the time to draw 1000 samples against the number of qubits for the
density-matrix simulator versus the knowledge-compilation simulator.  The
noise model matches the paper: a symmetric depolarizing channel with 0.5%
probability after each gate.

Beyond the paper, the harness also times the batched quantum-trajectory
backend (``backends=("density_matrix", "knowledge_compilation",
"trajectory")`` by default), which extends the workload to qubit counts
where the dense ``4^n`` density matrix is infeasible — drop
``"density_matrix"`` from ``backends`` to scale past it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits import depolarize
from ..densitymatrix import DensityMatrixSimulator
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..trajectory import TrajectorySimulator
from ..variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising
from .common import ExperimentResult, time_callable

DEFAULT_BACKENDS = ("density_matrix", "knowledge_compilation", "trajectory")


def noisy_variational_circuit(
    workload: str, num_qubits: int, iterations: int, noise_probability: float, seed: int
):
    """Build a (symbolic ansatz, noisy circuit) pair for the requested workload."""
    if workload == "qaoa":
        ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)
    elif workload == "vqe":
        ansatz = VQECircuit(square_grid_ising(num_qubits, seed=seed), iterations=iterations)
    else:
        raise ValueError("workload must be 'qaoa' or 'vqe'")
    noisy = ansatz.circuit.with_noise(lambda: depolarize(noise_probability))
    return ansatz, noisy


def run(
    workload: str = "qaoa",
    iterations: int = 1,
    qubit_counts: Optional[Sequence[int]] = None,
    num_samples: int = 1000,
    noise_probability: float = 0.005,
    seed: int = 13,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> ExperimentResult:
    """One Figure 9 panel: noisy sampling time vs. qubit count."""
    if qubit_counts is None:
        qubit_counts = [4, 5, 6] if workload == "qaoa" else [4, 6]
    unknown = set(backends) - set(DEFAULT_BACKENDS)
    if unknown:
        raise ValueError(f"unknown backends {sorted(unknown)}; choose from {DEFAULT_BACKENDS}")
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for num_qubits in qubit_counts:
        ansatz, noisy_circuit = noisy_variational_circuit(
            workload, num_qubits, iterations, noise_probability, seed
        )
        parameters = rng.uniform(0.2, 0.9, size=ansatz.num_parameters)
        resolver = ansatz.resolver(list(parameters))
        resolved = noisy_circuit.resolve_parameters(resolver)

        row: Dict = {
            "workload": workload,
            "iterations": iterations,
            "qubits": num_qubits,
            "gates": noisy_circuit.gate_count(include_noise=True),
            "samples": num_samples,
        }

        if "density_matrix" in backends:
            density_simulator = DensityMatrixSimulator(seed=seed)
            _, elapsed = time_callable(
                lambda: density_simulator.sample(resolved, num_samples, seed=seed)
            )
            row["density_matrix_seconds"] = round(elapsed, 4)

        if "trajectory" in backends:
            trajectory_simulator = TrajectorySimulator(seed=seed)
            _, elapsed = time_callable(
                lambda: trajectory_simulator.sample(resolved, num_samples, seed=seed)
            )
            row["trajectory_seconds"] = round(elapsed, 4)

        if "knowledge_compilation" in backends:
            kc_simulator = KnowledgeCompilationSimulator(order_method="hypergraph", seed=seed)
            compiled, compile_elapsed = time_callable(
                lambda: kc_simulator.compile_circuit(noisy_circuit)
            )
            _, sample_elapsed = time_callable(
                lambda: kc_simulator.sample(compiled, num_samples, resolver=resolver, seed=seed)
            )
            row["knowledge_compilation_seconds"] = round(sample_elapsed, 4)
            row["knowledge_compilation_compile_seconds"] = round(compile_elapsed, 4)
            row["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
        rows.append(row)
    return ExperimentResult(
        f"figure9_noisy_{workload}_iterations{iterations}",
        f"Noisy-circuit sampling time vs qubits ({workload.upper()}, {iterations} iteration(s), "
        f"{noise_probability:.3%} depolarizing noise)",
        rows,
    )


def run_all_panels(
    qaoa_qubits: Optional[Sequence[int]] = None,
    vqe_qubits: Optional[Sequence[int]] = None,
    num_samples: int = 1000,
    seed: int = 13,
) -> List[ExperimentResult]:
    """All four Figure 9 panels."""
    results = []
    for iterations in (1, 2):
        results.append(run("qaoa", iterations, qaoa_qubits, num_samples, seed=seed))
        results.append(run("vqe", iterations, vqe_qubits, num_samples, seed=seed))
    return results


# Harness entry points (see repro.experiments.runner): quick mode runs two
# reduced panels, the full harness all four.
QUICK_RUNS = [
    ("run", {"workload": "qaoa", "iterations": 1, "qubit_counts": [4], "num_samples": 100}),
    ("run", {"workload": "vqe", "iterations": 1, "qubit_counts": [4], "num_samples": 100}),
]
FULL_RUNS = [("run_all_panels", {"num_samples": 500})]
