"""Shared infrastructure for the per-figure experiment harness.

Every experiment module produces a list of plain-dict rows (one per data
point / table row) that mirror the series shown in the paper, plus helpers
to render them as aligned text tables or CSV so results can be inspected
without a plotting dependency.
"""

from __future__ import annotations

import csv
import io
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..atomicio import atomic_write_text


class Timer:
    """A simple wall-clock timer used by the performance experiments."""

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(function: Callable[[], Any]) -> tuple:
    """Run ``function`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned text table (the harness's stand-in for plots)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for cells in rendered_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def rows_to_csv(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(path: str, rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> None:
    atomic_write_text(path, rows_to_csv(rows, columns))


class ExperimentResult:
    """A named collection of result rows for one paper figure or table."""

    def __init__(self, name: str, description: str, rows: List[Dict[str, Any]]):
        self.name = name
        self.description = description
        self.rows = rows

    def table(self, columns: Optional[Sequence[str]] = None) -> str:
        return format_table(self.rows, columns)

    def csv(self, columns: Optional[Sequence[str]] = None) -> str:
        return rows_to_csv(self.rows, columns)

    def summary(self) -> str:
        header = f"== {self.name}: {self.description} =="
        return f"{header}\n{self.table()}"

    def __repr__(self) -> str:
        return f"ExperimentResult({self.name!r}, rows={len(self.rows)})"
