"""Figure 6 / Table 4: compiled-circuit size vs. quantum-circuit size.

The paper plots the number of arithmetic-circuit nodes (log scale) against
the number of CNF variables for three workloads: random circuit sampling
(unstructured — exponential growth), Grover's search and Shor's algorithm
(structured — sub-exponential growth).  Table 4 reports qubit/gate counts and
AC file size for the largest instance of each workload.

This experiment reproduces both, at laptop-scale instance sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..algorithms import grover_circuit, order_finding_circuit, random_circuit
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from .common import ExperimentResult, time_callable


def _compile_and_measure(name: str, circuit, simulator: KnowledgeCompilationSimulator) -> Dict:
    compiled, elapsed = time_callable(lambda: simulator.compile_circuit(circuit))
    metrics = compiled.compilation_metrics()
    return {
        "workload": name,
        "qubits": metrics["qubits"],
        "gates": metrics["gates"],
        "cnf_variables": metrics["cnf_variables"],
        "cnf_clauses": metrics["cnf_clauses"],
        "ac_nodes": metrics["ac_nodes"],
        "ac_edges": metrics["ac_edges"],
        "ac_size_bytes": metrics["ac_size_bytes"],
        "compile_seconds": round(elapsed, 4),
    }


def default_instances(scale: str = "small") -> Dict[str, List]:
    """Instance ladders per workload; "small" keeps everything under a minute."""
    if scale == "small":
        rcs_sizes = [(4, 2), (5, 2), (6, 2)]
        grover_sizes = [2, 3]
        shor_cases = [(2, 3), (2, 5)]
    else:
        rcs_sizes = [(4, 2), (6, 3), (8, 3), (10, 4)]
        grover_sizes = [2, 3, 4]
        shor_cases = [(2, 3), (2, 5), (4, 15), (7, 15)]
    return {
        "rcs": [random_circuit(n, depth, seed=17 + n).circuit for n, depth in rcs_sizes],
        "grover": [grover_circuit([1] * n).circuit for n in grover_sizes],
        "shor": [order_finding_circuit(a, modulus).circuit for a, modulus in shor_cases],
    }


def run(scale: str = "small", order_method: str = "min_fill") -> ExperimentResult:
    """Compile every instance and report CNF-variable vs AC-node scaling."""
    simulator = KnowledgeCompilationSimulator(order_method=order_method)
    rows: List[Dict] = []
    for workload, circuits in default_instances(scale).items():
        for circuit in circuits:
            rows.append(_compile_and_measure(workload, circuit, simulator))
    return ExperimentResult(
        "figure6_scaling",
        "AC nodes vs CNF variables for RCS, Grover and Shor workloads (Figure 6 / Table 4)",
        rows,
    )


def table4(result: Optional[ExperimentResult] = None, scale: str = "small") -> ExperimentResult:
    """Table 4: the largest instance per workload."""
    if result is None:
        result = run(scale)
    largest: Dict[str, Dict] = {}
    for row in result.rows:
        current = largest.get(row["workload"])
        if current is None or row["cnf_variables"] > current["cnf_variables"]:
            largest[row["workload"]] = row
    rows = [
        {
            "workload": row["workload"],
            "qubits": row["qubits"],
            "gates": row["gates"],
            "ac_file_size_bytes": row["ac_size_bytes"],
        }
        for row in largest.values()
    ]
    return ExperimentResult(
        "table4_largest_instances",
        "Problem-size metrics for the largest instances (Table 4)",
        rows,
    )


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [("run", {"scale": "small"})]
FULL_RUNS = [("run", {"scale": "small"})]
