"""Run every experiment in the reproduction harness.

``python -m repro.experiments.runner`` executes a laptop-scale version of
every table and figure in the paper's evaluation and prints the resulting
tables; pass ``--quick`` for an even smaller smoke-test configuration.
Numbers land in ``EXPERIMENTS.md``-style text output (no plotting
dependency).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from . import (
    bell_example,
    figure1_ac_reduction,
    figure3_peaked_distribution,
    figure6_scaling,
    figure7_sampling_error,
    figure8_ideal_performance,
    figure9_noisy_performance,
    table6_compilation_metrics,
)
from .common import ExperimentResult


def run_all(quick: bool = False) -> List[ExperimentResult]:
    """Run every experiment and return the collected results."""
    results: List[ExperimentResult] = []

    results.extend(bell_example.run())
    results.append(figure1_ac_reduction.run(num_qubits=4))

    if quick:
        results.append(figure3_peaked_distribution.run(num_qubits=6, num_samples=800))
        results.append(figure6_scaling.run(scale="small"))
        results.extend(figure7_sampling_error.run_both(ideal_qubits=6, noisy_qubits=3,
                                                       sample_counts=[10, 100, 500]))
        results.append(figure8_ideal_performance.run("qaoa", 1, [4, 6, 8], num_samples=200))
        results.append(figure8_ideal_performance.run("vqe", 1, [4, 6], num_samples=200))
        results.append(figure9_noisy_performance.run("qaoa", 1, [4], num_samples=100))
        results.append(figure9_noisy_performance.run("vqe", 1, [4], num_samples=100))
        results.append(
            table6_compilation_metrics.run(
                ideal_qaoa_qubits=8, ideal_vqe_qubits=6, noisy_qaoa_qubits=4, noisy_vqe_qubits=4,
                include_two_iterations=False,
            )
        )
    else:
        results.append(figure3_peaked_distribution.run(num_qubits=10, num_samples=4000))
        results.append(figure6_scaling.run(scale="small"))
        results.extend(figure7_sampling_error.run_both(ideal_qubits=8, noisy_qubits=4))
        results.extend(figure8_ideal_performance.run_all_panels(num_samples=1000))
        results.extend(figure9_noisy_performance.run_all_panels(num_samples=500))
        results.append(table6_compilation_metrics.run())

    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced smoke-test configuration")
    arguments = parser.parse_args(argv)
    for result in run_all(quick=arguments.quick):
        print(result.summary())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
