"""Process-parallel experiment harness for the reproduction's figures/tables.

``python -m repro.experiments.runner`` executes a laptop-scale version of
every table and figure in the paper's evaluation and prints the resulting
text tables.  The harness is spec-driven and parallel:

* every driver module under :mod:`repro.experiments` declares its harness
  entry points as ``QUICK_RUNS`` / ``FULL_RUNS`` — lists of
  ``(function_name, kwargs)`` pairs — and the runner materializes them into
  :class:`ExperimentSpec` objects;
* specs run on a **worker-process pool** (``--jobs``), each worker hydrating
  compiled circuits from a shared on-disk
  :mod:`compiled-circuit cache <repro.knowledge.cache>` so a topology
  compiled by one experiment is reused by every other;
* results are printed in spec order regardless of completion order, and
  every driver uses fixed seeds, so output values (timings aside) are
  deterministic and independent of ``--jobs``.

Pass ``--quick`` for a smaller smoke-test configuration, ``--only NAME`` to
run a subset, ``--list`` to see the spec names.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import tempfile
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..api import scheduler
from ..api.faults import RetryPolicy
from ..knowledge import cache as compile_cache
from .common import ExperimentResult

#: Driver modules consulted for ``QUICK_RUNS`` / ``FULL_RUNS``, in report order.
DRIVER_MODULES = (
    "bell_example",
    "figure1_ac_reduction",
    "figure3_peaked_distribution",
    "figure6_scaling",
    "figure7_sampling_error",
    "figure8_ideal_performance",
    "figure9_noisy_performance",
    "stabilizer_scaling",
    "table6_compilation_metrics",
    "ablation_orderings",
)


class ExperimentSpec(NamedTuple):
    """One harness work item: ``module.function(**kwargs)``."""

    name: str
    module: str
    function: str
    kwargs: Dict


def build_specs(quick: bool = False, only: Optional[Sequence[str]] = None) -> List[ExperimentSpec]:
    """Materialize the spec list from every driver's declared runs.

    ``only`` filters by spec-name substring (case-insensitive); an empty
    result for a non-empty filter raises ``ValueError`` so typos fail loudly.
    """
    specs: List[ExperimentSpec] = []
    for driver in DRIVER_MODULES:
        module = importlib.import_module(f"{__package__}.{driver}")
        runs = getattr(module, "QUICK_RUNS" if quick else "FULL_RUNS")
        for index, (function, kwargs) in enumerate(runs):
            suffix = "" if len(runs) == 1 else f"[{index}]"
            specs.append(ExperimentSpec(f"{driver}{suffix}", module.__name__, function, dict(kwargs)))
    if only:
        wanted = [token.lower() for token in only]
        specs = [spec for spec in specs if any(token in spec.name.lower() for token in wanted)]
        if not specs:
            raise ValueError(f"no experiment specs match {list(only)}")
    return specs


def execute_spec(spec: ExperimentSpec) -> List[ExperimentResult]:
    """Run one spec and normalize its outcome to a list of results."""
    module = importlib.import_module(spec.module)
    outcome = getattr(module, spec.function)(**spec.kwargs)
    return list(outcome) if isinstance(outcome, list) else [outcome]


def _worker_init(cache_dir: Optional[str]) -> None:
    """Point this process's default compile cache at the shared directory."""
    if cache_dir and os.environ.get(compile_cache.CACHE_DIR_ENV) != cache_dir:
        os.environ[compile_cache.CACHE_DIR_ENV] = cache_dir
        compile_cache.configure_default(directory=cache_dir)


def _spec_task(payload: Dict) -> List:
    """Scheduler task: hydrate the shared cache, run one spec."""
    _worker_init(payload.get("cache_dir"))
    return [(payload["index"], execute_spec(payload["spec"]))]


def run_specs(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    retries: int = 0,
) -> List[ExperimentResult]:
    """Execute ``specs`` and return their results flattened, in spec order.

    With ``jobs > 1`` the specs are submitted as one job to the unified
    scheduler (:mod:`repro.api.scheduler`), whose pool workers share
    ``cache_dir`` (a temporary directory when omitted) as an on-disk
    compiled-circuit cache: the first worker to need a topology compiles
    and persists it, the rest hydrate the pickle.  A serial run with an
    explicit ``cache_dir`` points this process's default cache at the same
    directory, so repeated invocations reuse compiles across runs.

    ``retries > 0`` re-runs specs whose workers crash or hit transient
    errors (up to ``retries`` extra attempts each); every spec re-runs
    with its original seeds, so a retried sweep is bit-identical to a
    fault-free one.
    """
    retry = RetryPolicy(max_attempts=retries + 1) if retries > 0 else None
    if jobs <= 1:
        if cache_dir is not None:
            _worker_init(cache_dir)
        if retry is None:
            return [result for spec in specs for result in execute_spec(spec)]
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if cache_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-runner-cache-")
        cache_dir = cleanup.name
    try:
        tasks = [
            (
                _spec_task,
                {"index": index, "spec": spec, "cache_dir": cache_dir},
                (index,),
                f"spec-{spec.name}",
            )
            for index, spec in enumerate(specs)
        ]
        job = scheduler.submit(
            tasks, jobs=min(jobs, len(specs)) or 1, block=True, retry=retry
        )
        blocks = job.result()
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return [result for block in blocks for result in block]


def default_jobs() -> int:
    """Default worker count: modest parallelism that laptops tolerate."""
    return max(1, min(4, os.cpu_count() or 1))


def run_all(
    quick: bool = False,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    retries: int = 0,
) -> List[ExperimentResult]:
    """Run every experiment and return the collected results."""
    if jobs is None:
        jobs = default_jobs()
    return run_specs(build_specs(quick=quick), jobs=jobs, cache_dir=cache_dir, retries=retries)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a reduced smoke-test configuration")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: min(4, cpu count); 1 disables the pool)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared compiled-circuit cache directory (default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only specs whose name contains NAME (repeatable)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per spec on worker crashes / transient errors (default: 0)",
    )
    parser.add_argument("--list", action="store_true", help="list spec names and exit")
    arguments = parser.parse_args(argv)

    specs = build_specs(quick=arguments.quick, only=arguments.only)
    if arguments.list:
        for spec in specs:
            print(spec.name)
        return 0
    jobs = arguments.jobs if arguments.jobs is not None else default_jobs()
    for result in run_specs(
        specs, jobs=jobs, cache_dir=arguments.cache_dir, retries=arguments.retries
    ):
        print(result.summary())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
