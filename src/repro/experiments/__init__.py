"""Experiment harness reproducing every table and figure of the paper's evaluation.

Module map (see DESIGN.md for the full per-experiment index):

================================  =============================================
Module                            Paper artefact
================================  =============================================
``bell_example``                  Figure 2, Tables 2/3/5, Equation 3
``figure1_ac_reduction``          Figure 1 (AC size before/after optimizations)
``figure3_peaked_distribution``   Figure 3 (peaked QAOA output distribution)
``figure6_scaling``               Figure 6 and Table 4 (AC nodes vs CNF size)
``figure7_sampling_error``        Figure 7 (KL divergence vs samples)
``figure8_ideal_performance``     Figure 8 (ideal-circuit sampling time)
``figure9_noisy_performance``     Figure 9 (noisy-circuit sampling time)
``table6_compilation_metrics``    Table 6 (compilation metrics)
``runner``                        runs everything (``python -m repro.experiments.runner``)
================================  =============================================
"""

from . import (
    ablation_orderings,
    bell_example,
    figure1_ac_reduction,
    figure3_peaked_distribution,
    figure6_scaling,
    figure7_sampling_error,
    figure8_ideal_performance,
    figure9_noisy_performance,
    table6_compilation_metrics,
)
from .common import ExperimentResult, format_table, rows_to_csv, time_callable, write_csv

__all__ = [
    "ExperimentResult",
    "format_table",
    "rows_to_csv",
    "write_csv",
    "time_callable",
    "ablation_orderings",
    "bell_example",
    "figure1_ac_reduction",
    "figure3_peaked_distribution",
    "figure6_scaling",
    "figure7_sampling_error",
    "figure8_ideal_performance",
    "figure9_noisy_performance",
    "table6_compilation_metrics",
]
