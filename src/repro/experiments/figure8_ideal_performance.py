"""Figure 8: sampling performance for ideal (noise-free) circuits.

Four panels in the paper: QAOA and VQE, one and two algorithm iterations,
plotting the time to draw 1000 samples against the number of qubits for
three backends — a state-vector simulator (qsim), a tensor-network simulator
(qTorch) and the knowledge-compilation simulator.

This experiment reproduces the sweep at configurable (laptop-scale) sizes.
Knowledge-compilation timings separate the one-off compile cost from the
per-iteration sampling cost, since in the variational setting the compiled
circuit is reused across every optimizer iteration (the paper's headline
feature); the reported ``sample_seconds`` is the apples-to-apples
"draw N samples for one parameter binding" number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simulator.hybrid import HybridSimulator
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..statevector import StateVectorSimulator
from ..tensornetwork import TensorNetworkSimulator
from ..variational import QAOACircuit, VQECircuit, random_regular_maxcut, square_grid_ising
from .common import ExperimentResult, time_callable


def _qaoa_ansatz(num_qubits: int, iterations: int, seed: int) -> QAOACircuit:
    return QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)


def _vqe_ansatz(num_qubits: int, iterations: int, seed: int) -> VQECircuit:
    return VQECircuit(square_grid_ising(num_qubits, seed=seed), iterations=iterations)


def _parameters_for(ansatz, rng: np.random.Generator) -> Sequence[float]:
    return rng.uniform(0.2, 0.9, size=ansatz.num_parameters)


def run(
    workload: str = "qaoa",
    iterations: int = 1,
    qubit_counts: Optional[Sequence[int]] = None,
    num_samples: int = 1000,
    seed: int = 9,
    backends: Optional[Sequence[str]] = None,
    tensor_network_sample_cap: int = 40,
) -> ExperimentResult:
    """One Figure 8 panel: time to draw ``num_samples`` vs. qubit count.

    ``tensor_network_sample_cap`` bounds the number of samples actually drawn
    by the tensor-network backend (its per-sample contraction cost makes full
    1000-sample runs impractical at larger sizes); the reported time is
    extrapolated linearly to ``num_samples``, which is conservative towards
    the baseline.
    """
    if workload not in ("qaoa", "vqe"):
        raise ValueError("workload must be 'qaoa' or 'vqe'")
    if qubit_counts is None:
        qubit_counts = [4, 6, 8, 10] if workload == "qaoa" else [4, 6, 9]
    if backends is None:
        backends = ["state_vector", "tensor_network", "knowledge_compilation"]

    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for num_qubits in qubit_counts:
        ansatz = (
            _qaoa_ansatz(num_qubits, iterations, seed)
            if workload == "qaoa"
            else _vqe_ansatz(num_qubits, iterations, seed)
        )
        parameters = _parameters_for(ansatz, rng)
        resolver = ansatz.resolver(list(parameters))
        resolved_circuit = ansatz.circuit.resolve_parameters(resolver)

        row: Dict = {
            "workload": workload,
            "iterations": iterations,
            "qubits": num_qubits,
            "gates": ansatz.circuit.gate_count(),
            "samples": num_samples,
        }
        if "state_vector" in backends:
            simulator = StateVectorSimulator(seed=seed)
            _, elapsed = time_callable(
                lambda: simulator.sample(resolved_circuit, num_samples, seed=seed)
            )
            row["state_vector_seconds"] = round(elapsed, 4)
        if "hybrid" in backends:
            # The dispatcher route: QAOA/VQE angles are generically
            # non-Clifford, so this measures classification overhead plus the
            # fallback backend; the routed backend is reported per row.
            simulator = HybridSimulator(seed=seed)
            _, elapsed = time_callable(
                lambda: simulator.sample(resolved_circuit, num_samples, seed=seed)
            )
            row["hybrid_seconds"] = round(elapsed, 4)
            row["hybrid_route"] = simulator.last_decision.backend
        if "tensor_network" in backends:
            simulator = TensorNetworkSimulator(seed=seed)
            capped = min(num_samples, tensor_network_sample_cap)
            _, elapsed = time_callable(
                lambda: simulator.sample(resolved_circuit, capped, seed=seed, burn_in=4)
            )
            row["tensor_network_seconds"] = round(elapsed * (num_samples / capped), 4)
        if "knowledge_compilation" in backends:
            simulator = KnowledgeCompilationSimulator(order_method="hypergraph", seed=seed)
            compiled, compile_elapsed = time_callable(
                lambda: simulator.compile_circuit(ansatz.circuit)
            )
            _, sample_elapsed = time_callable(
                lambda: simulator.sample(compiled, num_samples, resolver=resolver, seed=seed)
            )
            row["knowledge_compilation_seconds"] = round(sample_elapsed, 4)
            row["knowledge_compilation_compile_seconds"] = round(compile_elapsed, 4)
            row["ac_nodes"] = compiled.arithmetic_circuit.num_nodes
        rows.append(row)
    return ExperimentResult(
        f"figure8_{workload}_iterations{iterations}",
        f"Ideal-circuit sampling time vs qubits ({workload.upper()}, {iterations} iteration(s))",
        rows,
    )


def run_all_panels(
    qaoa_qubits: Optional[Sequence[int]] = None,
    vqe_qubits: Optional[Sequence[int]] = None,
    num_samples: int = 1000,
    seed: int = 9,
) -> List[ExperimentResult]:
    """All four Figure 8 panels."""
    results = []
    for iterations in (1, 2):
        results.append(run("qaoa", iterations, qaoa_qubits, num_samples, seed))
        results.append(run("vqe", iterations, vqe_qubits, num_samples, seed))
    return results


# Harness entry points (see repro.experiments.runner): quick mode runs two
# reduced panels, the full harness all four.
QUICK_RUNS = [
    ("run", {"workload": "qaoa", "iterations": 1, "qubit_counts": [4, 6, 8], "num_samples": 200}),
    ("run", {"workload": "vqe", "iterations": 1, "qubit_counts": [4, 6], "num_samples": 200}),
]
FULL_RUNS = [("run_all_panels", {"num_samples": 1000})]
