"""The paper's worked example: the noisy Bell-state circuit (Figure 2, Tables 2, 3, 5).

Reproduces every artefact of Section 3's running example:

* the Bayesian-network structure and conditional amplitude tables (Table 2),
* the interpreted CNF clauses (Table 3),
* the upward-pass amplitude per noise-branch / output assignment (Table 5),
* the reconstructed final density matrix (Equation 3).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..bayesnet import circuit_to_bayesnet
from ..circuits import CNOT, Circuit, H, LineQubit, phase_damp
from ..cnf import encode_bayesnet
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from .common import ExperimentResult


def noisy_bell_circuit(gamma: float = 0.36) -> Circuit:
    """The noisy Bell-state circuit of Figure 2(a): H, phase damping, CNOT."""
    q0, q1 = LineQubit.range(2)
    circuit = Circuit([H(q0)])
    circuit.append(phase_damp(gamma).on(q0))
    circuit.append(CNOT(q0, q1))
    return circuit


def conditional_amplitude_tables(gamma: float = 0.36) -> ExperimentResult:
    """Table 2: the conditional amplitude tables of the noisy Bell network."""
    network = circuit_to_bayesnet(noisy_bell_circuit(gamma))
    rows: List[Dict] = []
    for node in network.nodes:
        table = node.table(None)
        for index in np.ndindex(table.shape):
            value = complex(table[index])
            if value == 0:
                continue
            rows.append(
                {
                    "node": node.name,
                    "kind": node.kind,
                    "parents": ",".join(node.parents) or "-",
                    "parent_values": str(index[:-1]),
                    "node_value": index[-1],
                    "amplitude": f"{value.real:+.4f}{value.imag:+.4f}j",
                }
            )
    return ExperimentResult(
        "table2_conditional_amplitude_tables",
        "Conditional amplitude tables for the noisy Bell-state Bayesian network",
        rows,
    )


def cnf_clauses(gamma: float = 0.36) -> ExperimentResult:
    """Table 3: the CNF clauses (interpreted with variable names)."""
    network = circuit_to_bayesnet(noisy_bell_circuit(gamma))
    encoding = encode_bayesnet(network, simplify=False)
    rows: List[Dict] = []
    for clause in encoding.cnf.clauses:
        rendered = " OR ".join(
            ("NOT " if literal < 0 else "") + encoding.cnf.name_of(abs(literal))
            for literal in clause
        )
        rows.append({"clause": rendered, "width": len(clause)})
    simplified = encode_bayesnet(network, simplify=True)
    rows.append(
        {
            "clause": f"[after unit resolution: {simplified.cnf.num_clauses} clauses, "
            f"{len(simplified.forced_literals)} literals forced]",
            "width": "",
        }
    )
    return ExperimentResult(
        "table3_cnf_clauses",
        "CNF encoding of the noisy Bell-state network (before and after simplification)",
        rows,
    )


def upward_pass_amplitudes(gamma: float = 0.36) -> ExperimentResult:
    """Table 5: amplitude for every (noise branch, output) assignment + density matrix."""
    circuit = noisy_bell_circuit(gamma)
    simulator = KnowledgeCompilationSimulator()
    compiled = simulator.compile_circuit(circuit)
    rows: List[Dict] = []
    for branch in range(compiled.noise_variables[0].cardinality):
        for q0_bit in range(2):
            for q1_bit in range(2):
                amplitude = compiled.amplitude([q0_bit, q1_bit], noise_branches=[branch])
                rows.append(
                    {
                        "noise_branch": branch,
                        "q0": q0_bit,
                        "q1": q1_bit,
                        "amplitude": f"{amplitude.real:+.4f}{amplitude.imag:+.4f}j",
                        "probability": abs(amplitude) ** 2,
                    }
                )
    return ExperimentResult(
        "table5_upward_pass",
        "Upward-pass amplitudes per noise branch and output assignment (Table 5)",
        rows,
    )


def final_density_matrix(gamma: float = 0.36) -> np.ndarray:
    """Equation 3: the final density matrix of the noisy Bell-state circuit."""
    simulator = KnowledgeCompilationSimulator()
    compiled = simulator.compile_circuit(noisy_bell_circuit(gamma))
    return compiled.density_matrix()


def expected_density_matrix(gamma: float = 0.36) -> np.ndarray:
    """The analytic density matrix from Equation 3 of the paper."""
    damping = np.sqrt(1.0 - gamma)
    rho = np.zeros((4, 4), dtype=complex)
    rho[0, 0] = 0.5
    rho[3, 3] = 0.5
    rho[0, 3] = damping / 2.0
    rho[3, 0] = damping / 2.0
    return rho


def run(gamma: float = 0.36) -> List[ExperimentResult]:
    """Run the complete worked example and return all of its tables."""
    results = [
        conditional_amplitude_tables(gamma),
        cnf_clauses(gamma),
        upward_pass_amplitudes(gamma),
    ]
    rho = final_density_matrix(gamma)
    expected = expected_density_matrix(gamma)
    rows = [
        {
            "entry": f"rho[{i},{j}]",
            "measured": f"{rho[i, j].real:+.4f}{rho[i, j].imag:+.4f}j",
            "paper_eq3": f"{expected[i, j].real:+.4f}{expected[i, j].imag:+.4f}j",
            "match": bool(abs(rho[i, j] - expected[i, j]) < 1e-9),
        }
        for i in range(4)
        for j in range(4)
        if abs(expected[i, j]) > 0 or abs(rho[i, j]) > 1e-12
    ]
    results.append(
        ExperimentResult(
            "equation3_density_matrix",
            "Final density matrix of the noisy Bell circuit vs. the paper's Equation 3",
            rows,
        )
    )
    return results


# Harness entry points (see repro.experiments.runner): the worked example is
# cheap enough to run identically in both configurations.
QUICK_RUNS = [("run", {})]
FULL_RUNS = [("run", {})]
