"""Ablation: how the decision/elimination ordering affects compiled-circuit size.

Section 3.2.2 of the paper observes that the variable elimination order
"impacts how much factoring the compiler can perform" and that hypergraph
partitioning gives smaller arithmetic circuits than lexicographic ordering.
This ablation quantifies that design choice across the orderings implemented
in this reproduction (lexicographic, min-degree, min-fill and separator-first
hypergraph bisection) on a QAOA instance, with and without internal-state
elision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..variational import QAOACircuit, random_regular_maxcut
from .common import ExperimentResult, time_callable


def run(
    num_qubits: int = 8,
    iterations: int = 1,
    order_methods: Optional[Sequence[str]] = None,
    include_unelided: bool = True,
    seed: int = 29,
) -> ExperimentResult:
    """Compile one QAOA instance under every ordering and report AC sizes."""
    if order_methods is None:
        order_methods = ["lexicographic", "min_degree", "hypergraph"]
    ansatz = QAOACircuit(random_regular_maxcut(num_qubits, seed=seed), iterations=iterations)
    rows: List[Dict] = []
    elision_settings = (True, False) if include_unelided else (True,)
    for order_method in order_methods:
        for elide in elision_settings:
            simulator = KnowledgeCompilationSimulator(order_method=order_method, elide_internal=elide)
            compiled, elapsed = time_callable(lambda: simulator.compile_circuit(ansatz.circuit))
            rows.append(
                {
                    "order_method": order_method,
                    "elide_internal_states": elide,
                    "qubits": num_qubits,
                    "ac_nodes": compiled.arithmetic_circuit.num_nodes,
                    "ac_edges": compiled.arithmetic_circuit.num_edges,
                    "compile_seconds": round(elapsed, 4),
                }
            )
    best = min(row["ac_nodes"] for row in rows)
    for row in rows:
        row["nodes_vs_best"] = round(row["ac_nodes"] / best, 2)
    return ExperimentResult(
        "ablation_orderings",
        f"Compiled AC size per decision ordering ({num_qubits}-qubit QAOA, {iterations} iteration(s))",
        rows,
    )


# Harness entry points (see repro.experiments.runner).  The ablation was not
# part of the original sequential runner; the spec-driven harness includes it.
QUICK_RUNS = [("run", {"num_qubits": 6, "include_unelided": False})]
FULL_RUNS = [("run", {})]
