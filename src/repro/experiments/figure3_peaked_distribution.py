"""Figure 3: the sharply-peaked output distribution of a QAOA circuit.

Four panels in the paper: (a) measurement probability vs. output bitstring,
(b) measurement probabilities sorted by rank, (c) the rank distribution
recovered by ideal (direct) sampling, (d) the rank distribution recovered by
Gibbs sampling on the compiled arithmetic circuit.  This experiment produces
all four series for a QAOA Max-Cut circuit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..sampling import empirical_distribution, ideal_sample_from_distribution
from ..simulator.kc_simulator import KnowledgeCompilationSimulator
from ..statevector import StateVectorSimulator
from ..variational import QAOACircuit, random_regular_maxcut
from .common import ExperimentResult


def run(
    num_qubits: int = 10,
    iterations: int = 1,
    gamma: float = 0.6,
    beta: float = 0.4,
    num_samples: int = 4000,
    seed: int = 3,
    top_k: int = 16,
) -> ExperimentResult:
    """Generate the four Figure 3 series (reported for the top-ranked outcomes)."""
    problem = random_regular_maxcut(num_qubits, seed=seed)
    ansatz = QAOACircuit(problem, iterations=iterations)
    resolver = ansatz.resolver([gamma] * iterations + [beta] * iterations)

    exact_state = StateVectorSimulator().simulate(ansatz.circuit, resolver).state_vector
    exact_probabilities = np.abs(exact_state) ** 2

    rng = np.random.default_rng(seed)
    ideal_samples = ideal_sample_from_distribution(
        exact_probabilities, num_samples, ansatz.qubits, rng
    )
    ideal_empirical = ideal_samples.empirical_distribution()

    kc = KnowledgeCompilationSimulator(seed=seed)
    compiled = kc.compile_circuit(ansatz.circuit)
    gibbs_samples = kc.sample(compiled, num_samples, resolver=resolver, seed=seed)
    gibbs_empirical = gibbs_samples.empirical_distribution()

    order = np.argsort(exact_probabilities)[::-1]
    rows: List[Dict] = []
    for rank in range(min(top_k, len(order))):
        index = int(order[rank])
        rows.append(
            {
                "rank": rank,
                "bitstring": format(index, f"0{num_qubits}b"),
                "measurement_probability": float(exact_probabilities[index]),
                "ideal_sampling_probability": float(ideal_empirical[index]),
                "gibbs_sampling_probability": float(gibbs_empirical[index]),
            }
        )
    top_mass = float(np.sort(exact_probabilities)[::-1][: max(1, 2 ** num_qubits // 64)].sum())
    rows.append(
        {
            "rank": "top 1/64 of outcomes",
            "bitstring": "-",
            "measurement_probability": top_mass,
            "ideal_sampling_probability": float(np.sort(ideal_empirical)[::-1][: max(1, 2 ** num_qubits // 64)].sum()),
            "gibbs_sampling_probability": float(np.sort(gibbs_empirical)[::-1][: max(1, 2 ** num_qubits // 64)].sum()),
        }
    )
    return ExperimentResult(
        "figure3_peaked_distribution",
        "QAOA output distribution is sharply peaked; sampling recovers the peak (Figure 3)",
        rows,
    )


# Harness entry points (see repro.experiments.runner).
QUICK_RUNS = [("run", {"num_qubits": 6, "num_samples": 800})]
FULL_RUNS = [("run", {"num_qubits": 10, "num_samples": 4000})]
