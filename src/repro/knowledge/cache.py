"""Persistent compiled-circuit cache: in-memory LRU + content-addressed disk.

The CNF -> d-DNNF -> arithmetic-circuit compile is the expensive, exponential
stage of the pipeline; everything downstream of it is polynomial re-binding.
This module stores compiled artifacts keyed by *circuit topology* (see
:mod:`repro.circuits.topology`) on two levels:

* an **in-memory LRU** of fully constructed
  :class:`~repro.simulator.kc_simulator.CompiledCircuit` masters, shared by
  every simulator in the process (parameter sweeps, variational loops and
  figure harnesses all hit it);
* an optional **on-disk layer** of content-addressed pickles holding the
  compiled :class:`~repro.knowledge.arithmetic_circuit.ArithmeticCircuit`.
  Disk entries survive processes — a parallel experiment runner compiles once
  in one worker and every other worker hydrates from the file.  The cheap
  polynomial stages (circuit -> Bayesian network -> CNF encoding) are re-run
  on load and their fingerprint is checked against the stored one, so a
  stale or corrupt file degrades to a recompile, never to wrong results.

Only load cache directories you trust: entries are Python pickles.

The process-wide default cache is configured with :func:`configure_default`
(or the ``REPRO_COMPILE_CACHE_DIR`` environment variable, read once at first
use) and retrieved with :func:`default_cache`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

#: Environment variable naming the disk-cache directory for the default cache.
CACHE_DIR_ENV = "REPRO_COMPILE_CACHE_DIR"

#: On-disk payload format; bump on incompatible changes.
PAYLOAD_FORMAT = 1


class CacheStats:
    """Hit/miss counters for one :class:`CompiledCircuitCache`."""

    def __init__(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __repr__(self) -> str:
        return f"CacheStats({self.as_dict()})"


class CompiledCircuitCache:
    """Two-level (memory + optional disk) store for compiled circuits.

    Parameters
    ----------
    max_entries:
        Bound on the in-memory LRU; least-recently-used masters are evicted
        first.  Disk entries are never evicted by this class.
    directory:
        Directory for the persistent layer, created on first write.  ``None``
        disables the disk layer (memory-only caching).

    The class stores whatever master object the simulator hands it and treats
    disk payloads as opaque dictionaries; all compile logic stays in
    :class:`~repro.simulator.kc_simulator.KnowledgeCompilationSimulator`.
    """

    def __init__(self, max_entries: int = 32, directory: Optional[str] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self.directory = os.fspath(directory) if directory is not None else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # In-memory layer
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Any]:
        """Return the cached master for ``key``, or ``None``."""
        with self._lock:
            master = self._entries.get(key)
            if master is not None:
                self._entries.move_to_end(key)
                self.stats.memory_hits += 1
            else:
                self.stats.misses += 1
            return master

    def store(self, key: str, master: Any) -> None:
        """Insert ``master`` under ``key``, evicting LRU entries beyond the bound."""
        with self._lock:
            self._entries[key] = master
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self, disk: bool = False) -> None:
        """Drop all in-memory entries; with ``disk=True`` also delete disk files."""
        with self._lock:
            self._entries.clear()
        if disk and self.directory is not None and os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.pkl")

    def load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Read the disk payload for ``key``; ``None`` on miss or any error.

        A payload whose ``format`` does not match :data:`PAYLOAD_FORMAT` is
        treated as a miss (callers then recompile and overwrite it).
        """
        path = self._path_for(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != PAYLOAD_FORMAT:
            return None
        self.stats.disk_hits += 1
        return payload

    def store_payload(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically write the disk payload for ``key`` (no-op without a directory).

        The payload is pickled to a temporary file, flushed to stable
        storage, and published with ``os.replace`` — a concurrent reader (or
        a crash at any point) sees either the old complete file or the new
        complete file, never a torn write.  Failures of any kind degrade to
        "not cached" and always remove the temporary file.
        """
        path = self._path_for(key)
        if path is None:
            return
        payload = dict(payload, format=PAYLOAD_FORMAT)
        os.makedirs(self.directory, exist_ok=True)
        descriptor, temporary = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        except (OSError, pickle.PicklingError, AttributeError, TypeError, ValueError):
            try:
                os.unlink(temporary)
            except OSError:
                pass
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        return (
            f"CompiledCircuitCache(entries={len(self._entries)}/{self.max_entries}, "
            f"directory={self.directory!r})"
        )


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_default_cache: Optional[CompiledCircuitCache] = None
_default_lock = threading.Lock()


def default_cache() -> CompiledCircuitCache:
    """The process-wide shared cache (created lazily on first use).

    The disk layer is enabled when the ``REPRO_COMPILE_CACHE_DIR``
    environment variable is set at creation time; parallel-runner workers use
    exactly this hook to hydrate compiles from their parent's directory.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = CompiledCircuitCache(directory=os.environ.get(CACHE_DIR_ENV) or None)
        return _default_cache


def configure_default(
    directory: Optional[str] = None, max_entries: int = 32
) -> CompiledCircuitCache:
    """Replace the process-wide default cache and return the new instance."""
    global _default_cache
    with _default_lock:
        _default_cache = CompiledCircuitCache(max_entries=max_entries, directory=directory)
        return _default_cache
