"""Additional PGM-style queries on compiled circuits (the paper's Section 5).

The paper's research-directions section points out that once a noisy quantum
circuit lives in a probabilistic-graphical-model representation, query types
beyond amplitude computation become available:

* **Most probable explanation (MPE)** — which noise events best explain an
  observed (symptomatic) measurement outcome?  A max operator exists for the
  real-valued noise probabilities, so the query is answered over the noise
  branch selectors while amplitudes are handled exactly.
* **Sensitivity analysis** — how strongly does an output probability depend
  on each conditional-amplitude-table entry?  The downward differential pass
  already computes the required partial derivatives.

Both are implemented against :class:`repro.simulator.kc_simulator.CompiledCircuit`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.parameters import ParamResolver


class NoiseExplanation:
    """The result of a most-probable-explanation query."""

    def __init__(
        self,
        branches: Tuple[int, ...],
        probability: float,
        posterior: float,
        channel_names: List[str],
        exact: bool,
    ):
        self.branches = branches
        self.probability = probability
        self.posterior = posterior
        self.channel_names = channel_names
        self.exact = exact

    def as_dict(self) -> Dict[str, int]:
        return dict(zip(self.channel_names, self.branches))

    def __repr__(self) -> str:
        return (
            f"NoiseExplanation(branches={self.branches}, posterior={self.posterior:.4f}, "
            f"exact={self.exact})"
        )


def most_probable_explanation(
    compiled,
    bits: Sequence[int],
    resolver: Optional[ParamResolver] = None,
    enumeration_limit: int = 4096,
    max_passes: int = 8,
) -> NoiseExplanation:
    """Find the noise-branch assignment that best explains an observed outcome.

    For small noise spaces (up to ``enumeration_limit`` joint branch
    assignments) the query is answered exactly by enumeration; beyond that a
    greedy coordinate-ascent over branch selectors is used (each step scores
    candidate branches by the squared amplitude of the full assignment), which
    yields a locally optimal explanation.
    """
    noise_variables = compiled.noise_variables
    if not noise_variables:
        raise ValueError("circuit has no noise channels; MPE over noise events is undefined")
    channel_names = [variable.node_name for variable in noise_variables]
    cardinalities = [variable.cardinality for variable in noise_variables]
    total_assignments = int(np.prod(cardinalities))
    bit_row = np.asarray(list(bits), dtype=np.int64)[np.newaxis]

    def joint_probabilities(branch_matrix: np.ndarray) -> np.ndarray:
        """Squared amplitudes of (bits, branches) rows in chunked batched passes."""
        amplitudes = compiled.amplitudes(
            np.broadcast_to(bit_row, (branch_matrix.shape[0], bit_row.shape[1])),
            noise_branches=branch_matrix,
            resolver=resolver,
        )
        return np.abs(amplitudes) ** 2

    if total_assignments <= enumeration_limit:
        # Row order matches itertools.product (last channel varies fastest),
        # so argmax tie-breaking is unchanged from the scalar enumeration.
        grids = np.meshgrid(*[np.arange(c) for c in cardinalities], indexing="ij")
        branch_matrix = np.stack(grids, axis=-1).reshape(-1, len(noise_variables))
        probabilities = joint_probabilities(branch_matrix)
        evidence_mass = float(probabilities.sum())
        best_index = int(np.argmax(probabilities))
        best_probability = float(probabilities[best_index])
        best_branches = tuple(int(v) for v in branch_matrix[best_index])
        posterior = best_probability / evidence_mass if evidence_mass > 0 else 0.0
        return NoiseExplanation(best_branches, best_probability, posterior, channel_names, exact=True)

    # Greedy coordinate ascent for large noise spaces: each coordinate's
    # candidate branches are scored in a single batched amplitude query.
    branches = [0] * len(noise_variables)
    best_probability = float(joint_probabilities(np.asarray([branches]))[0])
    for _ in range(max_passes):
        improved = False
        for index, cardinality in enumerate(cardinalities):
            trials = np.tile(np.asarray(branches, dtype=np.int64), (cardinality, 1))
            trials[:, index] = np.arange(cardinality)
            probabilities = joint_probabilities(trials)
            candidate = int(np.argmax(probabilities))
            if candidate != branches[index] and probabilities[candidate] > best_probability:
                best_probability = float(probabilities[candidate])
                branches[index] = candidate
                improved = True
        if not improved:
            break
    return NoiseExplanation(tuple(branches), best_probability, float("nan"), channel_names, exact=False)


class SensitivityReport:
    """Partial derivatives of an output probability with respect to CAT entries."""

    def __init__(self, rows: List[Dict]):
        self.rows = rows

    def top(self, count: int = 5) -> List[Dict]:
        return sorted(self.rows, key=lambda row: abs(row["dP_dtheta"]), reverse=True)[:count]

    def by_node(self) -> Dict[str, float]:
        """Aggregate |dP/dtheta| per Bayesian-network node."""
        totals: Dict[str, float] = {}
        for row in self.rows:
            totals[row["node"]] = totals.get(row["node"], 0.0) + abs(row["dP_dtheta"])
        return totals

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"SensitivityReport(entries={len(self.rows)})"


def sensitivity_analysis(
    compiled,
    bits: Sequence[int],
    noise_branches: Optional[Sequence[int]] = None,
    resolver: Optional[ParamResolver] = None,
) -> SensitivityReport:
    """Sensitivity of the outcome probability to every weight (CAT entry).

    For the amplitude f and a table entry theta appearing multilinearly in
    the weighted model count, ``dP/dtheta = 2 Re(conj(f) * df/dtheta)`` where
    ``df/dtheta`` is read off the downward differential pass.
    """
    if compiled.noise_variables and noise_branches is None:
        raise ValueError("noisy circuit: provide the noise branch assignment to analyse")
    literal_values, constant = compiled.base_literal_values(resolver)
    assignment = compiled.assignment_for(bits, noise_branches)
    shortcut = compiled.apply_evidence(literal_values, assignment)
    if shortcut is not None:
        amplitude = shortcut
        derivatives = np.zeros_like(literal_values)
    else:
        amplitude, derivatives = compiled.arithmetic_circuit.evaluate_with_derivatives(literal_values)
        amplitude *= constant
        derivatives = derivatives * constant

    rows: List[Dict] = []
    for variable, reference in compiled.encoding.weight_refs.items():
        df_dtheta = complex(derivatives[variable, 1])
        dp_dtheta = 2.0 * float(np.real(np.conj(amplitude) * df_dtheta))
        rows.append(
            {
                "weight_variable": variable,
                "node": reference.node_name,
                "entry_index": reference.entry_index,
                "df_dtheta": df_dtheta,
                "dP_dtheta": dp_dtheta,
                "current_value": complex(literal_values[variable, 1]),
            }
        )
    return SensitivityReport(rows)
