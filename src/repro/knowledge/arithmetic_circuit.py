"""Arithmetic circuits: evaluating and differentiating compiled NNF.

A smooth, deterministic, decomposable NNF evaluated over a semiring —
literal leaves replaced by numeric values, AND by multiplication, OR by
addition — is the paper's arithmetic circuit (Figure 5).  Two passes matter:

* the **upward pass** computes the weighted model count, which in the
  quantum encoding is the amplitude of the evidence (Section 3.3.1);
* the **downward pass** computes the partial derivative of the root with
  respect to every leaf (Darwiche's differential approach), which yields the
  amplitude of every single-flip neighbour of the current assignment in one
  sweep — exactly what the Gibbs sampler needs (Section 3.3.2).

Values are complex (quantum amplitudes); noise probabilities embed as the
real entries of Kraus operators.  Both passes are vectorised: nodes are
grouped by topological level and evaluated with ``reduceat``/scatter-add
operations, so repeated queries (the variational-algorithm use case) cost a
handful of NumPy calls per level rather than a Python loop per node.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .nnf import (
    AndNode,
    FalseNode,
    LiteralNode,
    NNFNode,
    OrNode,
    TrueNode,
    topological_nodes,
)

NODE_FALSE = 0
NODE_TRUE = 1
NODE_LITERAL = 2
NODE_AND = 3
NODE_OR = 4


class _LevelGroup:
    """All AND (or all OR) nodes sharing one topological level."""

    __slots__ = ("is_and", "node_positions", "child_indices", "offsets", "arities")

    def __init__(self, is_and: bool, node_positions: List[int], children: List[List[int]]):
        self.is_and = is_and
        self.node_positions = np.asarray(node_positions, dtype=np.int64)
        self.arities = np.asarray([len(c) for c in children], dtype=np.int64)
        flat: List[int] = []
        offsets: List[int] = []
        cursor = 0
        for child_list in children:
            offsets.append(cursor)
            flat.extend(child_list)
            cursor += len(child_list)
        self.child_indices = np.asarray(flat, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)


class ArithmeticCircuit:
    """A flattened, topologically ordered, vectorised arithmetic circuit."""

    def __init__(self, root: NNFNode, num_vars: int):
        self.num_vars = int(num_vars)
        nodes = topological_nodes(root)
        index_of: Dict[int, int] = {node.node_id: i for i, node in enumerate(nodes)}
        self.root_index = index_of[root.node_id]
        self.num_nodes = len(nodes)

        self.node_types: List[int] = []
        self.literals: List[int] = []
        self.children: List[List[int]] = []
        levels = np.zeros(self.num_nodes, dtype=np.int64)

        literal_positions: List[int] = []
        literal_vars: List[int] = []
        literal_signs: List[int] = []
        true_positions: List[int] = []
        false_positions: List[int] = []

        for position, node in enumerate(nodes):
            if isinstance(node, FalseNode):
                self.node_types.append(NODE_FALSE)
                self.literals.append(0)
                self.children.append([])
                false_positions.append(position)
            elif isinstance(node, TrueNode):
                self.node_types.append(NODE_TRUE)
                self.literals.append(0)
                self.children.append([])
                true_positions.append(position)
            elif isinstance(node, LiteralNode):
                self.node_types.append(NODE_LITERAL)
                self.literals.append(node.literal)
                self.children.append([])
                literal_positions.append(position)
                literal_vars.append(abs(node.literal))
                literal_signs.append(1 if node.literal > 0 else 0)
            elif isinstance(node, (AndNode, OrNode)):
                child_positions = [index_of[c.node_id] for c in node.children()]
                self.node_types.append(NODE_AND if isinstance(node, AndNode) else NODE_OR)
                self.literals.append(0)
                self.children.append(child_positions)
                levels[position] = 1 + max(levels[c] for c in child_positions)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown NNF node type: {type(node)}")

        self._literal_positions = np.asarray(literal_positions, dtype=np.int64)
        self._literal_vars = np.asarray(literal_vars, dtype=np.int64)
        self._literal_signs = np.asarray(literal_signs, dtype=np.int64)
        self._true_positions = np.asarray(true_positions, dtype=np.int64)
        self._false_positions = np.asarray(false_positions, dtype=np.int64)

        # Group internal nodes by (level, type) for vectorised passes.
        grouped: Dict[Tuple[int, int], Tuple[List[int], List[List[int]]]] = {}
        for position in range(self.num_nodes):
            node_type = self.node_types[position]
            if node_type not in (NODE_AND, NODE_OR):
                continue
            key = (int(levels[position]), node_type)
            bucket = grouped.setdefault(key, ([], []))
            bucket[0].append(position)
            bucket[1].append(self.children[position])
        self._groups: List[_LevelGroup] = [
            _LevelGroup(node_type == NODE_AND, positions, children)
            for (level, node_type), (positions, children) in sorted(grouped.items())
        ]

    # ------------------------------------------------------------------
    # Structural metrics (used by Figure 6 / Table 4 / Table 6 experiments)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return sum(len(c) for c in self.children)

    @property
    def num_literal_leaves(self) -> int:
        return len(self._literal_positions)

    def size_bytes(self) -> int:
        """Approximate serialized size (length of the c2d-style .nnf text)."""
        return len(self.to_nnf_text().encode("utf-8"))

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "literal_leaves": self.num_literal_leaves,
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def default_literal_values(self) -> np.ndarray:
        """Array of literal values, all ones: shape (num_vars + 1, 2).

        Index ``[v, 1]`` holds the value of literal ``+v`` and ``[v, 0]`` the
        value of ``-v``; row 0 is unused.
        """
        return np.ones((self.num_vars + 1, 2), dtype=complex)

    def _upward(self, literal_values: np.ndarray) -> Tuple[np.ndarray, Dict[int, Tuple[np.ndarray, np.ndarray]]]:
        """Bottom-up pass.  Returns node values plus per-AND-group zero bookkeeping."""
        values = np.zeros(self.num_nodes, dtype=complex)
        if len(self._true_positions):
            values[self._true_positions] = 1.0
        if len(self._literal_positions):
            values[self._literal_positions] = literal_values[self._literal_vars, self._literal_signs]

        and_bookkeeping: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for group_index, group in enumerate(self._groups):
            gathered = values[group.child_indices]
            if group.is_and:
                zero_mask = gathered == 0
                zero_counts = np.add.reduceat(zero_mask.astype(np.int64), group.offsets)
                nonzero_product = np.multiply.reduceat(
                    np.where(zero_mask, 1.0 + 0j, gathered), group.offsets
                )
                values[group.node_positions] = np.where(zero_counts > 0, 0.0 + 0j, nonzero_product)
                and_bookkeeping[group_index] = (zero_counts, nonzero_product)
            else:
                values[group.node_positions] = np.add.reduceat(gathered, group.offsets)
        return values, and_bookkeeping

    def evaluate(self, literal_values: np.ndarray) -> complex:
        """Upward pass: the weighted model count under ``literal_values``."""
        values, _ = self._upward(literal_values)
        return complex(values[self.root_index])

    def evaluate_with_derivatives(
        self, literal_values: np.ndarray
    ) -> Tuple[complex, np.ndarray]:
        """Upward + downward pass.

        Returns ``(root_value, derivatives)`` where ``derivatives`` has the
        same shape as ``literal_values`` and holds the partial derivative of
        the root with respect to each literal leaf value.
        """
        values, and_bookkeeping = self._upward(literal_values)
        gradients = np.zeros(self.num_nodes, dtype=complex)
        gradients[self.root_index] = 1.0

        for group_index in range(len(self._groups) - 1, -1, -1):
            group = self._groups[group_index]
            parent_gradients = gradients[group.node_positions]
            per_edge_gradient = np.repeat(parent_gradients, group.arities)
            if group.is_and:
                zero_counts, nonzero_product = and_bookkeeping[group_index]
                child_values = values[group.child_indices]
                zero_counts_per_edge = np.repeat(zero_counts, group.arities)
                nonzero_product_per_edge = np.repeat(nonzero_product, group.arities)
                child_is_zero = child_values == 0
                # Product of the node's *other* children:
                #  - no zero children: nonzero_product / child_value
                #  - exactly one zero child: nonzero_product for that child, 0 for others
                #  - two or more zero children: 0 everywhere.
                safe_ratio = np.divide(
                    nonzero_product_per_edge,
                    child_values,
                    out=np.zeros_like(child_values),
                    where=~child_is_zero,
                )
                others_product = np.where(
                    zero_counts_per_edge == 0,
                    safe_ratio,
                    np.where(
                        (zero_counts_per_edge == 1) & child_is_zero,
                        nonzero_product_per_edge,
                        0.0 + 0j,
                    ),
                )
                contributions = per_edge_gradient * others_product
            else:
                contributions = per_edge_gradient
            np.add.at(gradients, group.child_indices, contributions)

        derivatives = np.zeros_like(literal_values, dtype=complex)
        if len(self._literal_positions):
            np.add.at(
                derivatives,
                (self._literal_vars, self._literal_signs),
                gradients[self._literal_positions],
            )
        return complex(values[self.root_index]), derivatives

    # ------------------------------------------------------------------
    # Serialisation (c2d-compatible .nnf text)
    # ------------------------------------------------------------------
    def to_nnf_text(self) -> str:
        lines = [f"nnf {self.num_nodes} {self.num_edges} {self.num_vars}"]
        for index in range(self.num_nodes):
            node_type = self.node_types[index]
            if node_type == NODE_FALSE:
                lines.append("O 0 0")
            elif node_type == NODE_TRUE:
                lines.append("A 0")
            elif node_type == NODE_LITERAL:
                lines.append(f"L {self.literals[index]}")
            elif node_type == NODE_AND:
                children = self.children[index]
                lines.append("A " + " ".join(str(c) for c in [len(children)] + children))
            else:
                children = self.children[index]
                lines.append("O 0 " + " ".join(str(c) for c in [len(children)] + children))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"ArithmeticCircuit(nodes={self.num_nodes}, edges={self.num_edges}, vars={self.num_vars})"
