"""Arithmetic circuits: evaluating and differentiating compiled NNF.

A smooth, deterministic, decomposable NNF evaluated over a semiring —
literal leaves replaced by numeric values, AND by multiplication, OR by
addition — is the paper's arithmetic circuit (Figure 5).  Two passes matter:

* the **upward pass** computes the weighted model count, which in the
  quantum encoding is the amplitude of the evidence (Section 3.3.1);
* the **downward pass** computes the partial derivative of the root with
  respect to every leaf (Darwiche's differential approach), which yields the
  amplitude of every single-flip neighbour of the current assignment in one
  sweep — exactly what the Gibbs sampler needs (Section 3.3.2).

Values are complex (quantum amplitudes); noise probabilities embed as the
real entries of Kraus operators.  Both passes are vectorised: nodes are
grouped by topological level and evaluated with ``reduceat``/scatter-add
operations, so repeated queries (the variational-algorithm use case) cost a
handful of NumPy calls per level rather than a Python loop per node.

Batch axis
----------
Both passes additionally accept a *batch* of literal bindings:
:meth:`ArithmeticCircuit.evaluate_batch` and
:meth:`ArithmeticCircuit.evaluate_with_derivatives_batch` take literal values
of shape ``(B, num_vars + 1, 2)`` and run the same level-grouped passes over
``(num_nodes, B)`` value/gradient arrays — one set of NumPy calls per level
*regardless of B*.  Amortising the per-level dispatch overhead across many
simultaneous queries is what makes many-chain Gibbs sampling and full
state-vector reconstruction cheap (one batched sweep instead of ``B`` scalar
sweeps).  The scalar :meth:`evaluate` / :meth:`evaluate_with_derivatives`
API is kept as a ``B = 1`` wrapper.  Node-sized scratch arrays are cached in
a per-batch-size workspace so repeated calls (the variational loop, Gibbs
sweeps) do not churn allocations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .nnf import (
    AndNode,
    FalseNode,
    LiteralNode,
    NNFNode,
    OrNode,
    TrueNode,
    topological_nodes,
)

NODE_FALSE = 0
NODE_TRUE = 1
NODE_LITERAL = 2
NODE_AND = 3
NODE_OR = 4


class _ScatterPlan:
    """Duplicate-safe segment-sum accumulation into a target array.

    Replaces ``np.add.at`` (whose unbuffered element-wise scatter costs
    O(entries * batch) and would swallow the batch-axis win): contributions
    are permuted so equal target indices are adjacent, summed per target with
    one ``reduceat``, and added with a plain fancy-indexed ``+=`` — safe
    because the surviving indices are unique.
    """

    __slots__ = ("permutation", "unique_targets", "segment_offsets")

    def __init__(self, target_indices: np.ndarray):
        target_indices = np.asarray(target_indices, dtype=np.int64)
        self.permutation = np.argsort(target_indices, kind="stable")
        ordered = target_indices[self.permutation]
        if len(ordered):
            boundaries = np.flatnonzero(
                np.concatenate(([True], ordered[1:] != ordered[:-1]))
            )
        else:
            boundaries = np.zeros(0, dtype=np.int64)
        self.unique_targets = ordered[boundaries]
        self.segment_offsets = boundaries

    def add_to(self, target: np.ndarray, contributions: np.ndarray) -> None:
        """``target[indices] += contributions`` along axis 0, duplicates summed."""
        if not len(self.unique_targets):
            return
        sums = np.add.reduceat(
            contributions[self.permutation], self.segment_offsets, axis=0
        )
        target[self.unique_targets] += sums


class _LevelGroup:
    """All AND (or all OR) nodes sharing one topological level."""

    __slots__ = (
        "is_and",
        "node_positions",
        "child_indices",
        "offsets",
        "arities",
        "parent_per_edge",
        "scatter",
    )

    def __init__(self, is_and: bool, node_positions: List[int], children: List[List[int]]):
        self.is_and = is_and
        self.node_positions = np.asarray(node_positions, dtype=np.int64)
        self.arities = np.asarray([len(c) for c in children], dtype=np.int64)
        flat: List[int] = []
        offsets: List[int] = []
        cursor = 0
        for child_list in children:
            offsets.append(cursor)
            flat.extend(child_list)
            cursor += len(child_list)
        self.child_indices = np.asarray(flat, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        # Absolute node position of each edge's parent, for direct gathers in
        # the downward pass.
        self.parent_per_edge = np.repeat(self.node_positions, self.arities)
        self.scatter = _ScatterPlan(self.child_indices)


class ArithmeticCircuit:
    """A flattened, topologically ordered, vectorised arithmetic circuit.

    Evaluation reuses per-batch-size scratch buffers held on the instance,
    so a circuit object is stateful and not safe for concurrent evaluation
    from multiple threads.
    """

    def __init__(self, root: NNFNode, num_vars: int):
        self.num_vars = int(num_vars)
        nodes = topological_nodes(root)
        index_of: Dict[int, int] = {node.node_id: i for i, node in enumerate(nodes)}
        self.root_index = index_of[root.node_id]
        self.num_nodes = len(nodes)

        self.node_types: List[int] = []
        self.literals: List[int] = []
        self.children: List[List[int]] = []
        levels = np.zeros(self.num_nodes, dtype=np.int64)

        literal_positions: List[int] = []
        literal_vars: List[int] = []
        literal_signs: List[int] = []
        true_positions: List[int] = []
        false_positions: List[int] = []

        for position, node in enumerate(nodes):
            if isinstance(node, FalseNode):
                self.node_types.append(NODE_FALSE)
                self.literals.append(0)
                self.children.append([])
                false_positions.append(position)
            elif isinstance(node, TrueNode):
                self.node_types.append(NODE_TRUE)
                self.literals.append(0)
                self.children.append([])
                true_positions.append(position)
            elif isinstance(node, LiteralNode):
                self.node_types.append(NODE_LITERAL)
                self.literals.append(node.literal)
                self.children.append([])
                literal_positions.append(position)
                literal_vars.append(abs(node.literal))
                literal_signs.append(1 if node.literal > 0 else 0)
            elif isinstance(node, (AndNode, OrNode)):
                child_positions = [index_of[c.node_id] for c in node.children()]
                self.node_types.append(NODE_AND if isinstance(node, AndNode) else NODE_OR)
                self.literals.append(0)
                self.children.append(child_positions)
                levels[position] = 1 + max(levels[c] for c in child_positions)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown NNF node type: {type(node)}")

        self._literal_positions = np.asarray(literal_positions, dtype=np.int64)
        self._literal_vars = np.asarray(literal_vars, dtype=np.int64)
        self._literal_signs = np.asarray(literal_signs, dtype=np.int64)
        self._true_positions = np.asarray(true_positions, dtype=np.int64)
        self._false_positions = np.asarray(false_positions, dtype=np.int64)
        # Flattened (var, sign) slot per literal leaf, for the downward scatter.
        self._literal_scatter = _ScatterPlan(
            self._literal_vars * 2 + self._literal_signs
        )

        # Group internal nodes by (level, type) for vectorised passes.
        grouped: Dict[Tuple[int, int], Tuple[List[int], List[List[int]]]] = {}
        for position in range(self.num_nodes):
            node_type = self.node_types[position]
            if node_type not in (NODE_AND, NODE_OR):
                continue
            key = (int(levels[position]), node_type)
            bucket = grouped.setdefault(key, ([], []))
            bucket[0].append(position)
            bucket[1].append(self.children[position])
        self._groups: List[_LevelGroup] = [
            _LevelGroup(node_type == NODE_AND, positions, children)
            for (level, node_type), (positions, children) in sorted(grouped.items())
        ]

        # Per-batch-size scratch arrays (small LRU), managed by _workspace_for.
        self._workspaces: "OrderedDict[int, Dict[str, np.ndarray]]" = OrderedDict()

    # ------------------------------------------------------------------
    # Structural metrics (used by Figure 6 / Table 4 / Table 6 experiments)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return sum(len(c) for c in self.children)

    @property
    def num_literal_leaves(self) -> int:
        return len(self._literal_positions)

    def size_bytes(self) -> int:
        """Approximate serialized size (length of the c2d-style .nnf text)."""
        return len(self.to_nnf_text().encode("utf-8"))

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "literal_leaves": self.num_literal_leaves,
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def default_literal_values(self) -> np.ndarray:
        """Array of literal values, all ones: shape (num_vars + 1, 2).

        Index ``[v, 1]`` holds the value of literal ``+v`` and ``[v, 0]`` the
        value of ``-v``; row 0 is unused.
        """
        return np.ones((self.num_vars + 1, 2), dtype=complex)

    def _workspace_for(self, batch: int) -> Dict[str, np.ndarray]:
        """Node-sized scratch arrays for a batch of ``batch`` queries.

        The ``(num_nodes, B)`` value/gradient arrays dominate the allocation
        cost of a pass; they are cached per batch size (a small LRU, so a
        chunked query's trailing partial chunk or an interleaved Gibbs batch
        does not evict the hot buffer) and the hot loops (variational
        re-binding, Gibbs sweeps, chunked state-vector reconstruction) reuse
        the same buffers call after call.  The gradients buffer is allocated
        lazily so upward-only callers (amplitude queries, state-vector
        chunks) pay for one buffer, not two.
        """
        workspace = self._workspaces.get(batch)
        if workspace is None:
            workspace = {"values": np.empty((self.num_nodes, batch), dtype=complex)}
            self._workspaces[batch] = workspace
            while len(self._workspaces) > 3:
                self._workspaces.popitem(last=False)
        else:
            self._workspaces.move_to_end(batch)
        return workspace

    def _gradients_buffer(self, batch: int) -> np.ndarray:
        workspace = self._workspace_for(batch)
        gradients = workspace.get("gradients")
        if gradients is None:
            gradients = np.empty((self.num_nodes, batch), dtype=complex)
            workspace["gradients"] = gradients
        return gradients

    @staticmethod
    def _as_batch(literal_values: np.ndarray) -> np.ndarray:
        literal_values = np.asarray(literal_values)
        if literal_values.ndim != 3:
            raise ValueError(
                "batched literal values must have shape (B, num_vars + 1, 2); "
                f"got shape {literal_values.shape}"
            )
        return literal_values

    def _upward_batch(
        self, literal_values: np.ndarray, values: np.ndarray
    ) -> List[Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]]:
        """Bottom-up pass over a ``(B, num_vars + 1, 2)`` binding batch.

        Fills the ``(num_nodes, B)`` ``values`` array in place and returns the
        per-AND-group zero bookkeeping needed by the downward pass: the zero
        counts and zero-masked products per node, plus the per-edge child zero
        mask and the gathered child values with zeros replaced by one (reused
        by the downward pass as a division-safe denominator).
        """
        values.fill(0.0)
        if len(self._true_positions):
            values[self._true_positions] = 1.0
        if len(self._literal_positions):
            values[self._literal_positions] = literal_values[
                :, self._literal_vars, self._literal_signs
            ].T

        and_bookkeeping: List[
            Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
        ] = []
        for group in self._groups:
            gathered = values[group.child_indices]
            if group.is_and:
                zero_mask = gathered == 0
                zero_counts = np.add.reduceat(
                    zero_mask.astype(np.int32), group.offsets, axis=0
                )
                gathered[zero_mask] = 1.0  # fresh gather copy; safe to clean in place
                nonzero_product = np.multiply.reduceat(gathered, group.offsets, axis=0)
                values[group.node_positions] = np.where(zero_counts > 0, 0.0 + 0j, nonzero_product)
                and_bookkeeping.append((zero_counts, nonzero_product, zero_mask, gathered))
            else:
                values[group.node_positions] = np.add.reduceat(gathered, group.offsets, axis=0)
                and_bookkeeping.append(None)
        return and_bookkeeping

    def evaluate_batch(self, literal_values: np.ndarray) -> np.ndarray:
        """Batched upward pass.

        ``literal_values`` has shape ``(B, num_vars + 1, 2)``; returns the
        ``(B,)`` array of weighted model counts.  Cost is one set of NumPy
        calls per level regardless of ``B``.
        """
        literal_values = self._as_batch(literal_values)
        batch = literal_values.shape[0]
        if batch == 0:
            return np.zeros(0, dtype=complex)
        values = self._workspace_for(batch)["values"]
        self._upward_batch(literal_values, values)
        return values[self.root_index].copy()

    def evaluate_with_derivatives_batch(
        self, literal_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched upward + downward pass.

        Returns ``(root_values, derivatives)`` where ``root_values`` has
        shape ``(B,)`` and ``derivatives`` has the same shape as
        ``literal_values`` and holds the partial derivative of each root with
        respect to each literal leaf value.
        """
        literal_values = self._as_batch(literal_values)
        batch = literal_values.shape[0]
        if batch == 0:
            return np.zeros(0, dtype=complex), np.zeros_like(literal_values, dtype=complex)
        values = self._workspace_for(batch)["values"]
        gradients = self._gradients_buffer(batch)
        and_bookkeeping = self._upward_batch(literal_values, values)

        gradients.fill(0.0)
        gradients[self.root_index] = 1.0
        for group_index in range(len(self._groups) - 1, -1, -1):
            group = self._groups[group_index]
            per_edge_gradient = gradients[group.parent_per_edge]
            if group.is_and:
                zero_counts, nonzero_product, zero_mask, cleaned_children = (
                    and_bookkeeping[group_index]
                )
                zero_counts_per_edge = np.repeat(zero_counts, group.arities, axis=0)
                nonzero_product_per_edge = np.repeat(nonzero_product, group.arities, axis=0)
                # Product of the node's *other* children:
                #  - no zero children: nonzero_product / child_value
                #  - exactly one zero child: nonzero_product for that child, 0 for others
                #  - two or more zero children: 0 everywhere.
                # ``cleaned_children`` has the zeros replaced by one, so the
                # division needs no masking; masked slots are discarded below.
                ratio = nonzero_product_per_edge / cleaned_children
                others_product = np.where(
                    zero_counts_per_edge == 0,
                    ratio,
                    np.where(
                        (zero_counts_per_edge == 1) & zero_mask,
                        nonzero_product_per_edge,
                        0.0 + 0j,
                    ),
                )
                contributions = per_edge_gradient * others_product
            else:
                contributions = per_edge_gradient
            group.scatter.add_to(gradients, contributions)

        # Scatter leaf gradients back to (var, sign) slots; duplicate literal
        # leaves for the same (var, sign) accumulate, matching the scalar path.
        leaf_derivatives = np.zeros(((self.num_vars + 1) * 2, batch), dtype=complex)
        if len(self._literal_positions):
            self._literal_scatter.add_to(leaf_derivatives, gradients[self._literal_positions])
        derivatives = np.ascontiguousarray(
            leaf_derivatives.reshape(self.num_vars + 1, 2, batch).transpose(2, 0, 1)
        )
        return values[self.root_index].copy(), derivatives

    def evaluate(self, literal_values: np.ndarray) -> complex:
        """Upward pass: the weighted model count under ``literal_values``.

        A ``B = 1`` wrapper over :meth:`evaluate_batch`.
        """
        roots = self.evaluate_batch(np.asarray(literal_values)[np.newaxis])
        return complex(roots[0])

    def evaluate_with_derivatives(
        self, literal_values: np.ndarray
    ) -> Tuple[complex, np.ndarray]:
        """Upward + downward pass.

        Returns ``(root_value, derivatives)`` where ``derivatives`` has the
        same shape as ``literal_values`` and holds the partial derivative of
        the root with respect to each literal leaf value.  A ``B = 1``
        wrapper over :meth:`evaluate_with_derivatives_batch`.
        """
        roots, derivatives = self.evaluate_with_derivatives_batch(
            np.asarray(literal_values)[np.newaxis]
        )
        return complex(roots[0]), derivatives[0]

    # ------------------------------------------------------------------
    # Pickling (persistent compiled-circuit cache)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict:
        """Pickle everything but the per-batch-size scratch buffers.

        Workspaces are pure caches (and can be hundreds of megabytes for
        large batch sizes); a restored circuit re-grows them lazily on first
        evaluation.
        """
        state = dict(self.__dict__)
        state["_workspaces"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._workspaces = OrderedDict()

    # ------------------------------------------------------------------
    # Serialisation (c2d-compatible .nnf text)
    # ------------------------------------------------------------------
    def to_nnf_text(self) -> str:
        lines = [f"nnf {self.num_nodes} {self.num_edges} {self.num_vars}"]
        for index in range(self.num_nodes):
            node_type = self.node_types[index]
            if node_type == NODE_FALSE:
                lines.append("O 0 0")
            elif node_type == NODE_TRUE:
                lines.append("A 0")
            elif node_type == NODE_LITERAL:
                lines.append(f"L {self.literals[index]}")
            elif node_type == NODE_AND:
                children = self.children[index]
                lines.append("A " + " ".join(str(c) for c in [len(children)] + children))
            else:
                children = self.children[index]
                lines.append("O 0 " + " ".join(str(c) for c in [len(children)] + children))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"ArithmeticCircuit(nodes={self.num_nodes}, edges={self.num_edges}, vars={self.num_vars})"
