"""Knowledge compilation: CNF -> d-DNNF -> arithmetic circuits."""

from .arithmetic_circuit import ArithmeticCircuit
from .compiler import CompilationStats, KnowledgeCompiler, split_components, unit_propagate
from .nnf import (
    AndNode,
    FalseNode,
    LiteralNode,
    NNFManager,
    NNFNode,
    OrNode,
    TrueNode,
    check_decomposability,
    check_smoothness,
    count_nodes_and_edges,
    evaluate_boolean,
    topological_nodes,
    variables_of,
)
from .queries import (
    NoiseExplanation,
    SensitivityReport,
    most_probable_explanation,
    sensitivity_analysis,
)
from .transform import condition, forget, smooth

__all__ = [
    "ArithmeticCircuit",
    "CompilationStats",
    "KnowledgeCompiler",
    "NNFManager",
    "NNFNode",
    "TrueNode",
    "FalseNode",
    "LiteralNode",
    "AndNode",
    "OrNode",
    "check_decomposability",
    "check_smoothness",
    "count_nodes_and_edges",
    "evaluate_boolean",
    "topological_nodes",
    "variables_of",
    "condition",
    "forget",
    "smooth",
    "split_components",
    "unit_propagate",
    "NoiseExplanation",
    "SensitivityReport",
    "most_probable_explanation",
    "sensitivity_analysis",
]
