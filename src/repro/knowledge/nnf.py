"""Negation normal form (NNF) node structures with hash-consing.

The knowledge compiler produces *deterministic, decomposable* NNF (d-DNNF):

* decomposable — the children of every AND node mention disjoint variables,
* deterministic — the children of every OR node are mutually inconsistent.

These properties make weighted model counting a single bottom-up pass, which
is what turns the compiled representation into the paper's arithmetic
circuit.  Nodes are hash-consed through :class:`NNFManager` so structurally
identical sub-circuits are shared (the DAG form in Figure 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


class NNFNode:
    """Base class for NNF nodes.  Instances are created via :class:`NNFManager`."""

    __slots__ = ("node_id",)

    def __init__(self, node_id: int):
        self.node_id = node_id

    def children(self) -> Tuple["NNFNode", ...]:
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id})"


class TrueNode(NNFNode):
    __slots__ = ()


class FalseNode(NNFNode):
    __slots__ = ()


class LiteralNode(NNFNode):
    __slots__ = ("literal",)

    def __init__(self, node_id: int, literal: int):
        super().__init__(node_id)
        self.literal = literal

    @property
    def variable(self) -> int:
        return abs(self.literal)

    @property
    def positive(self) -> bool:
        return self.literal > 0

    def __repr__(self) -> str:
        return f"LiteralNode({self.literal})"


class AndNode(NNFNode):
    __slots__ = ("_children",)

    def __init__(self, node_id: int, children: Tuple[NNFNode, ...]):
        super().__init__(node_id)
        self._children = children

    def children(self) -> Tuple[NNFNode, ...]:
        return self._children


class OrNode(NNFNode):
    __slots__ = ("_children", "decision_variable")

    def __init__(self, node_id: int, children: Tuple[NNFNode, ...], decision_variable: int = 0):
        super().__init__(node_id)
        self._children = children
        self.decision_variable = decision_variable

    def children(self) -> Tuple[NNFNode, ...]:
        return self._children


class NNFManager:
    """Creates NNF nodes with structural sharing (a unique table)."""

    def __init__(self):
        self._next_id = 0
        self._true: Optional[TrueNode] = None
        self._false: Optional[FalseNode] = None
        self._literals: Dict[int, LiteralNode] = {}
        self._ands: Dict[Tuple[int, ...], AndNode] = {}
        self._ors: Dict[Tuple[Tuple[int, ...], int], OrNode] = {}

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # ------------------------------------------------------------------
    def true(self) -> TrueNode:
        if self._true is None:
            self._true = TrueNode(self._new_id())
        return self._true

    def false(self) -> FalseNode:
        if self._false is None:
            self._false = FalseNode(self._new_id())
        return self._false

    def literal(self, literal: int) -> LiteralNode:
        if literal == 0:
            raise ValueError("literal cannot be zero")
        node = self._literals.get(literal)
        if node is None:
            node = LiteralNode(self._new_id(), literal)
            self._literals[literal] = node
        return node

    def conjoin(self, children: Iterable[NNFNode]) -> NNFNode:
        """AND node with simplification: drop TRUE children, collapse on FALSE."""
        flat: List[NNFNode] = []
        for child in children:
            if isinstance(child, FalseNode):
                return self.false()
            if isinstance(child, TrueNode):
                continue
            if isinstance(child, AndNode):
                flat.extend(child.children())
            else:
                flat.append(child)
        if not flat:
            return self.true()
        if len(flat) == 1:
            return flat[0]
        key = tuple(sorted({c.node_id for c in flat}))
        unique = {c.node_id: c for c in flat}
        node = self._ands.get(key)
        if node is None:
            node = AndNode(self._new_id(), tuple(unique[i] for i in key))
            self._ands[key] = node
        return node

    def disjoin(self, children: Iterable[NNFNode], decision_variable: int = 0) -> NNFNode:
        """OR node with simplification: drop FALSE children, collapse on TRUE."""
        flat: List[NNFNode] = []
        for child in children:
            if isinstance(child, TrueNode):
                return self.true()
            if isinstance(child, FalseNode):
                continue
            flat.append(child)
        if not flat:
            return self.false()
        if len(flat) == 1:
            return flat[0]
        key = (tuple(sorted({c.node_id for c in flat})), decision_variable)
        unique = {c.node_id: c for c in flat}
        node = self._ors.get(key)
        if node is None:
            node = OrNode(self._new_id(), tuple(unique[i] for i in key[0]), decision_variable)
            self._ors[key] = node
        return node


# ----------------------------------------------------------------------
# DAG traversal helpers
# ----------------------------------------------------------------------
def topological_nodes(root: NNFNode) -> List[NNFNode]:
    """All reachable nodes, children before parents (iterative DFS)."""
    order: List[NNFNode] = []
    visited: Set[int] = set()
    stack: List[Tuple[NNFNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node.node_id in visited:
            continue
        visited.add(node.node_id)
        stack.append((node, True))
        for child in node.children():
            if child.node_id not in visited:
                stack.append((child, False))
    return order


def count_nodes_and_edges(root: NNFNode) -> Tuple[int, int]:
    nodes = topological_nodes(root)
    edges = sum(len(node.children()) for node in nodes)
    return len(nodes), edges


def variables_of(root: NNFNode) -> Set[int]:
    return {
        node.variable for node in topological_nodes(root) if isinstance(node, LiteralNode)
    }


def mentioned_variables_per_node(root: NNFNode) -> Dict[int, FrozenSet[int]]:
    """For each node id, the set of variables mentioned in its sub-DAG."""
    mentioned: Dict[int, FrozenSet[int]] = {}
    for node in topological_nodes(root):
        if isinstance(node, LiteralNode):
            mentioned[node.node_id] = frozenset({node.variable})
        elif isinstance(node, (AndNode, OrNode)):
            combined: Set[int] = set()
            for child in node.children():
                combined |= mentioned[child.node_id]
            mentioned[node.node_id] = frozenset(combined)
        else:
            mentioned[node.node_id] = frozenset()
    return mentioned


def check_decomposability(root: NNFNode) -> bool:
    """True if every AND node's children mention pairwise disjoint variables."""
    mentioned = mentioned_variables_per_node(root)
    for node in topological_nodes(root):
        if isinstance(node, AndNode):
            seen: Set[int] = set()
            for child in node.children():
                child_vars = mentioned[child.node_id]
                if seen & child_vars:
                    return False
                seen |= child_vars
    return True


def check_smoothness(root: NNFNode) -> bool:
    """True if every OR node's children mention identical variable sets."""
    mentioned = mentioned_variables_per_node(root)
    for node in topological_nodes(root):
        if isinstance(node, OrNode):
            sets = [mentioned[child.node_id] for child in node.children()]
            if any(s != sets[0] for s in sets[1:]):
                return False
    return True


def enumerate_models(root: NNFNode, variables: Sequence[int]) -> List[Dict[int, bool]]:
    """Brute-force model enumeration of the NNF (testing only, small inputs)."""
    variables = list(variables)
    models = []
    for mask in range(2 ** len(variables)):
        assignment = {v: bool((mask >> i) & 1) for i, v in enumerate(variables)}
        if evaluate_boolean(root, assignment):
            models.append(assignment)
    return models


def evaluate_boolean(root: NNFNode, assignment: Dict[int, bool]) -> bool:
    """Evaluate the NNF as a Boolean function under a complete assignment."""
    values: Dict[int, bool] = {}
    for node in topological_nodes(root):
        if isinstance(node, TrueNode):
            values[node.node_id] = True
        elif isinstance(node, FalseNode):
            values[node.node_id] = False
        elif isinstance(node, LiteralNode):
            values[node.node_id] = assignment[node.variable] == node.positive
        elif isinstance(node, AndNode):
            values[node.node_id] = all(values[c.node_id] for c in node.children())
        elif isinstance(node, OrNode):
            values[node.node_id] = any(values[c.node_id] for c in node.children())
    return values[root.node_id]
