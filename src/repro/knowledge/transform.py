"""Transformations on compiled NNF circuits.

Three transforms matter to the simulation pipeline:

* :func:`forget` — existential quantification of variables.  The paper calls
  this *qubit state elision*: intermediate qubit-state indicator variables
  are summed over (the Feynman path sum), which both shrinks the circuit and
  removes the cost of computing intermediate amplitudes.
* :func:`smooth` — make every OR node's children mention the same variables,
  a prerequisite for evaluating weighted model counts with a single
  bottom-up pass.
* :func:`condition` — fix literals to constants (used by tests and by the
  most-probable-explanation queries).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from .nnf import (
    AndNode,
    FalseNode,
    LiteralNode,
    NNFManager,
    NNFNode,
    OrNode,
    TrueNode,
    mentioned_variables_per_node,
    topological_nodes,
)


def _rebuild(
    manager: NNFManager,
    root: NNFNode,
    leaf_map: Dict[int, NNFNode],
) -> NNFNode:
    """Rebuild the DAG bottom-up, substituting leaves via ``leaf_map``."""
    rebuilt: Dict[int, NNFNode] = {}
    for node in topological_nodes(root):
        if node.node_id in leaf_map:
            rebuilt[node.node_id] = leaf_map[node.node_id]
        elif isinstance(node, (TrueNode, FalseNode, LiteralNode)):
            rebuilt[node.node_id] = node
        elif isinstance(node, AndNode):
            rebuilt[node.node_id] = manager.conjoin(rebuilt[c.node_id] for c in node.children())
        elif isinstance(node, OrNode):
            rebuilt[node.node_id] = manager.disjoin(
                (rebuilt[c.node_id] for c in node.children()),
                decision_variable=node.decision_variable,
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown NNF node type: {type(node)}")
    return rebuilt[root.node_id]


def forget(manager: NNFManager, root: NNFNode, variables: Iterable[int]) -> NNFNode:
    """Existentially quantify ``variables`` out of a decomposable NNF.

    Literal leaves over the forgotten variables are replaced by TRUE; the
    manager's simplification rules then fold away trivial AND/OR structure.
    On decomposable circuits this computes exactly ∃X.f, and when evaluated
    as an arithmetic circuit the forgotten variables are summed over.
    """
    forget_set = set(variables)
    leaf_map: Dict[int, NNFNode] = {}
    for node in topological_nodes(root):
        if isinstance(node, LiteralNode) and node.variable in forget_set:
            leaf_map[node.node_id] = manager.true()
    if not leaf_map:
        return root
    return _rebuild(manager, root, leaf_map)


def condition(manager: NNFManager, root: NNFNode, literals: Iterable[int]) -> NNFNode:
    """Condition the circuit on the given literals (set them true)."""
    fixed = set(literals)
    leaf_map: Dict[int, NNFNode] = {}
    for node in topological_nodes(root):
        if isinstance(node, LiteralNode):
            if node.literal in fixed:
                leaf_map[node.node_id] = manager.true()
            elif -node.literal in fixed:
                leaf_map[node.node_id] = manager.false()
    if not leaf_map:
        return root
    return _rebuild(manager, root, leaf_map)


def smooth(manager: NNFManager, root: NNFNode, variables: Sequence[int]) -> NNFNode:
    """Return an equivalent smooth circuit over ``variables``.

    Every OR child is multiplied by "free" (v OR ¬v) gadgets for the
    variables its siblings mention but it does not, and the root is
    multiplied by gadgets for variables missing from the whole circuit.
    Smoothness makes the bottom-up weighted-model-count pass exact.
    """
    variables = list(variables)
    mentioned = mentioned_variables_per_node(root)

    def free_gadget(variable: int) -> NNFNode:
        return manager.disjoin(
            [manager.literal(variable), manager.literal(-variable)],
            decision_variable=variable,
        )

    rebuilt: Dict[int, NNFNode] = {}
    rebuilt_vars: Dict[int, FrozenSet[int]] = {}

    for node in topological_nodes(root):
        if isinstance(node, (TrueNode, FalseNode)):
            rebuilt[node.node_id] = node
            rebuilt_vars[node.node_id] = frozenset()
        elif isinstance(node, LiteralNode):
            rebuilt[node.node_id] = node
            rebuilt_vars[node.node_id] = frozenset({node.variable})
        elif isinstance(node, AndNode):
            rebuilt[node.node_id] = manager.conjoin(rebuilt[c.node_id] for c in node.children())
            combined: Set[int] = set()
            for child in node.children():
                combined |= rebuilt_vars[child.node_id]
            rebuilt_vars[node.node_id] = frozenset(combined)
        elif isinstance(node, OrNode):
            target: Set[int] = set()
            for child in node.children():
                target |= rebuilt_vars[child.node_id]
            new_children: List[NNFNode] = []
            for child in node.children():
                missing = target - rebuilt_vars[child.node_id]
                padded = rebuilt[child.node_id]
                if missing:
                    padded = manager.conjoin(
                        [padded] + [free_gadget(v) for v in sorted(missing)]
                    )
                new_children.append(padded)
            rebuilt[node.node_id] = manager.disjoin(
                new_children, decision_variable=node.decision_variable
            )
            rebuilt_vars[node.node_id] = frozenset(target)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown NNF node type: {type(node)}")

    result = rebuilt[root.node_id]
    covered = rebuilt_vars[root.node_id]
    missing_at_root = [v for v in variables if v not in covered]
    if missing_at_root:
        result = manager.conjoin([result] + [free_gadget(v) for v in missing_at_root])
    return result
