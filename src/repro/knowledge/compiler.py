"""Exhaustive DPLL knowledge compiler: CNF -> deterministic decomposable NNF.

This is the reproduction's stand-in for the c2d compiler used by the paper.
It performs exhaustive DPLL search with

* unit propagation,
* connected-component decomposition (decomposable AND nodes),
* formula caching (hash-consed sub-results shared across branches), and
* a static decision-variable order derived from the CNF primal graph
  (min-fill / min-degree / lexicographic / hypergraph-partitioning, the same
  menu of orderings the paper discusses for qubit-state elimination).

The result is a decision-DNNF whose OR nodes are deterministic (each decides
one variable), which after smoothing evaluates amplitudes by a single
bottom-up pass — the arithmetic circuit of the paper's Figure 5.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..bayesnet.elimination_order import elimination_order
from ..cnf.formula import CNF, Clause
from .nnf import NNFManager, NNFNode

ClauseSet = FrozenSet[Clause]


class CompilationStats:
    """Counters describing one compilation run."""

    def __init__(self):
        self.decisions = 0
        self.cache_hits = 0
        self.component_splits = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "component_splits": self.component_splits,
        }

    def __repr__(self) -> str:
        return f"CompilationStats({self.as_dict()})"


class KnowledgeCompiler:
    """Compiles CNF formulas to deterministic decomposable NNF."""

    def __init__(self, order_method: str = "min_fill"):
        self.order_method = order_method

    # ------------------------------------------------------------------
    def compile(
        self,
        cnf: CNF,
        manager: Optional[NNFManager] = None,
        variable_order: Optional[Sequence[int]] = None,
        decision_variables: Optional[Sequence[int]] = None,
    ) -> Tuple[NNFNode, NNFManager, CompilationStats]:
        """Compile ``cnf`` into a deterministic decomposable NNF.

        Args:
            cnf: The formula to compile.
            manager: NNF node manager to build into (a fresh one when
                omitted); passing one shares hash-consed nodes across
                compilations.
            variable_order: Explicit static decision order; defaults to
                :meth:`decision_order` (the configured elimination
                heuristic).  Variables missing from the order rank last.
            decision_variables: Restricts branching to the given variables
                (the quantum encoding only ever needs to branch on
                qubit-state and noise-branch bits — weight variables are
                always implied by unit propagation once their row is
                decided, so excluding them shrinks the search
                dramatically).  If a component contains none of them the
                compiler falls back to branching on any of its variables.

        Returns:
            ``(root, manager, stats)``: the d-DNNF root node, the manager
            owning it, and :class:`CompilationStats` counters for the run.
        """
        manager = manager or NNFManager()
        stats = CompilationStats()
        if variable_order is None:
            variable_order = self.decision_order(cnf)
        order_index: Dict[int, int] = {var: i for i, var in enumerate(variable_order)}
        # Variables missing from the order (e.g. isolated) go last.
        next_rank = len(order_index)
        for var in range(1, cnf.num_vars + 1):
            if var not in order_index:
                order_index[var] = next_rank
                next_rank += 1
        decision_set = set(decision_variables) if decision_variables is not None else None

        clauses: ClauseSet = frozenset(tuple(sorted(set(c))) for c in cnf.clauses)
        cache: Dict[ClauseSet, NNFNode] = {}

        previous_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(previous_limit, 100_000))
        try:
            root = self._compile(clauses, manager, cache, order_index, stats, decision_set)
        finally:
            sys.setrecursionlimit(previous_limit)
        return root, manager, stats

    def decision_order(self, cnf: CNF) -> List[int]:
        """Static decision order over the CNF's variables."""
        return list(elimination_order(cnf.primal_graph(), self.order_method))

    # ------------------------------------------------------------------
    def _compile(
        self,
        clauses: ClauseSet,
        manager: NNFManager,
        cache: Dict[ClauseSet, NNFNode],
        order_index: Dict[int, int],
        stats: CompilationStats,
        decision_set: Optional[Set[int]],
    ) -> NNFNode:
        cached = cache.get(clauses)
        if cached is not None:
            stats.cache_hits += 1
            return cached

        simplified, implied, conflict = unit_propagate(clauses)
        if conflict:
            cache[clauses] = manager.false()
            return manager.false()

        literal_nodes = [manager.literal(lit) for lit in sorted(implied, key=abs)]

        if not simplified:
            node = manager.conjoin(literal_nodes)
            cache[clauses] = node
            return node

        components = split_components(simplified)
        if len(components) > 1:
            stats.component_splits += 1

        component_nodes: List[NNFNode] = []
        for component in components:
            component_nodes.append(
                self._compile_component(component, manager, cache, order_index, stats, decision_set)
            )

        node = manager.conjoin(literal_nodes + component_nodes)
        cache[clauses] = node
        return node

    def _compile_component(
        self,
        component: ClauseSet,
        manager: NNFManager,
        cache: Dict[ClauseSet, NNFNode],
        order_index: Dict[int, int],
        stats: CompilationStats,
        decision_set: Optional[Set[int]],
    ) -> NNFNode:
        cached = cache.get(component)
        if cached is not None:
            stats.cache_hits += 1
            return cached

        variables = {abs(l) for clause in component for l in clause}
        candidates = variables
        if decision_set is not None:
            preferred = variables & decision_set
            if preferred:
                candidates = preferred
        decision = min(candidates, key=lambda v: (order_index.get(v, v), v))
        stats.decisions += 1

        positive = self._compile(
            component | frozenset({(decision,)}), manager, cache, order_index, stats, decision_set
        )
        negative = self._compile(
            component | frozenset({(-decision,)}), manager, cache, order_index, stats, decision_set
        )
        node = manager.disjoin([positive, negative], decision_variable=decision)
        cache[component] = node
        return node


# ----------------------------------------------------------------------
# CNF manipulation helpers (shared with the encoder's simplifier)
# ----------------------------------------------------------------------
def unit_propagate(clauses: Iterable[Clause]) -> Tuple[ClauseSet, Set[int], bool]:
    """Unit propagation to a fixpoint.

    Returns ``(residual_clauses, implied_literals, conflict)``.  The residual
    clauses contain no implied variables and no unit clauses.
    """
    working: List[List[int]] = [list(c) for c in clauses]
    implied: Set[int] = set()
    changed = True
    while changed:
        changed = False
        units = [c[0] for c in working if len(c) == 1]
        if not units:
            break
        for literal in units:
            if -literal in implied:
                return frozenset(), implied, True
            if literal in implied:
                continue
            implied.add(literal)
            changed = True
        new_working: List[List[int]] = []
        for clause in working:
            satisfied = False
            reduced: List[int] = []
            for literal in clause:
                if literal in implied:
                    satisfied = True
                    break
                if -literal in implied:
                    continue
                reduced.append(literal)
            if satisfied:
                continue
            if not reduced:
                return frozenset(), implied, True
            new_working.append(reduced)
        working = new_working
    residual = frozenset(tuple(sorted(set(c))) for c in working)
    return residual, implied, False


def split_components(clauses: ClauseSet) -> List[ClauseSet]:
    """Partition clauses into groups sharing no variables (union-find)."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in clauses:
        variables = [abs(l) for l in clause]
        for var in variables:
            parent.setdefault(var, var)
        for other in variables[1:]:
            union(variables[0], other)

    groups: Dict[int, List[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    return [frozenset(group) for group in groups.values()]
