"""CNF formulas with DIMACS-compatible input/output.

Variables are positive integers; literals are signed integers (DIMACS
convention).  The formula object also tracks human-readable variable names
so compiled artefacts remain debuggable, mirroring the paper's Table 3 where
each clause is interpreted back in terms of qubit states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..atomicio import atomic_write_text

Clause = Tuple[int, ...]


class CNF:
    """A conjunctive-normal-form formula over integer variables."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = int(num_vars)
        self.clauses: List[Clause] = []
        self.var_names: Dict[int, str] = {}
        self.comments: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_var(self, name: str = "") -> int:
        self.num_vars += 1
        if name:
            self.var_names[self.num_vars] = name
        return self.num_vars

    def name_of(self, var: int) -> str:
        return self.var_names.get(var, f"v{var}")

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(dict.fromkeys(int(l) for l in literals))
        if not clause:
            raise ValueError("cannot add an empty clause")
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"literal {literal} out of range (num_vars={self.num_vars})")
        # A clause containing x and ¬x is a tautology; skip it.
        positives = {l for l in clause if l > 0}
        if any(-l in positives for l in clause if l < 0):
            return
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        self.add_clause([literal])

    def add_exactly_one(self, variables: Sequence[int]) -> None:
        """At-least-one plus pairwise at-most-one constraints."""
        variables = list(variables)
        self.add_clause(variables)
        for i in range(len(variables)):
            for j in range(i + 1, len(variables)):
                self.add_clause([-variables[i], -variables[j]])

    def add_comment(self, text: str) -> None:
        self.comments.append(text)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> Set[int]:
        return {abs(l) for clause in self.clauses for l in clause}

    def primal_graph(self) -> Dict[int, Set[int]]:
        """Undirected graph connecting variables that share a clause."""
        adjacency: Dict[int, Set[int]] = {v: set() for v in range(1, self.num_vars + 1)}
        for clause in self.clauses:
            vars_in_clause = [abs(l) for l in clause]
            for i in range(len(vars_in_clause)):
                for j in range(i + 1, len(vars_in_clause)):
                    a, b = vars_in_clause[i], vars_in_clause[j]
                    if a != b:
                        adjacency[a].add(b)
                        adjacency[b].add(a)
        return adjacency

    def stats(self) -> Dict[str, int]:
        return {
            "variables": self.num_vars,
            "clauses": self.num_clauses,
            "literals": sum(len(c) for c in self.clauses),
        }

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"

    # ------------------------------------------------------------------
    # Semantics (for testing on small formulas)
    # ------------------------------------------------------------------
    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        for clause in self.clauses:
            if not any(
                (literal > 0) == assignment.get(abs(literal), False) for literal in clause
            ):
                return False
        return True

    def enumerate_models(self) -> Iterable[Dict[int, bool]]:
        """Brute-force model enumeration (exponential; small formulas only)."""
        variables = sorted(self.variables() | set(range(1, self.num_vars + 1)))
        total = len(variables)
        for mask in range(2 ** total):
            assignment = {
                variable: bool((mask >> position) & 1) for position, variable in enumerate(variables)
            }
            if self.is_satisfied_by(assignment):
                yield assignment

    def model_count(self) -> int:
        return sum(1 for _ in self.enumerate_models())

    # ------------------------------------------------------------------
    # DIMACS I/O
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        lines = [f"c {comment}" for comment in self.comments]
        lines += [f"c var {var} {name}" for var, name in sorted(self.var_names.items())]
        lines.append(f"p cnf {self.num_vars} {self.num_clauses}")
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_dimacs(text: str) -> "CNF":
        cnf = CNF()
        declared_vars = 0
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("c"):
                parts = line.split()
                if len(parts) >= 4 and parts[1] == "var" and parts[2].isdigit():
                    cnf.var_names[int(parts[2])] = " ".join(parts[3:])
                else:
                    cnf.comments.append(line[1:].strip())
                continue
            if line.startswith("p"):
                parts = line.split()
                declared_vars = int(parts[2])
                cnf.num_vars = max(cnf.num_vars, declared_vars)
                continue
            literals = [int(token) for token in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if literals:
                cnf.num_vars = max(cnf.num_vars, max(abs(l) for l in literals))
                cnf.add_clause(literals)
        cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    def write_dimacs(self, path: str) -> None:
        atomic_write_text(path, self.to_dimacs())

    @staticmethod
    def read_dimacs(path: str) -> "CNF":
        with open(path, "r", encoding="utf-8") as handle:
            return CNF.from_dimacs(handle.read())
