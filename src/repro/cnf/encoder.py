"""Bayesian network -> weighted CNF encoder (Section 3.2.1 of the paper).

The encoder separates the *structure* of the quantum circuit from its
numeric parameters:

* every binary network variable (qubit states) becomes one propositional
  variable; multi-valued noise branch selectors are log-encoded over
  ``ceil(log2(cardinality))`` propositional variables;
* conditional-amplitude-table entries that are structurally zero become
  plain clauses forbidding the corresponding assignment;
* entries that are structurally one contribute nothing;
* every other entry gets a dedicated *weight variable* ``P`` constrained to
  be equivalent to the conjunction of its row's literals — the weight value
  itself is supplied later, per simulation run, which is what enables
  re-using the compiled representation across variational iterations.

After encoding, known values (the deterministic initial qubit states) are
absorbed by unit resolution, mirroring the paper's CNF simplification rules.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..bayesnet.network import (
    ENTRY_ONE,
    ENTRY_WEIGHT,
    ENTRY_ZERO,
    BayesianNetwork,
    BayesNode,
)
from ..circuits.parameters import ParamResolver
from .formula import CNF
from .simplify import unit_propagate_cnf


def bits_for_cardinality(cardinality: int) -> int:
    """Number of propositional variables used to log-encode a node."""
    if cardinality < 2:
        raise ValueError("nodes must have cardinality at least 2")
    return max(1, (cardinality - 1).bit_length())


class WeightReference:
    """Identifies the CAT entry whose numeric value a weight variable carries."""

    def __init__(self, node_name: str, entry_index: Tuple[int, ...]):
        self.node_name = node_name
        self.entry_index = entry_index

    def __repr__(self) -> str:
        return f"WeightReference({self.node_name!r}, {self.entry_index})"


class WeightEmitter:
    """Vectorized literal-weight emission for one :class:`CNFEncoding`.

    Re-binding parameters is the per-query hot path of a compile-once sweep:
    every sweep point evaluates each node's conditional amplitude table once
    and scatters entries into the weight-variable slots.  The emitter
    precomputes, per table-contributing node, the flat entry indices and the
    destination positions (into the sorted weight-variable order), so one
    :meth:`emit` call is a table evaluation plus two fancy-indexed gathers —
    no per-entry Python loop and no intermediate dict.

    Built lazily by :meth:`CNFEncoding.weight_emitter` and cached there.
    """

    def __init__(self, encoding: "CNFEncoding"):
        self._network = encoding.network
        order = encoding.weight_variables
        position_of = {variable: index for index, variable in enumerate(order)}
        self.num_weights = len(order)

        # (node, flat table indices, destination positions) per node with at
        # least one free weight variable.
        by_node: Dict[str, Tuple[List[int], List[int]]] = {}
        # Forced-true weight variables multiply into the constant factor.
        forced_by_node: Dict[str, List[int]] = {}
        shapes: Dict[str, Tuple[int, ...]] = {}

        def flat_index(reference: WeightReference) -> int:
            shape = shapes.get(reference.node_name)
            if shape is None:
                node = self._network.node(reference.node_name)
                shape = node.expected_shape(self._network)
                shapes[reference.node_name] = shape
            return int(np.ravel_multi_index(reference.entry_index, shape))

        # Every weight variable gets a value slot (matching :meth:`weights`,
        # including variables fixed by unit propagation); forced-true ones
        # additionally multiply into the constant factor.
        for variable, reference in sorted(encoding.weight_refs.items()):
            if variable in encoding.forced_literals:
                forced_by_node.setdefault(reference.node_name, []).append(flat_index(reference))
            flats, destinations = by_node.setdefault(reference.node_name, ([], []))
            flats.append(flat_index(reference))
            destinations.append(position_of[variable])

        self._plans: List[Tuple[str, np.ndarray, np.ndarray]] = [
            (name, np.asarray(flats, dtype=np.int64), np.asarray(destinations, dtype=np.int64))
            for name, (flats, destinations) in by_node.items()
        ]
        self._forced_plans: List[Tuple[str, np.ndarray]] = [
            (name, np.asarray(flats, dtype=np.int64)) for name, flats in forced_by_node.items()
        ]

    def emit(self, resolver: Optional[ParamResolver] = None) -> Tuple[np.ndarray, complex]:
        """Return ``(values, constant_factor)`` under ``resolver``.

        ``values`` is aligned with :attr:`CNFEncoding.weight_variables`;
        ``constant_factor`` is the product of weights forced true by CNF
        simplification.  Each contributing table is evaluated exactly once.

        Raises whatever the underlying table builders raise for unbound
        symbols (``KeyError``/``ValueError``).
        """
        values = np.empty(self.num_weights, dtype=complex)
        tables: Dict[str, np.ndarray] = {}

        def table_of(name: str) -> np.ndarray:
            table = tables.get(name)
            if table is None:
                table = np.ascontiguousarray(self._network.node(name).table(resolver))
                tables[name] = table
            return table

        for name, flats, destinations in self._plans:
            values[destinations] = table_of(name).ravel()[flats]
        constant = 1.0 + 0j
        for name, flats in self._forced_plans:
            constant *= complex(np.prod(table_of(name).ravel()[flats]))
        return values, constant


class CNFEncoding:
    """The result of encoding a Bayesian network into weighted CNF."""

    def __init__(
        self,
        network: BayesianNetwork,
        cnf: CNF,
        node_bits: Dict[str, List[int]],
        weight_refs: Dict[int, WeightReference],
        forced_literals: Set[int],
    ):
        self.network = network
        self.cnf = cnf
        self.node_bits = node_bits
        self.weight_refs = weight_refs
        self.forced_literals = forced_literals
        self._emitter: Optional[WeightEmitter] = None

    # ------------------------------------------------------------------
    def bits_of(self, node_name: str) -> List[int]:
        """The propositional variables encoding ``node_name`` (MSB first)."""
        return list(self.node_bits[node_name])

    def value_literals(self, node_name: str, value: int) -> List[int]:
        """Literals asserting ``node_name == value``."""
        bits = self.node_bits[node_name]
        width = len(bits)
        if not 0 <= value < 2 ** width:
            raise ValueError(f"value {value} out of range for node {node_name}")
        literals = []
        for position, variable in enumerate(bits):
            bit = (value >> (width - 1 - position)) & 1
            literals.append(variable if bit else -variable)
        return literals

    def forced_value(self, variable: int) -> Optional[bool]:
        """The truth value forced by unit resolution, or None if still free."""
        if variable in self.forced_literals:
            return True
        if -variable in self.forced_literals:
            return False
        return None

    @property
    def weight_variables(self) -> List[int]:
        return sorted(self.weight_refs)

    def weight_emitter(self) -> WeightEmitter:
        """The vectorized weight emitter for this encoding (built once, cached)."""
        if self._emitter is None:
            self._emitter = WeightEmitter(self)
        return self._emitter

    def weights(self, resolver: Optional[ParamResolver] = None) -> Dict[int, complex]:
        """Numeric weight for every weight variable under ``resolver``.

        A dict view over :meth:`weight_emitter`'s array emission; hot paths
        (parameter sweeps, variational re-binding) should use the emitter
        directly and skip the dict.
        """
        values, _ = self.weight_emitter().emit(resolver)
        return {
            variable: complex(value)
            for variable, value in zip(self.weight_variables, values)
        }

    def constant_factor(self, resolver: Optional[ParamResolver] = None) -> complex:
        """Product of weights of weight variables forced true by simplification."""
        _, constant = self.weight_emitter().emit(resolver)
        return constant

    def stats(self) -> Dict[str, int]:
        base = self.cnf.stats()
        base["state_variables"] = sum(len(bits) for bits in self.node_bits.values())
        base["weight_variables"] = len(self.weight_refs)
        base["forced_literals"] = len(self.forced_literals)
        return base

    def __repr__(self) -> str:
        return (
            f"CNFEncoding(vars={self.cnf.num_vars}, clauses={self.cnf.num_clauses}, "
            f"weights={len(self.weight_refs)})"
        )


def encode_bayesnet(
    network: BayesianNetwork,
    simplify: bool = True,
    probe_count: int = 3,
) -> CNFEncoding:
    """Encode ``network`` into a weighted CNF.

    With ``simplify=True`` (the default, matching the paper) unit resolution
    absorbs deterministic evidence such as the known initial qubit states.
    """
    cnf = CNF()
    node_bits: Dict[str, List[int]] = {}
    weight_refs: Dict[int, WeightReference] = {}
    probes = network.probe_resolvers(count=probe_count)

    # 1. One propositional variable per encoded bit of every node.
    for node in network.nodes:
        width = bits_for_cardinality(node.cardinality)
        node_bits[node.name] = [cnf.new_var(f"{node.name}.b{j}") for j in range(width)]

    encoding = CNFEncoding(network, cnf, node_bits, weight_refs, set())

    # 2. Table clauses.
    for node in network.nodes:
        structure = node.structure(probes)
        padded_cardinality = 2 ** bits_for_cardinality(node.cardinality)
        for entry_index in np.ndindex(*structure.shape):
            kind = structure[entry_index]
            if kind == ENTRY_ONE:
                continue
            parent_values = entry_index[:-1]
            child_value = entry_index[-1]
            row_literals: List[int] = []
            for parent, value in zip(node.parents, parent_values):
                row_literals.extend(encoding.value_literals(parent, value))
            row_literals.extend(encoding.value_literals(node.name, child_value))
            if kind == ENTRY_ZERO:
                cnf.add_clause([-l for l in row_literals])
                continue
            # ENTRY_WEIGHT: dedicated parameter variable, equivalence-encoded.
            weight_var = cnf.new_var(f"theta[{node.name}|{parent_values}->{child_value}]")
            weight_refs[weight_var] = WeightReference(node.name, tuple(int(i) for i in entry_index))
            cnf.add_clause([-l for l in row_literals] + [weight_var])
            for literal in row_literals:
                cnf.add_clause([-weight_var, literal])
        # Forbid padded (unused) values of log-encoded nodes.
        for unused_value in range(node.cardinality, padded_cardinality):
            cnf.add_clause([-l for l in encoding.value_literals(node.name, unused_value)])

    forced: Set[int] = set()
    if simplify:
        simplified_cnf, forced = unit_propagate_cnf(cnf)
        encoding = CNFEncoding(network, simplified_cnf, node_bits, weight_refs, forced)
    return encoding
