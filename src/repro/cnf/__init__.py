"""Weighted CNF encoding of complex-valued Bayesian networks."""

from .encoder import CNFEncoding, WeightReference, encode_bayesnet
from .formula import CNF
from .simplify import unit_propagate_cnf

__all__ = [
    "CNF",
    "CNFEncoding",
    "WeightReference",
    "encode_bayesnet",
    "unit_propagate_cnf",
]
