"""CNF simplification by unit resolution.

The encoder produces unit clauses for deterministic facts (known initial
qubit states, impossible values).  Propagating them shrinks the CNF before
knowledge compilation — the paper reports a linear clause-count reduction
that translates into significantly smaller compiled circuits.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .formula import CNF


def unit_propagate_cnf(cnf: CNF) -> Tuple[CNF, Set[int]]:
    """Propagate unit clauses to a fixpoint.

    Returns a new CNF (same variable numbering, satisfied clauses removed,
    false literals deleted) together with the set of literals forced true.
    Raises ``ValueError`` if the formula is unsatisfiable — a quantum-circuit
    encoding can never be, so this indicates an encoding bug.
    """
    working: List[List[int]] = [list(clause) for clause in cnf.clauses]
    forced: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for clause in working:
            if len(clause) == 1:
                literal = clause[0]
                if -literal in forced:
                    raise ValueError("CNF is unsatisfiable under unit propagation")
                if literal not in forced:
                    forced.add(literal)
                    changed = True
        if not changed:
            break
        reduced: List[List[int]] = []
        for clause in working:
            satisfied = False
            remaining: List[int] = []
            for literal in clause:
                if literal in forced:
                    satisfied = True
                    break
                if -literal in forced:
                    continue
                remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                raise ValueError("CNF is unsatisfiable under unit propagation")
            reduced.append(remaining)
        working = reduced

    simplified = CNF(cnf.num_vars)
    simplified.var_names = dict(cnf.var_names)
    simplified.comments = list(cnf.comments)
    for clause in working:
        simplified.add_clause(clause)
    return simplified, forced
