"""Capability-driven backend registry.

The registry maps backend names to ``(factory, capabilities)`` pairs.  The
six historical simulator classes are registered here at import time, so

* ``repro.device("state_vector")`` and friends resolve through one table,
* routing layers query declared capabilities instead of hard-coding
  per-backend special cases, and
* external code can plug in a new backend with :func:`register_backend`
  and immediately use it through :func:`repro.api.device.device`.

Factories receive ``seed`` as their only reserved keyword; any other
keyword arguments given to :func:`create_backend` pass straight through.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import BackendCapabilityError
from .capabilities import NOISE_GENERAL, NOISE_NONE, NOISE_PAULI, BackendCapabilities

#: Dense backends keep a full 2^n (state) or 4^n (density) representation;
#: the ceilings below are where that stops being laptop-feasible and exist to
#: fail fast with a typed error instead of an allocation crash.
_DENSE_STATE_MAX_QUBITS = 26
_DENSE_DENSITY_MAX_QUBITS = 13
_KC_MAX_QUBITS = 30


class BackendRegistry:
    """Name -> (factory, capabilities) table with alias support."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._capabilities: Dict[str, BackendCapabilities] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        capabilities: BackendCapabilities,
        factory: Callable[..., Any],
        replace: bool = False,
    ) -> None:
        """Register ``factory`` under ``capabilities.name`` (and its aliases)."""
        name = capabilities.name
        if not replace and (name in self._factories or name in self._aliases):
            raise BackendCapabilityError(f"backend {name!r} is already registered")
        self._factories[name] = factory
        self._capabilities[name] = capabilities
        for alias in capabilities.aliases:
            self._aliases[alias] = name

    def resolve(self, name: str) -> str:
        """Canonical backend name for ``name`` (following aliases)."""
        canonical = self._aliases.get(name, name)
        if canonical not in self._factories:
            raise BackendCapabilityError(
                f"unknown backend {name!r}; registered backends: {self.names()}"
            )
        return canonical

    def create(self, name: str, seed: Optional[int] = None, **options: Any) -> Any:
        """Instantiate the backend registered under ``name``."""
        return self._factories[self.resolve(name)](seed=seed, **options)

    def capabilities(self, name: str) -> BackendCapabilities:
        return self._capabilities[self.resolve(name)]

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except BackendCapabilityError:
            return False
        return True

    def capability_matrix(self) -> List[Dict[str, object]]:
        """One row per backend, for docs and introspection."""
        return [self._capabilities[name].matrix_row() for name in self.names()]


#: The process-wide registry behind ``repro.device``.
REGISTRY = BackendRegistry()


def register_backend(
    capabilities: BackendCapabilities, factory: Callable[..., Any], replace: bool = False
) -> None:
    """Register a backend in the global registry (see :class:`BackendRegistry`)."""
    REGISTRY.register(capabilities, factory, replace=replace)


def create_backend(name: str, seed: Optional[int] = None, **options: Any) -> Any:
    """Instantiate a registered backend by name."""
    return REGISTRY.create(name, seed=seed, **options)


def backend_capabilities(name: str) -> BackendCapabilities:
    """The declared capabilities of a registered backend."""
    return REGISTRY.capabilities(name)


def list_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return REGISTRY.names()


def capability_matrix() -> List[Dict[str, object]]:
    """The full capability matrix (one dict per backend)."""
    return REGISTRY.capability_matrix()


# ----------------------------------------------------------------------
# Built-in backend registrations.  Factories import lazily so importing the
# registry does not pull in every backend module.
# ----------------------------------------------------------------------
def _state_vector_factory(seed: Optional[int] = None) -> Any:
    from ..statevector import StateVectorSimulator

    return StateVectorSimulator(seed=seed)


def _density_matrix_factory(seed: Optional[int] = None) -> Any:
    from ..densitymatrix import DensityMatrixSimulator

    return DensityMatrixSimulator(seed=seed)


def _tensor_network_factory(
    seed: Optional[int] = None, contraction_method: str = "greedy"
) -> Any:
    from ..tensornetwork import TensorNetworkSimulator

    return TensorNetworkSimulator(contraction_method=contraction_method, seed=seed)


def _trajectory_factory(seed: Optional[int] = None, **options: Any) -> Any:
    from ..trajectory import TrajectorySimulator

    return TrajectorySimulator(seed=seed, **options)


def _stabilizer_factory(seed: Optional[int] = None) -> Any:
    from ..stabilizer import StabilizerSimulator

    return StabilizerSimulator(seed=seed)


def _knowledge_compilation_factory(seed: Optional[int] = None, **options: Any) -> Any:
    from ..simulator.kc_simulator import KnowledgeCompilationSimulator

    return KnowledgeCompilationSimulator(seed=seed, **options)


register_backend(
    BackendCapabilities(
        name="state_vector",
        max_qubits=_DENSE_STATE_MAX_QUBITS,
        noise=NOISE_GENERAL,
        mixed_state=False,
        noisy_sampling=True,
        memory_exponent=1,
        default_item_timeout=300.0,
        description="dense 2^n state vector; noisy sampling via per-shot trajectories",
        aliases=("sv", "statevector"),
    ),
    _state_vector_factory,
)
register_backend(
    BackendCapabilities(
        name="density_matrix",
        max_qubits=_DENSE_DENSITY_MAX_QUBITS,
        noise=NOISE_GENERAL,
        mixed_state=True,
        noisy_sampling=True,
        memory_exponent=2,
        default_item_timeout=300.0,
        description="exact 4^n density matrix via fused superoperator programs",
        aliases=("dm", "densitymatrix"),
    ),
    _density_matrix_factory,
)
register_backend(
    BackendCapabilities(
        name="tensor_network",
        max_qubits=_DENSE_STATE_MAX_QUBITS,
        noise=NOISE_NONE,
        mixed_state=False,
        memory_exponent=1,
        default_item_timeout=300.0,
        description="amplitude queries by network contraction; MCMC sampling",
        aliases=("tn", "tensornetwork"),
    ),
    _tensor_network_factory,
)
register_backend(
    BackendCapabilities(
        name="trajectory",
        max_qubits=_DENSE_STATE_MAX_QUBITS,
        noise=NOISE_GENERAL,
        # simulate() returns a trajectory-averaged density matrix — a Monte
        # Carlo mixed-state estimate, unbiased but not exact.
        mixed_state=True,
        batched_sampling=True,
        noisy_sampling=True,
        memory_exponent=1,
        batch_memory=True,
        max_batch_size=512,
        default_item_timeout=300.0,
        description="batched (B, 2^n) lockstep Monte Carlo wavefunction ensembles",
    ),
    _trajectory_factory,
)
register_backend(
    BackendCapabilities(
        name="stabilizer",
        max_qubits=None,
        noise=NOISE_PAULI,
        clifford_only=True,
        mixed_state=False,
        batched_sampling=True,
        noisy_sampling=True,
        default_item_timeout=120.0,
        description="Aaronson-Gottesman tableau; poly(n) Clifford circuits",
    ),
    _stabilizer_factory,
)
register_backend(
    BackendCapabilities(
        name="knowledge_compilation",
        max_qubits=_KC_MAX_QUBITS,
        noise=NOISE_GENERAL,
        mixed_state=True,
        batched_sampling=True,
        noisy_sampling=True,
        default_item_timeout=600.0,
        description="compile-once d-DNNF arithmetic circuit; vectorized rebinding",
        aliases=("kc",),
    ),
    _knowledge_compilation_factory,
)
