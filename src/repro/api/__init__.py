"""Unified execution API: ``repro.device() -> Device.run() -> Job``.

The public surface of the execution layer:

* :func:`~repro.api.device.device` / :class:`~repro.api.device.Device` —
  open an execution endpoint by backend name (or ``"auto"`` for
  capability-driven routing) and submit circuits, circuit lists or sweep
  specs;
* :class:`~repro.api.scheduler.Job` — the async handle with
  ``status()`` / ``result()`` / ``cancel()`` / ``partial_results()``;
* :class:`~repro.api.results.BatchResult` — per-item rows of a batch;
* the backend registry — :func:`register_backend`,
  :func:`backend_capabilities`, :func:`list_backends`,
  :func:`capability_matrix` — where every backend declares what it can do.
"""

from .capabilities import BackendCapabilities
from .device import EXACT_SAMPLING_QUBITS, Device, device
from .registry import (
    REGISTRY,
    BackendRegistry,
    backend_capabilities,
    capability_matrix,
    create_backend,
    list_backends,
    register_backend,
)
from .results import BatchResult
from .routing import BackendDecision, select_backend
from .scheduler import Job

__all__ = [
    "BackendCapabilities",
    "BackendDecision",
    "BackendRegistry",
    "BatchResult",
    "Device",
    "EXACT_SAMPLING_QUBITS",
    "Job",
    "REGISTRY",
    "backend_capabilities",
    "capability_matrix",
    "create_backend",
    "device",
    "list_backends",
    "register_backend",
    "select_backend",
]
