"""Unified execution API: ``repro.device() -> Device.run() -> Job``.

The public surface of the execution layer:

* :func:`~repro.api.device.device` / :class:`~repro.api.device.Device` —
  open an execution endpoint by backend name (or ``"auto"`` for
  capability-driven routing) and submit circuits, circuit lists or sweep
  specs;
* :class:`~repro.api.scheduler.Job` — the async handle with
  ``status()`` / ``result()`` / ``cancel()`` / ``partial_results()``;
* :class:`~repro.api.results.BatchResult` — per-item rows of a batch;
* the backend registry — :func:`register_backend`,
  :func:`backend_capabilities`, :func:`list_backends`,
  :func:`capability_matrix` — where every backend declares what it can do;
* fault tolerance — :class:`~repro.api.faults.RetryPolicy`,
  :class:`~repro.api.faults.ItemFailure`,
  :class:`~repro.api.faults.FaultInjector`,
  :class:`~repro.api.journal.JobJournal` and
  :func:`~repro.api.journal.resume_job` (see ``docs/robustness.md``).
"""

from .capabilities import BackendCapabilities
from .costmodel import (
    CircuitFeatures,
    CostModel,
    CostSample,
    default_cost_model,
    extract_features,
    fit_cost_model,
)
from .device import EXACT_SAMPLING_QUBITS, Device, device
from .faults import DEFAULT_RETRYABLE, NO_RETRY, FaultInjector, ItemFailure, RetryPolicy
from .journal import JOB_DIR_ENV, JobJournal, new_job_id, resume_job
from .registry import (
    REGISTRY,
    BackendRegistry,
    backend_capabilities,
    capability_matrix,
    create_backend,
    list_backends,
    register_backend,
)
from .results import BatchResult
from .routing import BackendDecision, select_backend
from .scheduler import Job

__all__ = [
    "BackendCapabilities",
    "BackendDecision",
    "BackendRegistry",
    "BatchResult",
    "CircuitFeatures",
    "CostModel",
    "CostSample",
    "DEFAULT_RETRYABLE",
    "Device",
    "EXACT_SAMPLING_QUBITS",
    "FaultInjector",
    "ItemFailure",
    "JOB_DIR_ENV",
    "Job",
    "JobJournal",
    "NO_RETRY",
    "REGISTRY",
    "RetryPolicy",
    "backend_capabilities",
    "capability_matrix",
    "create_backend",
    "default_cost_model",
    "device",
    "extract_features",
    "fit_cost_model",
    "list_backends",
    "new_job_id",
    "register_backend",
    "resume_job",
    "select_backend",
]
