"""The unified ``Device`` execution API: ``repro.device() -> Device.run() -> Job``.

One submission surface for every workload the code base used to serve with
bespoke harnesses:

* **capability-driven routing** — ``device("auto")`` routes each work item
  through :func:`repro.api.routing.select_backend` (the same classifier
  ``HybridSimulator`` uses), extended with observable-aware rules (dense
  reconstruction caps, phase-consistent state vectors, mixed-state needs);
  fixed-name devices validate every item against the backend's declared
  :class:`~repro.api.capabilities.BackendCapabilities` before any work runs;
* **batched submission** — ``run()`` accepts one circuit, a list of
  circuits, or a sweep spec (one circuit times many parameter points).
  Work items are grouped by ``circuit_topology_key`` so one knowledge
  compile serves every rebinding of a topology, and ideal Clifford items
  that share a resolved circuit share one tableau run;
* **async jobs** — ``run(block=False)`` fans the groups out over a process
  pool and returns immediately; the :class:`~repro.api.scheduler.Job`
  handle exposes ``status()`` / ``result()`` / ``cancel()`` and streams
  partial results.  Item ``i`` always samples with ``seed + i``, so serial
  and parallel runs of the same batch are bit-identical.

The per-item result *rows* are plain dicts (see
:class:`~repro.api.results.BatchResult`); the legacy ``ParameterSweep``,
``HybridSimulator`` and ``VariationalLoop`` surfaces are now thin layers
over this module.
"""

from __future__ import annotations

import math
import tempfile
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.passes import OptimizeSpec, PipelineStats, resolve_pipeline
from ..circuits.qubits import Qubit
from ..circuits.topology import canonicalize_circuit
from ..errors import (
    BackendCapabilityError,
    InvalidRequestError,
    MemoryBudgetError,
    ReproError,
    RequestTypeError,
)
from ..knowledge.cache import CompiledCircuitCache
from ..linalg.tensor_ops import bits_to_index, index_to_bits
from ..simulator.results import SampleResult
from ..stabilizer.simulator import DENSE_PROBABILITY_QUBITS
from .costmodel import CostModel
from .faults import FaultInjector, ItemFailure, RetryPolicy
from .journal import JobJournal
from .registry import REGISTRY, backend_capabilities, create_backend
from .results import BatchResult
from .routing import BackendDecision, select_backend
from .scheduler import Job, completed, submit


def _assemble_batch(sorted_rows: List[Tuple[int, Dict]]) -> BatchResult:
    """Job ``assemble`` hook: item rows (already index-sorted) to a BatchResult."""
    return BatchResult([row for _, row in sorted_rows])

#: Observables one work item can record (same vocabulary as ParameterSweep).
OBSERVABLES = ("probabilities", "state_vector", "samples", "expectation")

#: Exact (amplitude-based) sampling on the compiled arithmetic circuit needs
#: the full 2^n distribution; beyond this it falls back to Gibbs chains.
EXACT_SAMPLING_QUBITS = 16

SweepPoint = Union[None, ParamResolver, Dict[str, float]]

KC_BACKEND = "knowledge_compilation"


def as_resolver(point: SweepPoint) -> Optional[ParamResolver]:
    """Normalize one parameter point (``None`` / mapping / resolver) to a resolver."""
    if point is None or isinstance(point, ParamResolver):
        return point
    return ParamResolver(dict(point))


def _resolver_key(resolver: Optional[ParamResolver]) -> Optional[Tuple]:
    """Hashable identity of a parameter binding (for result sharing)."""
    if resolver is None:
        return None
    return tuple(sorted(resolver.as_dict().items()))


# ----------------------------------------------------------------------
# Work-item evaluation.  Module-level so process-pool workers can run the
# exact same code path as the inline (serial) engine.
# ----------------------------------------------------------------------
def _item_seed(ctx: Dict[str, Any], index: int) -> Optional[int]:
    """Deterministic per-item seed: ``seed + index`` (``None`` stays ``None``)."""
    return None if ctx["seed"] is None else ctx["seed"] + index


def _maybe_inject_fault(ctx: Dict[str, Any], index: int) -> None:
    """Chaos hook: let a configured fault injector fail this (item, attempt)."""
    injector = ctx.get("fault_injector")
    if injector is not None:
        injector(index, ctx.get("attempt", 0))


def _base_row(index: int, resolver: Optional[ParamResolver], backend: str, reason: str) -> Dict:
    return {
        "index": index,
        "parameters": {} if resolver is None else resolver.as_dict(),
        "backend": backend,
        "reason": reason,
    }


def _finish_row(row: Dict, index: int, ctx: Dict, started: float) -> Dict:
    """Attach per-item timing telemetry: measured, and (cost mode) predicted.

    ``elapsed_seconds`` is a pure observation — nothing downstream branches
    on it, so serial/pooled/resumed runs stay bit-identical in every
    *result* field while mispredictions remain visible per row.
    """
    row["elapsed_seconds"] = time.perf_counter() - started
    predicted = ctx.get("predicted")
    if predicted is not None and index in predicted:
        row["predicted_seconds"] = predicted[index]
    return row


def _record_samples(row: Dict, samples: SampleResult) -> None:
    row["samples"] = samples
    row["counts"] = samples.bitstring_counts()


def _sample_from_probabilities(
    qubits: Sequence[Qubit],
    probabilities: np.ndarray,
    repetitions: int,
    rng: np.random.Generator,
) -> SampleResult:
    """Exact multinomial draw from a dense output distribution."""
    probabilities = np.clip(np.asarray(probabilities, dtype=float), 0.0, None)
    probabilities = probabilities / probabilities.sum()
    indices = rng.choice(len(probabilities), size=repetitions, p=probabilities)
    return SampleResult(qubits, [index_to_bits(int(i), len(qubits)) for i in indices])


def _evaluate_kc_item(sim, compiled, index: int, resolver, reason: str, ctx: Dict) -> Dict:
    """One item on the knowledge-compilation backend (shared compile)."""
    observables = ctx["observables"]
    row = _base_row(index, resolver, KC_BACKEND, reason)
    probabilities: Optional[np.ndarray] = None
    sampling = ctx["sampling"]
    exact = (
        "samples" in observables
        and sampling in ("auto", "exact")
        and not compiled.noise_variables
        and compiled.num_qubits <= EXACT_SAMPLING_QUBITS
    )
    if sampling == "exact" and "samples" in observables and not exact:
        raise BackendCapabilityError(
            "exact sampling needs an ideal circuit with at most "
            f"{EXACT_SAMPLING_QUBITS} qubits; use sampling='auto' or 'gibbs'"
        )
    if "probabilities" in observables or "expectation" in observables or exact:
        probabilities = compiled.probabilities(resolver)
    if "probabilities" in observables:
        row["probabilities"] = probabilities
    if "expectation" in observables:
        row["expectation"] = float(ctx["objective"](probabilities))
    if "state_vector" in observables:
        row["state_vector"] = compiled.state_vector(resolver)
    if "samples" in observables:
        seed = _item_seed(ctx, index)
        if exact:
            rng = sim._rng(seed)
            _record_samples(
                row,
                _sample_from_probabilities(
                    compiled.qubits, probabilities, ctx["repetitions"], rng
                ),
            )
        else:
            _record_samples(
                row,
                sim.sample(compiled, ctx["repetitions"], resolver=resolver, seed=seed),
            )
    return row


def _evaluate_stabilizer_item(
    sim, circuit, index: int, resolver, reason: str, ctx: Dict, shared: Dict
) -> Dict:
    """One item on the tableau; ideal items sharing a binding share one run."""
    observables = ctx["observables"]
    row = _base_row(index, resolver, "stabilizer", reason)
    initial_state = ctx["initial_state"]
    if circuit.has_noise:
        # Stochastic Pauli unravelling: every shot draws its own jump
        # pattern, so there is no shared deterministic tableau to reuse.
        _record_samples(
            row,
            sim.sample(
                circuit,
                ctx["repetitions"],
                resolver=resolver,
                qubit_order=ctx["qubit_order"],
                seed=_item_seed(ctx, index),
                initial_state=initial_state,
            ),
        )
        return row
    key = (ctx["circuit_pos"], _resolver_key(resolver))
    result = shared.get(key)
    if result is None:
        result = sim.simulate(circuit, resolver, ctx["qubit_order"], initial_state)
        shared[key] = result
    if "probabilities" in observables or "expectation" in observables:
        probabilities = result.probabilities()
        if "probabilities" in observables:
            row["probabilities"] = probabilities
        if "expectation" in observables:
            row["expectation"] = float(ctx["objective"](probabilities))
    if "state_vector" in observables:
        row["state_vector"] = result.state_vector
    if "samples" in observables:
        seed = _item_seed(ctx, index)
        rng = np.random.default_rng(seed) if seed is not None else sim._rng()
        _record_samples(row, result.sample(ctx["repetitions"], rng))
    return row


def _evaluate_generic_item(sim, name: str, circuit, index: int, resolver, reason: str, ctx: Dict) -> Dict:
    """One item on any uniform-interface backend (simulate/sample contract)."""
    observables = ctx["observables"]
    row = _base_row(index, resolver, name, reason)
    if any(o in observables for o in ("probabilities", "expectation", "state_vector")):
        result = sim.simulate(circuit, resolver, ctx["qubit_order"], ctx["initial_state"])
        if "probabilities" in observables or "expectation" in observables:
            probabilities = result.probabilities()
            if "probabilities" in observables:
                row["probabilities"] = probabilities
            if "expectation" in observables:
                row["expectation"] = float(ctx["objective"](probabilities))
        if "state_vector" in observables:
            state = getattr(result, "state_vector", None)
            if state is None:
                raise BackendCapabilityError(
                    f"backend {name!r} produces a mixed state; "
                    "it cannot record the 'state_vector' observable"
                )
            row["state_vector"] = np.asarray(state)
    if "samples" in observables:
        _record_samples(
            row,
            sim.sample(
                circuit,
                ctx["repetitions"],
                resolver=resolver,
                qubit_order=ctx["qubit_order"],
                seed=_item_seed(ctx, index),
                initial_state=ctx["initial_state"],
            ),
        )
    return row


def _evaluate_items(
    sim,
    backend: str,
    circuits: List[Circuit],
    items: List[Tuple[int, int, Optional[ParamResolver], str]],
    ctx: Dict,
    group_master=None,
    memo: Optional[Dict] = None,
) -> List[Tuple[int, Dict]]:
    """Evaluate one backend group's items; shared by workers and inline runs.

    ``group_master`` is an optional pre-compiled :class:`CompiledCircuit`
    for the group's shared topology (the Device's per-topology memo);
    circuits then rebind against it instead of recompiling.  ``memo`` is an
    optional mutable dict shared across calls of the *same group in the same
    process* (the inline fault-tolerant engine submits one call per item):
    it carries the per-position rebind / shared-tableau memos that a single
    batched call keeps in locals, so per-item dispatch stays compile-once.
    """
    rows: List[Tuple[int, Dict]] = []
    if backend == KC_BACKEND:
        # All circuits in a group share one topology: the first circuit pays
        # the compile (or cache hit), the rest are rebound views over the
        # same arithmetic circuit — compile-once even with caching disabled.
        compiled_by_pos: Dict[int, Any] = {} if memo is None else memo
        for index, pos, resolver, reason in items:
            _maybe_inject_fault(ctx, index)
            compiled = compiled_by_pos.get(pos)
            if compiled is None:
                if group_master is None:
                    compiled = sim.compile_circuit(
                        circuits[pos],
                        qubit_order=ctx["qubit_order"],
                        initial_bits=ctx["initial_bits"],
                    )
                    group_master = compiled
                else:
                    canonical = canonicalize_circuit(
                        circuits[pos],
                        qubit_order=ctx["qubit_order"],
                        initial_bits=ctx["initial_bits"],
                    )
                    compiled = group_master.rebound_for(
                        circuits[pos], canonical.bindings, ctx["qubit_order"]
                    )
                compiled_by_pos[pos] = compiled
            started = time.perf_counter()
            row = _evaluate_kc_item(sim, compiled, index, resolver, reason, ctx)
            rows.append((index, _finish_row(row, index, ctx, started)))
        return rows
    if backend == "stabilizer":
        shared: Dict = {} if memo is None else memo
        for index, pos, resolver, reason in items:
            _maybe_inject_fault(ctx, index)
            item_ctx = dict(ctx, circuit_pos=pos)
            started = time.perf_counter()
            row = _evaluate_stabilizer_item(
                sim, circuits[pos], index, resolver, reason, item_ctx, shared
            )
            rows.append((index, _finish_row(row, index, ctx, started)))
        return rows
    for index, pos, resolver, reason in items:
        _maybe_inject_fault(ctx, index)
        started = time.perf_counter()
        row = _evaluate_generic_item(sim, backend, circuits[pos], index, resolver, reason, ctx)
        rows.append((index, _finish_row(row, index, ctx, started)))
    return rows


def _pack_chunks(
    items: List[Tuple[int, int, Optional[ParamResolver], str]],
    chunk_size: int,
    predicted: Optional[Dict[int, float]],
    cost_target: float,
) -> List[List[Tuple[int, int, Optional[ParamResolver], str]]]:
    """Split one group's items into pool chunks.

    With cost-mode predictions covering the group (``cost_target > 0``),
    items are greedily packed until a chunk's *predicted* runtime reaches
    the target — order-preserving and deterministic, so per-item
    ``seed + index`` results are unchanged; only the work distribution
    shifts.  Otherwise falls back to fixed-size slices.
    """
    if (
        cost_target > 0.0
        and predicted
        and all(item[0] in predicted for item in items)
    ):
        chunks: List[List[Tuple[int, int, Optional[ParamResolver], str]]] = []
        current: List[Tuple[int, int, Optional[ParamResolver], str]] = []
        current_cost = 0.0
        for item in items:
            cost = predicted[item[0]]
            if current and current_cost + cost > cost_target:
                chunks.append(current)
                current = []
                current_cost = 0.0
            current.append(item)
            current_cost += cost
        if current:
            chunks.append(current)
        return chunks
    return [
        items[start : start + chunk_size] for start in range(0, len(items), chunk_size)
    ]


def _worker_backend(payload: Dict):
    """Construct the backend instance inside a pool worker."""
    options = dict(payload["backend_options"])
    if payload["backend"] == KC_BACKEND and payload.get("cache_dir"):
        options["cache"] = CompiledCircuitCache(directory=payload["cache_dir"])
    return create_backend(payload["backend"], seed=payload["ctx"]["seed"], **options)


def _run_chunk(payload: Dict) -> List[Tuple[int, Dict]]:
    """Process-pool task: hydrate a backend, evaluate one chunk of items."""
    sim = _worker_backend(payload)
    ctx = dict(payload["ctx"], attempt=payload.get("attempt", 0))
    return _evaluate_items(
        sim, payload["backend"], payload["circuits"], payload["items"], ctx
    )


def _run_chunk_local(payload: Dict) -> List[Tuple[int, Dict]]:
    """Inline fault-tolerant task: evaluate items on this process's backend.

    The payload carries live (unpicklable is fine — never crosses a process
    boundary) simulator instances and the device's memoized group master.
    """
    ctx = dict(payload["ctx"], attempt=payload.get("attempt", 0))
    return _evaluate_items(
        payload["sim"],
        payload["backend"],
        payload["circuits"],
        payload["items"],
        ctx,
        group_master=payload.get("master"),
        memo=payload.get("memo"),
    )


def persist_compile(sim, compiled, directory: str, qubit_order=None, initial_bits=None) -> None:
    """Write a compiled artifact where pool workers will look for it."""
    from ..simulator.kc_simulator import _encoding_fingerprint

    disk = CompiledCircuitCache(directory=directory)
    key = sim.cache_key_for(
        compiled.circuit,
        qubit_order=qubit_order,
        initial_bits=initial_bits,
        elide_internal=compiled.elided,
    )
    if disk.load_payload(key) is None:
        disk.store_payload(
            key,
            {
                "arithmetic_circuit": compiled.arithmetic_circuit,
                "fingerprint": _encoding_fingerprint(compiled.encoding),
            },
        )


# ----------------------------------------------------------------------
class Device:
    """One execution endpoint: a fixed backend, or capability-driven routing.

    Parameters
    ----------
    backend:
        A registered backend name, or ``"auto"`` (alias ``"hybrid"``) for
        per-item routing through the Clifford/topology classifiers.
    seed:
        Seeds every backend instance this device creates.
    fallback, noisy_fallback:
        Backend names for the non-Clifford route under ``"auto"``.
        ``fallback`` defaults to ``"state_vector"``; ``noisy_fallback``
        defaults to ``"density_matrix"`` when ``fallback`` is defaulted and
        to ``fallback`` itself otherwise (mixed-state queries need it).
    instances:
        Pre-built backend instances to use instead of fresh registry
        creations (how the legacy shims wrap their existing simulators).
    backend_options:
        Extra constructor keywords for backends this device creates,
        keyed by backend name.
    routing:
        ``"rules"`` (default) routes ``"auto"`` items by the classification
        rules; ``"cost"`` ranks the capable backends with a calibrated
        cost model and picks the predicted-fastest (falling back to the
        rules when no model is available).  Fixed-name devices ignore this.
    cost_model:
        A :class:`~repro.api.costmodel.CostModel`, or a path to a persisted
        artifact, used by ``routing="cost"``.  ``None`` resolves the
        ambient :func:`~repro.api.costmodel.default_cost_model`.
    """

    def __init__(
        self,
        backend: str = "auto",
        seed: Optional[int] = None,
        fallback: Optional[str] = None,
        noisy_fallback: Optional[str] = None,
        instances: Optional[Dict[str, Any]] = None,
        backend_options: Optional[Dict[str, Dict]] = None,
        routing: str = "rules",
        cost_model: Union[None, str, CostModel] = None,
    ):
        if routing not in ("rules", "cost"):
            raise InvalidRequestError(
                f"routing must be 'rules' or 'cost', got {routing!r}"
            )
        self.routing = routing
        self._cost_model: Optional[CostModel] = (
            CostModel.load(cost_model) if isinstance(cost_model, str) else cost_model
        )
        self._instances: Dict[str, Any] = dict(instances or {})
        self._backend_options: Dict[str, Dict] = dict(backend_options or {})
        # Constructor spec for job manifests: enough to re-create an
        # equivalent device in a resume (attached instances are rebuilt
        # fresh from the registry — they may not be picklable).  The cost
        # model itself is not serialized: a resume replays checkpointed rows
        # and re-routes only unfinished items, against the ambient artifact.
        self._config: Dict[str, Any] = {
            "backend": backend,
            "seed": seed,
            "fallback": fallback,
            "noisy_fallback": noisy_fallback,
            "backend_options": dict(backend_options or {}),
            "routing": routing,
        }
        # Per-topology memo of knowledge compiles this device performed, so
        # repeated run() calls reuse the artifact even when the simulator's
        # own cache is disabled (cache=None isolation setups).
        self._kc_masters: "OrderedDict[str, Any]" = OrderedDict()
        #: Per-distinct-circuit rewrite stats from the most recent
        #: ``run(optimize=...)`` call (``None`` when optimization was off).
        self.last_optimization: Optional[Tuple[PipelineStats, ...]] = None
        if backend in ("auto", "hybrid"):
            self.backend = "auto"
        else:
            self.backend = self._resolve(backend)
        self.seed = seed
        if fallback is None:
            self._fallback = "state_vector"
            self._noisy_fallback = (
                self._resolve(noisy_fallback) if noisy_fallback else "density_matrix"
            )
        else:
            self._fallback = self._resolve(fallback)
            self._noisy_fallback = (
                self._resolve(noisy_fallback) if noisy_fallback else self._fallback
            )
        #: The decision taken by the most recent simulate/sample call.
        self.last_decision: Optional[BackendDecision] = None

    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> str:
        """Canonical backend name: an attached instance's name, or a registry name."""
        if name in self._instances:
            return name
        return REGISTRY.resolve(name)

    def backend_instance(self, name: str):
        """The (lazily created, cached) backend instance for ``name``."""
        if name in self._instances:
            return self._instances[name]
        name = REGISTRY.resolve(name)
        instance = self._instances.get(name)
        if instance is None:
            instance = create_backend(
                name, seed=self.seed, **self._backend_options.get(name, {})
            )
            self._instances[name] = instance
        return instance

    def capabilities(self):
        """Declared capabilities of this device's backend (fixed devices only)."""
        if self.backend == "auto":
            raise BackendCapabilityError("device('auto') routes per item; ask a fixed device")
        return backend_capabilities(self.backend)

    def _kc_group_master(self, sim, circuit: Circuit, topology: str, ctx: Dict):
        """This device's memoized knowledge compile for ``topology``."""
        master = self._kc_masters.get(topology)
        if master is None:
            master = sim.compile_circuit(
                circuit,
                qubit_order=ctx["qubit_order"],
                initial_bits=ctx["initial_bits"],
            )
            self._kc_masters[topology] = master
            while len(self._kc_masters) > 8:
                self._kc_masters.popitem(last=False)
        else:
            self._kc_masters.move_to_end(topology)
        return master

    def compiled_master(
        self,
        circuit: Circuit,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
    ):
        """The device's memoized compile for ``circuit``'s topology, rebound to it.

        Returns ``None`` when no run has compiled that topology yet.
        """
        order = list(qubit_order) if qubit_order is not None else None
        canonical = canonicalize_circuit(circuit, qubit_order=order, initial_bits=initial_bits)
        master = self._kc_masters.get(canonical.topology_key)
        if master is None:
            return None
        return master.rebound_for(circuit, canonical.bindings, order)

    def ensure_compiled(
        self,
        circuit: Circuit,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
    ):
        """Compile ``circuit``'s topology now (through the device memo).

        Later ``run()`` batches over the same topology reuse the artifact —
        one exponential compile total, even with the simulator's own cache
        disabled.  Returns the compile rebound to ``circuit``.
        """
        order = list(qubit_order) if qubit_order is not None else None
        canonical = canonicalize_circuit(circuit, qubit_order=order, initial_bits=initial_bits)
        ctx = {
            "qubit_order": order,
            "initial_bits": list(initial_bits) if initial_bits is not None else None,
        }
        sim = self.backend_instance(KC_BACKEND)
        master = self._kc_group_master(sim, circuit, canonical.topology_key, ctx)
        return master.rebound_for(circuit, canonical.bindings, order)

    def _fallback_name(self, circuit: Circuit, sampling: bool) -> str:
        if not sampling and circuit.has_noise:
            return self._noisy_fallback
        return self._fallback

    # ------------------------------------------------------------------
    # Single-item entry points (the legacy Simulator-shaped surface).
    # ------------------------------------------------------------------
    def decide(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        sampling: bool = True,
        repetitions: int = 0,
    ) -> BackendDecision:
        """The routing decision for one circuit (without running it)."""
        if self.backend != "auto":
            return BackendDecision(self.backend, "fixed backend")
        return select_backend(
            circuit,
            resolver,
            fallback=self._fallback_name(circuit, sampling),
            sampling=sampling,
            mode=self.routing,
            cost_model=self._cost_model,
            repetitions=repetitions,
        )

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ):
        """Run one circuit on the routed backend, returning its native result."""
        decision = self.decide(circuit, resolver, sampling=False)
        self.last_decision = decision
        return self.backend_instance(decision.backend).simulate(
            circuit, resolver, qubit_order, initial_state
        )

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw samples from one circuit on the routed backend."""
        decision = self.decide(circuit, resolver, sampling=True)
        self.last_decision = decision
        return self.backend_instance(decision.backend).sample(
            circuit,
            repetitions,
            resolver=resolver,
            qubit_order=qubit_order,
            seed=seed,
            initial_state=initial_state,
        )

    # ------------------------------------------------------------------
    # Batched submission.
    # ------------------------------------------------------------------
    def _route_item(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        observables: Sequence[str],
        num_qubits: int,
        repetitions: int = 0,
    ) -> BackendDecision:
        sampling_only = all(o == "samples" for o in observables)
        wants_dense = "probabilities" in observables or "expectation" in observables
        if self.backend != "auto":
            decision = BackendDecision(self.backend, "fixed backend")
        else:
            decision = self.decide(
                circuit, resolver, sampling=sampling_only, repetitions=repetitions
            )
            if decision.backend == "stabilizer" and not sampling_only:
                if "state_vector" in observables:
                    decision = BackendDecision(
                        self._fallback_name(circuit, sampling=False),
                        "state-vector observable needs phase-consistent amplitudes",
                    )
                elif wants_dense and num_qubits > DENSE_PROBABILITY_QUBITS:
                    decision = BackendDecision(
                        self._fallback_name(circuit, sampling=False),
                        f"dense probabilities capped at {DENSE_PROBABILITY_QUBITS} qubits",
                    )
        self._validate_capabilities(decision.backend, circuit, observables, num_qubits)
        return decision

    def _memory_guard(
        self,
        decision: BackendDecision,
        circuit: Circuit,
        observables: Sequence[str],
        num_qubits: int,
        budget: Optional[int],
        repetitions: int = 0,
    ) -> BackendDecision:
        """Reject or reroute items whose dense footprint exceeds ``budget``.

        The estimate is batch-aware: backends declaring ``batch_memory``
        (the trajectory ensemble's ``(B, 2^n)`` state) are charged for
        ``min(repetitions, max_batch_size)`` simultaneous rows, not one.

        Auto-routing devices degrade gracefully: an over-budget dense route
        falls back to a capable backend with a smaller footprint (the
        ``4^n`` density matrix downgrades to ``2^n`` Monte Carlo
        trajectories; Clifford work already routes to the poly(n) tableau).
        Fixed devices, and items no cheaper backend can serve, raise a typed
        :class:`~repro.errors.MemoryBudgetError` *before* any allocation.
        """
        if budget is None or decision.backend not in REGISTRY:
            return decision
        batch = max(1, repetitions)
        caps = backend_capabilities(decision.backend)
        estimate = caps.estimated_memory_bytes(num_qubits, batch_size=batch)
        if estimate is None or estimate <= budget:
            return decision
        if self.backend == "auto" and "state_vector" not in observables:
            for candidate in ("trajectory",):
                candidate_caps = backend_capabilities(candidate)
                candidate_cost = candidate_caps.estimated_memory_bytes(
                    num_qubits, batch_size=batch
                )
                if candidate_cost is not None and candidate_cost > budget:
                    continue
                try:
                    self._validate_capabilities(candidate, circuit, observables, num_qubits)
                except BackendCapabilityError:
                    continue
                return BackendDecision(
                    candidate,
                    f"memory budget: {decision.backend} needs ~{estimate:,} B "
                    f"(> {budget:,} B); downgraded to {candidate}",
                )
        raise MemoryBudgetError(
            f"work item needs ~{estimate:,} B on backend {decision.backend!r} "
            f"({num_qubits} qubits), exceeding the {budget:,} B memory budget, "
            "and no cheaper capable backend exists"
        )

    def _validate_capabilities(
        self,
        name: str,
        circuit: Circuit,
        observables: Sequence[str],
        num_qubits: int,
    ) -> None:
        if name not in REGISTRY:
            return  # attached instance with no declared capabilities
        caps = backend_capabilities(name)
        if caps.max_qubits is not None and num_qubits > caps.max_qubits:
            raise BackendCapabilityError(
                f"backend {name!r} is capped at {caps.max_qubits} qubits "
                f"(work item has {num_qubits})"
            )
        if circuit.has_noise:
            if not caps.supports_noise():
                raise BackendCapabilityError(
                    f"backend {name!r} supports ideal circuits only; "
                    "route noisy work to a noise-capable backend"
                )
            if "state_vector" in observables:
                raise BackendCapabilityError(
                    "noisy circuits have no state vector; request 'probabilities' instead"
                )
            if "samples" in observables and not caps.noisy_sampling:
                raise BackendCapabilityError(
                    f"backend {name!r} cannot sample noisy circuits"
                )
            if (
                "probabilities" in observables or "expectation" in observables
            ) and not caps.mixed_state:
                raise BackendCapabilityError(
                    f"backend {name!r} cannot produce a mixed-state output "
                    "distribution; use density_matrix, trajectory or knowledge_compilation"
                )

    def _normalize_items(
        self, circuits, params
    ) -> List[Tuple[Circuit, Optional[ParamResolver]]]:
        if isinstance(circuits, Circuit):
            base: List[Circuit] = [circuits]
            single = True
        else:
            base = list(circuits)
            single = False
            for circuit in base:
                if not isinstance(circuit, Circuit):
                    raise RequestTypeError(
                        f"run() expects circuits, got {type(circuit).__name__}"
                    )
        if not base:
            raise InvalidRequestError("run() needs at least one circuit")
        if params is None:
            return [(circuit, None) for circuit in base]
        points = [as_resolver(point) for point in params]
        if single:
            # Sweep spec: one circuit crossed with every parameter point.
            return [(base[0], point) for point in points]
        if len(points) != len(base):
            raise InvalidRequestError(
                f"params length {len(points)} does not match circuit count {len(base)}"
            )
        return list(zip(base, points))

    def run(
        self,
        circuits,
        params: Optional[Sequence[SweepPoint]] = None,
        observables: Optional[Sequence[str]] = None,
        repetitions: int = 0,
        seed: Optional[int] = 0,
        jobs: int = 1,
        block: bool = True,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        objective=None,
        sampling: str = "auto",
        retry: Optional[RetryPolicy] = None,
        item_timeout: Union[None, float, str] = None,
        checkpoint: Optional[str] = None,
        job_id: Optional[str] = None,
        on_error: str = "raise",
        memory_budget: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        optimize: OptimizeSpec = None,
    ) -> Job:
        """Submit a batch of work items and return its :class:`Job`.

        Parameters
        ----------
        circuits:
            A single :class:`~repro.circuits.circuit.Circuit`, a sequence of
            circuits, or — together with ``params`` — a sweep spec (one
            circuit evaluated at every parameter point).
        params:
            Parameter points (resolvers / ``{symbol: value}`` mappings /
            ``None``).  With one circuit this is a sweep; with a circuit
            list it must match one-to-one.
        observables:
            Any of ``"samples"``, ``"probabilities"``, ``"state_vector"``,
            ``"expectation"``.  Defaults to ``("samples",)`` when
            ``repetitions > 0`` and ``("probabilities",)`` otherwise.
        repetitions:
            Samples per item (``"samples"`` is implied when positive).
        seed:
            Base seed; item ``i`` draws with ``seed + i``, making results
            independent of ``jobs`` and of grouping.  ``None`` leaves
            sampling nondeterministic.
        jobs:
            Worker processes.  ``1`` (default) runs inline on this device's
            own backend instances.
        block:
            ``False`` returns immediately; the job completes in the
            background (a pool is used even for ``jobs=1``).
        qubit_order, initial_bits:
            Shared qubit order / starting basis state for every item.
        objective:
            Required by ``"expectation"``: maps a probability vector to a
            scalar.  Must be picklable when the job runs on a pool.
        sampling:
            ``"auto"`` (default) draws exact samples from the compiled
            distribution on the knowledge-compilation backend when the item
            is ideal and small enough, ``"exact"`` requires that path,
            ``"gibbs"`` always runs the Gibbs chains.
        retry:
            A :class:`~repro.api.faults.RetryPolicy`; failed items re-run
            (with their original ``seed + index``) up to
            ``retry.max_attempts`` times when the failure is retryable
            (transient errors, crashed workers, item timeouts by default).
        item_timeout:
            Per-item wall-clock budget in seconds; a stuck worker is killed
            and the item fails with
            :class:`~repro.errors.JobTimeoutError` (retryable).  ``"auto"``
            uses the largest ``default_item_timeout`` declared by the routed
            backends.  Forces pooled execution so the item can be reaped.
        checkpoint:
            Journal directory: every finished item is durably checkpointed
            (atomic, fingerprinted) so :func:`repro.resume_job` can replay
            the batch after a crash without re-running completed items.
        job_id:
            Identifier within ``checkpoint`` (generated when omitted; read
            it back from ``Job.job_id``).  Requires ``checkpoint``.
        on_error:
            ``"raise"`` (default) raises an aggregated
            :class:`~repro.errors.JobError` when items fail terminally;
            ``"partial"`` returns the successful rows and records the
            failures on ``Job.failures()``.
        memory_budget:
            Per-item byte budget checked pre-dispatch against the routed
            backend's declared dense footprint (batch-aware: trajectory
            ensembles are charged ``min(repetitions, max_batch_size)``
            simultaneous ``2^n`` rows).  Auto devices downgrade an
            over-budget density-matrix route to trajectory sampling when
            capabilities allow; otherwise the item fails with
            :class:`~repro.errors.MemoryBudgetError` before any allocation.
        fault_injector:
            Test-only chaos hook (:class:`~repro.api.faults.FaultInjector`)
            invoked before every item evaluation.
        optimize:
            ``None``/``False`` (default) runs circuits exactly as given;
            ``"auto"``/``True`` rewrites each distinct circuit once with
            :func:`repro.circuits.passes.default_pipeline` before routing,
            classification and compilation, so smaller/Clifford-simplified
            circuits route and compile accordingly; a
            :class:`~repro.circuits.passes.PassPipeline` runs that pipeline.
            Per-circuit stats land on :attr:`last_optimization`.  Light-cone
            contract: for circuits containing measurement gates, optimized
            results are guaranteed to match unoptimized ones over the
            *measured* qubits (spectator wires may be pruned).

        Raises
        ------
        BackendCapabilityError
            If any item exceeds the routed backend's declared capabilities
            (raised before any work runs).
        ValueError
            For unknown observables or inconsistent arguments.
        """
        items = self._normalize_items(circuits, params)
        try:
            pipeline = resolve_pipeline(optimize)
        except ValueError as error:
            raise InvalidRequestError(str(error)) from error
        self.last_optimization = None
        if pipeline is not None:
            # Rewrite each distinct circuit exactly once, *before* journal
            # manifests, routing, classification and topology grouping: every
            # downstream layer (including resume) sees only the optimized
            # circuits, and per-call id()-keyed memos can never mix original
            # and rewritten gate objects.
            optimized_of: Dict[int, Circuit] = {}
            stats: List[PipelineStats] = []
            rewritten_items: List[Tuple[Circuit, Optional[ParamResolver]]] = []
            for circuit, resolver in items:
                optimized = optimized_of.get(id(circuit))
                if optimized is None:
                    result = pipeline.run(circuit)
                    optimized = result.circuit
                    optimized_of[id(circuit)] = optimized
                    stats.append(result.stats)
                rewritten_items.append((optimized, resolver))
            items = rewritten_items
            self.last_optimization = tuple(stats)
        if observables is None:
            observables = ("samples",) if repetitions > 0 else ("probabilities",)
        observables = list(observables)
        if repetitions and "samples" not in observables:
            observables.append("samples")
        unknown = set(observables) - set(OBSERVABLES)
        if unknown:
            raise InvalidRequestError(f"unknown observables: {sorted(unknown)}")
        if "expectation" in observables and objective is None:
            raise InvalidRequestError("the 'expectation' observable requires an objective callable")
        if "samples" in observables and repetitions <= 0:
            raise InvalidRequestError("the 'samples' observable requires repetitions > 0")
        if sampling not in ("auto", "exact", "gibbs"):
            raise InvalidRequestError(f"sampling must be 'auto', 'exact' or 'gibbs', got {sampling!r}")
        if on_error not in ("raise", "partial"):
            raise InvalidRequestError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
        if isinstance(item_timeout, str) and item_timeout != "auto":
            raise InvalidRequestError(
                f"item_timeout must be a number, None or 'auto', got {item_timeout!r}"
            )
        if job_id is not None and checkpoint is None:
            raise InvalidRequestError("job_id requires a checkpoint directory")

        ctx = {
            "observables": observables,
            "repetitions": repetitions,
            "seed": seed,
            "qubit_order": list(qubit_order) if qubit_order is not None else None,
            "initial_bits": list(initial_bits) if initial_bits is not None else None,
            "initial_state": bits_to_index(initial_bits) if initial_bits else 0,
            "objective": objective,
            "sampling": sampling,
            "fault_injector": fault_injector,
            # Cost-mode telemetry: index -> predicted seconds, attached to
            # each result row and used to pack pool chunks by cost.
            "predicted": {},
        }

        # Journal: load checkpointed rows first, so already-finished items
        # are excluded *before* routing and grouping — a fully checkpointed
        # resume performs zero compiles and zero evaluations.
        journal: Optional[JobJournal] = None
        preloaded: Dict[int, Dict] = {}
        if checkpoint is not None:
            journal = JobJournal(checkpoint, job_id)
            if not journal.has_manifest():
                journal.write_manifest(
                    {
                        "device": self._config,
                        "run": {
                            "circuits": [circuit for circuit, _ in items],
                            "params": [resolver for _, resolver in items],
                            "observables": list(observables),
                            "repetitions": repetitions,
                            "seed": seed,
                            "jobs": jobs,
                            "qubit_order": ctx["qubit_order"],
                            "initial_bits": ctx["initial_bits"],
                            "objective": objective,
                            "sampling": sampling,
                            "retry": retry,
                            "item_timeout": item_timeout,
                            "on_error": on_error,
                            "memory_budget": memory_budget,
                        },
                    }
                )
            preloaded = {
                index: row
                for index, row in journal.load_rows().items()
                if 0 <= index < len(items)
            }

        # Route every item, then group by (backend, topology): one compile
        # per distinct topology, one classification-and-canonicalization per
        # distinct circuit object.  Pre-dispatch rejections (capability or
        # memory-budget violations) become per-item failure records under
        # on_error="partial" instead of failing the whole submission.
        prefailures: List[ItemFailure] = []
        routed_backends: List[str] = []
        topology_of: Dict[int, str] = {}
        groups: "OrderedDict[Tuple[str, str], Dict]" = OrderedDict()
        for index, (circuit, resolver) in enumerate(items):
            if index in preloaded:
                continue
            num_qubits = (
                len(ctx["qubit_order"]) if ctx["qubit_order"] is not None else circuit.num_qubits
            )
            try:
                decision = self._route_item(
                    circuit, resolver, observables, num_qubits, repetitions=repetitions
                )
                decision = self._memory_guard(
                    decision, circuit, observables, num_qubits, memory_budget,
                    repetitions=repetitions,
                )
            except ReproError as error:
                if on_error == "partial":
                    prefailures.append(ItemFailure((index,), error, 1))
                    continue
                raise
            if decision.predicted_seconds is not None:
                ctx["predicted"][index] = decision.predicted_seconds
            routed_backends.append(decision.backend)
            topology = topology_of.get(id(circuit))
            if topology is None:
                topology = canonicalize_circuit(
                    circuit, qubit_order=ctx["qubit_order"], initial_bits=ctx["initial_bits"]
                ).topology_key
                topology_of[id(circuit)] = topology
            group = groups.get((decision.backend, topology))
            if group is None:
                group = {"circuits": [], "positions": {}, "items": []}
                groups[(decision.backend, topology)] = group
            pos = group["positions"].get(id(circuit))
            if pos is None:
                pos = len(group["circuits"])
                group["circuits"].append(circuit)
                group["positions"][id(circuit)] = pos
            group["items"].append((index, pos, resolver, decision.reason))

        if item_timeout == "auto":
            declared = [
                backend_capabilities(name).default_item_timeout
                for name in set(routed_backends)
                if name in REGISTRY
            ]
            declared = [value for value in declared if value is not None]
            item_timeout = max(declared) if declared else None

        fault_tolerant = (
            retry is not None
            or item_timeout is not None
            or journal is not None
            or fault_injector is not None
            or on_error == "partial"
        )
        if not fault_tolerant:
            if jobs <= 1 and block:
                rows: List[Tuple[int, Dict]] = []
                for (backend, topology), group in groups.items():
                    sim = self.backend_instance(backend)
                    master = (
                        self._kc_group_master(sim, group["circuits"][0], topology, ctx)
                        if backend == KC_BACKEND
                        else None
                    )
                    rows.extend(
                        _evaluate_items(
                            sim, backend, group["circuits"], group["items"], ctx,
                            group_master=master,
                        )
                    )
                return completed(rows, assemble=_assemble_batch)
            return self._run_pooled(groups, ctx, jobs=jobs, block=block)

        fault = {
            "retry": retry,
            "item_timeout": item_timeout,
            "on_error": on_error,
            "journal": journal,
            "preloaded_rows": list(preloaded.items()),
            "prefailures": prefailures,
        }
        # Item timeouts need a killable worker per item, so they force the
        # pooled engine even for jobs=1.
        if jobs <= 1 and block and item_timeout is None:
            tasks = []
            for (backend, topology), group in groups.items():
                sim = self.backend_instance(backend)
                master = (
                    self._kc_group_master(sim, group["circuits"][0], topology, ctx)
                    if backend == KC_BACKEND
                    else None
                )
                # One shared memo per group keeps per-item dispatch
                # compile-once: rebinds / shared tableaux computed by one
                # item task are reused by the rest (tasks run serially in
                # this process).
                group_memo: Dict = {}
                for item in group["items"]:
                    tasks.append(
                        (
                            _run_chunk_local,
                            {
                                "sim": sim,
                                "backend": backend,
                                "circuits": group["circuits"],
                                "items": [item],
                                "ctx": ctx,
                                "master": master,
                                "memo": group_memo,
                            },
                            (item[0],),
                            f"item-{item[0]}",
                        )
                    )
            return submit(
                tasks,
                jobs=1,
                block=True,
                assemble=_assemble_batch,
                retry=retry,
                on_error=on_error,
                journal=journal,
                preloaded_rows=fault["preloaded_rows"],
                prefailures=prefailures,
            )
        return self._run_pooled(groups, ctx, jobs=jobs, block=block, fault=fault)

    # ------------------------------------------------------------------
    def _run_pooled(self, groups, ctx, jobs: int, block: bool, fault=None) -> Job:
        cleanup: Optional[tempfile.TemporaryDirectory] = None
        cache_dir: Optional[str] = None
        kc_groups = [
            (topology, group)
            for (backend, topology), group in groups.items()
            if backend == KC_BACKEND
        ]
        kc_options: Dict[str, Any] = {}
        if kc_groups:
            sim = self.backend_instance(KC_BACKEND)
            kc_options = {
                "order_method": sim.order_method,
                "elide_internal": sim.elide_internal,
            }
            cache = sim.cache
            if cache is not None and cache.directory is not None:
                cache_dir = cache.directory
            else:
                cleanup = tempfile.TemporaryDirectory(prefix="repro-device-cache-")
                cache_dir = cleanup.name
            # Compile (or fetch — the device memoizes per topology) each
            # distinct topology once in the parent and persist it, so
            # workers hydrate instead of recompiling.
            for topology, group in kc_groups:
                compiled = self._kc_group_master(sim, group["circuits"][0], topology, ctx)
                persist_compile(
                    sim,
                    compiled,
                    cache_dir,
                    qubit_order=ctx["qubit_order"],
                    initial_bits=ctx["initial_bits"],
                )

        total_items = sum(len(group["items"]) for group in groups.values())
        chunk_size = max(1, math.ceil(total_items / max(1, jobs * 2)))
        predicted = ctx.get("predicted") or {}
        # Cost-aware packing target: split the batch's *predicted* runtime
        # (not its item count) evenly over ~2 chunks per worker, so one
        # expensive item no longer drags a whole uniform chunk behind it.
        cost_target = (
            sum(predicted.values()) / max(1, jobs * 2) if predicted else 0.0
        )
        if fault is not None:
            # Fault-tolerant pools retry, time out and checkpoint *per item*,
            # so every task carries exactly one item.
            chunk_size = 1
            cost_target = 0.0
        tasks = []
        for (backend, _topology), group in groups.items():
            options = kc_options if backend == KC_BACKEND else self._backend_options.get(backend, {})
            for chunk in _pack_chunks(group["items"], chunk_size, predicted, cost_target):
                payload = {
                    "backend": backend,
                    "backend_options": options,
                    "cache_dir": cache_dir if backend == KC_BACKEND else None,
                    "circuits": group["circuits"],
                    "items": chunk,
                    "ctx": ctx,
                }
                if fault is not None:
                    indices = tuple(item[0] for item in chunk)
                    tasks.append((_run_chunk, payload, indices, f"item-{indices[0]}"))
                else:
                    tasks.append((_run_chunk, payload))
        if fault is not None:
            job = submit(
                tasks,
                jobs=jobs,
                block=block,
                assemble=_assemble_batch,
                retry=fault["retry"],
                item_timeout=fault["item_timeout"],
                on_error=fault["on_error"],
                journal=fault["journal"],
                preloaded_rows=fault["preloaded_rows"],
                prefailures=fault["prefailures"],
            )
        else:
            job = submit(tasks, jobs=jobs, block=block, assemble=_assemble_batch)
        if cleanup is not None:
            if block and job.done():
                cleanup.cleanup()
            else:
                # Keep the temporary cache alive as long as the job handle;
                # TemporaryDirectory's finalizer removes it afterwards.
                job._owned_tmpdir = cleanup
        return job

    def __repr__(self) -> str:
        if self.backend == "auto":
            return f"<Device auto fallback={self._fallback!r} noisy={self._noisy_fallback!r}>"
        return f"<Device backend={self.backend!r}>"


def device(
    backend: str = "auto",
    seed: Optional[int] = None,
    fallback: Optional[str] = None,
    noisy_fallback: Optional[str] = None,
    routing: str = "rules",
    cost_model: Union[None, str, CostModel] = None,
    **backend_options,
) -> Device:
    """Open an execution device: ``repro.device("auto").run([...])``.

    ``backend`` is a registered backend name (see
    :func:`repro.api.registry.list_backends`) or ``"auto"`` for
    capability-driven per-item routing; ``routing="cost"`` ranks capable
    backends with a calibrated cost model (``cost_model`` is a
    :class:`~repro.api.costmodel.CostModel` or artifact path, defaulting to
    the ambient artifact).  Extra keyword arguments are passed to the
    backend's constructor (fixed-name devices only).
    """
    options: Optional[Dict[str, Dict]] = None
    if backend_options:
        if backend in ("auto", "hybrid"):
            raise BackendCapabilityError(
                "backend options require a fixed backend name, not 'auto'"
            )
        options = {REGISTRY.resolve(backend): backend_options}
    return Device(
        backend=backend,
        seed=seed,
        fallback=fallback,
        noisy_fallback=noisy_fallback,
        backend_options=options,
        routing=routing,
        cost_model=cost_model,
    )
