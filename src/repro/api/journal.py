"""Persistent job journal: checkpoint/resume for ``Device.run`` batches.

A :class:`JobJournal` is a per-job directory holding one *manifest*
describing the submission well enough to re-create it, plus an append-only
*write-ahead log* of content-fingerprinted item checkpoints.  The
durability discipline mirrors the PR 3 compiled-circuit cache:

* the manifest is written to a temporary name and published with
  ``os.replace``, so a reader (or a crash) can never observe a torn pickle;
* every item record in the log carries the SHA-256 of its own pickled
  bytes; a record whose re-hashed bytes disagree (truncation mid-append,
  corruption, torn storage) loads as *missing* and the item simply re-runs
  — corruption can cost work, never correctness.

Item checkpoints land on the hot path of every fault-tolerant run, which is
why they share one log file instead of a file per item: appending a record
is a single ``write`` on a descriptor opened once per journal, roughly an
order of magnitude cheaper than a create + rename pair per item, and it is
what keeps the fault-free overhead of checkpointing within the benchmark
budget (see ``benchmarks/test_bench_robustness.py``).

Because every observable is deterministic given the item's parameter binding
and its ``seed + index`` (samples are seeded draws, probabilities and state
vectors are pure functions), :func:`resume_job` after SIGKILL replays nothing
already checkpointed and still returns results bit-identical to an
uninterrupted run.

Layout under ``directory``::

    <directory>/<job_id>/manifest.pkl       # the submission spec
    <directory>/<job_id>/rows.wal           # append-only item checkpoints

The default directory comes from the ``REPRO_JOB_DIR`` environment variable.
Only resume journals you trust: entries are Python pickles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import uuid
from typing import Any, Dict, Optional, Tuple

from ..atomicio import atomic_write_bytes
from ..errors import JobError

#: Environment variable naming the default journal directory.
JOB_DIR_ENV = "REPRO_JOB_DIR"

#: On-disk journal format; bump on incompatible changes.
JOURNAL_FORMAT = 1

#: Name of the per-job item-checkpoint log.
WAL_NAME = "rows.wal"

#: Leading bytes of every item record; doubles as the format version tag.
_WAL_MAGIC = b"RJW1"

#: Record header: magic, payload length, SHA-256 digest of the payload.
_WAL_HEADER = struct.Struct(">4sI32s")


def new_job_id() -> str:
    """A fresh collision-resistant job identifier."""
    return uuid.uuid4().hex[:12]


def _atomic_write(path: str, data: bytes) -> None:
    """Publish ``data`` at ``path`` via the audited atomic-write helper.

    Manifests are written once per job (item checkpoints go through the
    ``O_APPEND`` WAL instead), so the helper's fsync-before-rename cost is
    off the hot path; its pid-qualified temp name keeps concurrent resumers
    from clobbering each other's half-written temporaries.
    """
    atomic_write_bytes(path, data)


class JobJournal:
    """Checkpoint store for one job (see the module docstring).

    Parameters
    ----------
    directory:
        Root journal directory; the job's subdirectory is created on first
        write.
    job_id:
        Identifier of the job within ``directory``; generated when omitted.
    """

    def __init__(self, directory: str, job_id: Optional[str] = None):
        self.directory = os.fspath(directory)
        self.job_id = job_id or new_job_id()
        self.path = os.path.join(self.directory, self.job_id)
        self._prepared = False
        self._wal_fd: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def wal_path(self) -> str:
        return os.path.join(self.path, WAL_NAME)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, "manifest.pkl")

    def _prepare(self) -> None:
        if not self._prepared:
            os.makedirs(self.path, exist_ok=True)
            self._prepared = True

    def _write(self, path: str, record: Dict[str, Any]) -> None:
        self._prepare()
        _atomic_write(path, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))

    @staticmethod
    def _read(path: str) -> Optional[Dict[str, Any]]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except Exception:  # reprolint: disable=broad-except -- a corrupt or foreign manifest degrades to "no manifest"; resume re-runs from scratch
            return None
        if not isinstance(record, dict) or record.get("format") != JOURNAL_FORMAT:
            return None
        return record

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Persist the submission spec (atomic; overwrites an existing one)."""
        self._write(
            self.manifest_path,
            {"format": JOURNAL_FORMAT, "job_id": self.job_id, "manifest": manifest},
        )

    def has_manifest(self) -> bool:
        return os.path.exists(self.manifest_path)

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        """The stored submission spec, or ``None`` when absent/unreadable."""
        record = self._read(self.manifest_path)
        return None if record is None else record["manifest"]

    # ------------------------------------------------------------------
    # Item checkpoints (append-only write-ahead log)
    # ------------------------------------------------------------------
    def checkpoint_row(self, index: int, row: Any) -> None:
        """Durably record one finished item (single append, fingerprinted).

        The record — header plus payload — goes out in one ``write`` on an
        ``O_APPEND`` descriptor, so it is fully on its way to the page cache
        before the next item starts; a crash (even SIGKILL) after this call
        returns cannot lose it.  Checkpointing is best-effort: an unwritable
        directory or an unpicklable row degrades to "not checkpointed" (the
        item re-runs on resume) instead of failing the job.
        """
        try:
            payload = pickle.dumps((int(index), row), protocol=pickle.HIGHEST_PROTOCOL)
            header = _WAL_HEADER.pack(
                _WAL_MAGIC, len(payload), hashlib.sha256(payload).digest()
            )
            if self._wal_fd is None:
                self._prepare()
                self._wal_fd = os.open(
                    self.wal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(self._wal_fd, header + payload)
        except Exception:  # reprolint: disable=broad-except -- checkpointing is best-effort by contract; a lost checkpoint only re-runs the item on resume
            pass

    def close(self) -> None:
        """Release the log descriptor (reopened lazily on the next append)."""
        if self._wal_fd is not None:
            try:
                os.close(self._wal_fd)
            except OSError:
                pass
            self._wal_fd = None

    def __del__(self):
        self.close()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_wal_fd"] = None  # descriptors do not cross process boundaries
        return state

    def _scan(self) -> Dict[int, Tuple[int, int, Any]]:
        """Parse the log; index -> (payload offset, payload length, row).

        Validation is per record: a fingerprint or unpickling failure skips
        just that record (its length header still locates the next one); a
        bad magic or an out-of-range length ends the scan — that is either
        the torn tail of an interrupted append or corruption severe enough
        that no later boundary can be trusted.  Later records win on
        duplicate indices, so a resumed run simply appends.
        """
        rows: Dict[int, Tuple[int, int, Any]] = {}
        try:
            with open(self.wal_path, "rb") as handle:
                data = handle.read()
        except OSError:
            return rows
        offset = 0
        while offset + _WAL_HEADER.size <= len(data):
            magic, length, digest = _WAL_HEADER.unpack_from(data, offset)
            start = offset + _WAL_HEADER.size
            if magic != _WAL_MAGIC or length > len(data) - start:
                break
            payload = data[start : start + length]
            offset = start + length
            if hashlib.sha256(payload).digest() != digest:
                continue
            try:
                index, row = pickle.loads(payload)
            except Exception:  # reprolint: disable=broad-except -- the fingerprint localises damage to this record; skipping it re-runs one item
                continue
            if isinstance(index, int):
                rows[index] = (start, length, row)
        return rows

    def load_row(self, index: int) -> Optional[Any]:
        """The checkpointed row for ``index``; ``None`` on miss or corruption."""
        entry = self._scan().get(index)
        return None if entry is None else entry[2]

    def load_rows(self) -> Dict[int, Any]:
        """Every valid checkpointed row, keyed by item index."""
        return {index: row for index, (_, _, row) in self._scan().items()}

    def completed_indices(self):
        """Indices with a valid checkpoint (validates every record)."""
        return set(self._scan())

    def __repr__(self) -> str:
        return f"JobJournal(job_id={self.job_id!r}, path={self.path!r})"


def resume_job(
    job_id: str,
    directory: Optional[str] = None,
    jobs: Optional[int] = None,
    block: bool = True,
):
    """Resume a checkpointed :meth:`~repro.api.device.Device.run` batch.

    Re-creates the device and submission from the job's manifest and re-runs
    *only* the items without a valid checkpoint; already-checkpointed rows
    are loaded, not recomputed (a fully checkpointed job performs zero
    compiles and zero evaluations).  Returns the resumed
    :class:`~repro.api.scheduler.Job`, whose result is bit-identical to an
    uninterrupted run.

    Parameters
    ----------
    job_id:
        The identifier under which the original run checkpointed
        (``Job.job_id``).
    directory:
        The journal directory of the original run; defaults to the
        ``REPRO_JOB_DIR`` environment variable.
    jobs, block:
        Override the original worker count / run the resume asynchronously.

    Raises
    ------
    JobError
        When no readable manifest exists for ``job_id``.
    """
    directory = directory or os.environ.get(JOB_DIR_ENV)
    if not directory:
        raise JobError(
            "resume_job needs a journal directory: pass directory=... or set "
            f"the {JOB_DIR_ENV} environment variable"
        )
    journal = JobJournal(directory, job_id)
    manifest = journal.load_manifest()
    if manifest is None:
        raise JobError(f"no job manifest for job_id {job_id!r} under {directory!r}")

    from .device import Device

    device = Device(**manifest["device"])
    kwargs = dict(manifest["run"])
    if jobs is not None:
        kwargs["jobs"] = jobs
    return device.run(
        kwargs.pop("circuits"),
        checkpoint=directory,
        job_id=job_id,
        block=block,
        **kwargs,
    )


__all__ = ["JOB_DIR_ENV", "JobJournal", "new_job_id", "resume_job"]
