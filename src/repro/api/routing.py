"""Per-circuit backend routing shared by ``Device`` and ``HybridSimulator``.

:func:`select_backend` is the single routing rule of the code base: it
classifies one circuit (via :func:`repro.circuits.clifford.classify_circuit`)
and names the backend that should run it.  ``Device`` extends the rule with
observable-aware constraints (dense reconstruction caps, phase-consistent
state vectors) in :meth:`repro.api.device.Device` — both layers produce
:class:`BackendDecision` records so callers can assert *why* a circuit went
where it did.

Routing rules (``mode="rules"``, the default)
---------------------------------------------
* all gates Clifford, no noise  -> ``stabilizer`` for both entry points;
* all gates Clifford, all noise single-qubit Pauli mixtures ->
  ``stabilizer`` for ``sample`` (stochastic Pauli unravelling); ``simulate``
  falls back, because a tableau holds a pure stabilizer state, not a mixed
  state;
* anything else -> the fallback backend **if it is capable of the item**;
  an incapable fallback (e.g. a noisy 20-qubit ``simulate`` against the
  13-qubit density matrix) is replaced by the cheapest capable backend in
  :data:`FALLBACK_PREFERENCE` order, and
  :class:`~repro.errors.BackendCapabilityError` is raised only when *no*
  registered backend can serve the item.

Cost-model routing (``mode="cost"``)
------------------------------------
With a calibrated :class:`~repro.api.costmodel.CostModel` (passed
explicitly or resolved via
:func:`~repro.api.costmodel.default_cost_model`), the decision becomes:
enumerate the capable backends, predict each one's runtime from the item's
features, and pick the predicted-fastest.  Capability and memory-budget
filters run *before* the ranking, so the cost path can never select a
backend the rules path would reject.  When no model (or no priced capable
backend) is available the rules path decides, so ``mode="cost"`` is always
safe to request.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.clifford import CircuitClass, classify_circuit
from ..circuits.parameters import ParamResolver
from ..errors import BackendCapabilityError, CostModelError
from .capabilities import BackendCapabilities

#: Static cheapest-first substitution order used when the requested
#: fallback cannot serve an item: dense ``2^n`` state first, then batched
#: Monte Carlo trajectories, the ``4^n`` density matrix, contraction-based
#: and compile-heavy backends, and finally the (input-restricted) tableau.
FALLBACK_PREFERENCE: Tuple[str, ...] = (
    "state_vector",
    "trajectory",
    "density_matrix",
    "tensor_network",
    "knowledge_compilation",
    "stabilizer",
)


class BackendDecision(NamedTuple):
    """One routing decision: the chosen backend name plus the reason.

    ``predicted_seconds`` is populated by cost-model routing
    (``mode="cost"``) and ``None`` on the rule-based path.
    """

    backend: str
    reason: str
    predicted_seconds: Optional[float] = None


def _is_capable(
    caps: BackendCapabilities,
    classification: CircuitClass,
    num_qubits: int,
    sampling: bool,
    repetitions: int = 0,
    memory_budget: Optional[int] = None,
) -> bool:
    """Mirror of ``Device._validate_capabilities`` for pre-dispatch filtering."""
    if caps.max_qubits is not None and num_qubits > caps.max_qubits:
        return False
    if caps.clifford_only:
        if not classification.clifford:
            return False
        if classification.has_noise and not (classification.pauli_noise and sampling):
            return False
    if classification.has_noise:
        if not caps.supports_noise():
            return False
        if sampling and not caps.noisy_sampling:
            return False
        # The simulate route deliberately does NOT require ``mixed_state``:
        # pure-state backends serve noisy simulate by stochastic
        # unravelling (one sampled trajectory per run), and ``Device``
        # enforces mixed-state output only for the observables that truly
        # need it ("probabilities"/"expectation").
    if memory_budget is not None:
        estimate = caps.estimated_memory_bytes(
            num_qubits, batch_size=max(1, repetitions)
        )
        if estimate is not None and estimate > memory_budget:
            return False
    return True


def capable_backends(
    circuit: Circuit,
    resolver: Optional[ParamResolver] = None,
    sampling: bool = True,
    repetitions: int = 0,
    memory_budget: Optional[int] = None,
    candidates: Optional[Sequence[str]] = None,
) -> List[str]:
    """Registered backends whose declared capabilities can serve ``circuit``.

    Sorted by name for determinism; ``candidates`` restricts the pool
    (names are resolved through registry aliases).
    """
    from .registry import REGISTRY, backend_capabilities

    classification = classify_circuit(circuit, resolver)
    num_qubits = circuit.num_qubits
    pool = REGISTRY.names() if candidates is None else [
        REGISTRY.resolve(name) for name in candidates
    ]
    return sorted(
        name
        for name in set(pool)
        if _is_capable(
            backend_capabilities(name),
            classification,
            num_qubits,
            sampling,
            repetitions=repetitions,
            memory_budget=memory_budget,
        )
    )


def _capable_fallback(
    fallback: str,
    reason: str,
    circuit: Circuit,
    classification: CircuitClass,
    sampling: bool,
    repetitions: int,
    memory_budget: Optional[int],
) -> BackendDecision:
    """``fallback`` if it can serve the item, else the cheapest capable backend."""
    from .registry import REGISTRY, backend_capabilities

    num_qubits = circuit.num_qubits
    if fallback not in REGISTRY:
        # Unregistered fallbacks (attached instances, tests) keep the old
        # contract: the caller promised the backend can run the item.
        return BackendDecision(fallback, reason)
    canonical = REGISTRY.resolve(fallback)
    if _is_capable(
        backend_capabilities(canonical),
        classification,
        num_qubits,
        sampling,
        repetitions=repetitions,
        memory_budget=memory_budget,
    ):
        return BackendDecision(canonical, reason)
    for candidate in FALLBACK_PREFERENCE:
        if candidate == canonical or candidate not in REGISTRY:
            continue
        if _is_capable(
            backend_capabilities(candidate),
            classification,
            num_qubits,
            sampling,
            repetitions=repetitions,
            memory_budget=memory_budget,
        ):
            return BackendDecision(
                candidate,
                f"{reason}; fallback {canonical!r} cannot serve this item "
                f"({num_qubits} qubits, noisy={classification.has_noise}), "
                f"substituted cheapest capable backend",
            )
    raise BackendCapabilityError(
        f"no registered backend can serve this item: {num_qubits} qubits, "
        f"noisy={classification.has_noise}, sampling={sampling} "
        f"(fallback {canonical!r} and every substitute are incapable)"
    )


def select_backend(
    circuit: Circuit,
    resolver: Optional[ParamResolver] = None,
    fallback: str = "state_vector",
    sampling: bool = True,
    mode: str = "rules",
    cost_model: Optional[object] = None,
    repetitions: int = 0,
    memory_budget: Optional[int] = None,
) -> BackendDecision:
    """Choose the backend for ``circuit``.

    ``mode="rules"`` (default) applies the classification rules above:
    stabilizer for Clifford work, otherwise the cheapest *capable* backend
    starting from ``fallback``.  ``mode="cost"`` ranks the capable backends
    with a calibrated cost model and picks the predicted-fastest, falling
    back to the rules when no model is available.  ``sampling=False`` asks
    for the ``simulate`` route, where noisy circuits always leave the
    tableau (it cannot represent a mixed state).

    ``repetitions`` and ``memory_budget`` refine capability filtering (the
    trajectory ensemble's batch-aware memory estimate) and, in cost mode,
    the runtime prediction.
    """
    if mode not in ("rules", "cost"):
        raise BackendCapabilityError(
            f"routing mode must be 'rules' or 'cost', got {mode!r}"
        )
    classification = classify_circuit(circuit, resolver)
    if mode == "cost":
        decision = _select_by_cost(
            circuit, resolver, classification, sampling, cost_model,
            repetitions, memory_budget,
        )
        if decision is not None:
            return decision
        # No model / no priced capable backend: the rules decide.
    if classification.clifford and classification.pauli_noise:
        if classification.has_noise:
            if sampling:
                return BackendDecision("stabilizer", "clifford + pauli-noise")
            return _capable_fallback(
                fallback,
                "noisy simulate needs a mixed-state representation",
                circuit, classification, sampling, repetitions, memory_budget,
            )
        return BackendDecision("stabilizer", "clifford")
    return _capable_fallback(
        fallback,
        classification.blocker or "non-clifford circuit",
        circuit, classification, sampling, repetitions, memory_budget,
    )


def _select_by_cost(
    circuit: Circuit,
    resolver: Optional[ParamResolver],
    classification: CircuitClass,
    sampling: bool,
    cost_model: Optional[object],
    repetitions: int,
    memory_budget: Optional[int],
) -> Optional[BackendDecision]:
    """The cost-ranked decision, or ``None`` when the rules must decide."""
    from .costmodel import CostModel, default_cost_model, extract_features

    model = cost_model if cost_model is not None else default_cost_model()
    if model is None:
        return None
    if not isinstance(model, CostModel):
        raise CostModelError(
            f"cost_model must be a repro.api.costmodel.CostModel, got {type(model).__name__}"
        )
    candidates = capable_backends(
        circuit,
        resolver,
        sampling=sampling,
        repetitions=repetitions,
        memory_budget=memory_budget,
    )
    if not candidates:
        # Preserve the rules path's typed error for impossible items.
        return None
    features = extract_features(circuit, resolver, repetitions=repetitions)
    ranked = model.rank(features, candidates)
    if not ranked:
        return None
    best, seconds = ranked[0]
    return BackendDecision(
        best,
        f"cost model v{model.version}: predicted {seconds:.4g}s, "
        f"fastest of {len(ranked)} priced capable backend(s)",
        predicted_seconds=seconds,
    )
