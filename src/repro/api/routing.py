"""Per-circuit backend routing shared by ``Device`` and ``HybridSimulator``.

:func:`select_backend` is the single routing rule of the code base: it
classifies one circuit (via :func:`repro.circuits.clifford.classify_circuit`)
and names the backend that should run it.  ``Device`` extends the rule with
observable-aware constraints (dense reconstruction caps, phase-consistent
state vectors) in :meth:`repro.api.device.Device` — both layers produce
:class:`BackendDecision` records so callers can assert *why* a circuit went
where it did.

Routing rules
-------------
* all gates Clifford, no noise  -> ``stabilizer`` for both entry points;
* all gates Clifford, all noise single-qubit Pauli mixtures ->
  ``stabilizer`` for ``sample`` (stochastic Pauli unravelling); ``simulate``
  falls back, because a tableau holds a pure stabilizer state, not a mixed
  state;
* anything else -> the fallback backend, with the blocking operation named
  in the decision's reason.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..circuits.circuit import Circuit
from ..circuits.clifford import classify_circuit
from ..circuits.parameters import ParamResolver


class BackendDecision(NamedTuple):
    """One routing decision: the chosen backend name plus the reason."""

    backend: str
    reason: str


def select_backend(
    circuit: Circuit,
    resolver: Optional[ParamResolver] = None,
    fallback: str = "state_vector",
    sampling: bool = True,
) -> BackendDecision:
    """Choose the backend for ``circuit``: ``"stabilizer"`` or ``fallback``.

    ``sampling=False`` asks for the ``simulate`` route, where noisy circuits
    always fall back (a tableau cannot represent a mixed state).
    """
    classification = classify_circuit(circuit, resolver)
    if classification.clifford and classification.pauli_noise:
        if classification.has_noise:
            if sampling:
                return BackendDecision("stabilizer", "clifford + pauli-noise")
            return BackendDecision(
                fallback, "noisy simulate needs a mixed-state representation"
            )
        return BackendDecision("stabilizer", "clifford")
    return BackendDecision(fallback, classification.blocker or "non-clifford circuit")
