"""Declared backend capabilities consumed by the registry and router.

Each backend registers one :class:`BackendCapabilities` record describing
what it can actually do; :meth:`repro.api.device.Device` validates every
work item against the record *before* running anything, so capability
violations surface as :class:`~repro.errors.BackendCapabilityError` with the
backend and limit named instead of a deep backend-specific failure.

The records intentionally describe the *existing* backends — they are the
single source of truth behind ``docs/api.md``'s capability matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Noise-support levels, from none to arbitrary Kraus channels.
NOISE_NONE = "none"
NOISE_PAULI = "pauli"
NOISE_GENERAL = "general"


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend declares it can simulate.

    Attributes
    ----------
    name:
        Registry name (matches ``Simulator.name``).
    max_qubits:
        Hard qubit ceiling enforced before execution, or ``None`` for
        "polynomial cost, effectively unbounded".  Dense backends declare
        the count at which their state no longer fits laptop memory.
    noise:
        ``"none"`` (ideal circuits only), ``"pauli"`` (single-qubit Pauli
        mixtures), or ``"general"`` (arbitrary Kraus channels).
    clifford_only:
        Only Clifford-group gates are accepted (the stabilizer tableau).
    mixed_state:
        ``simulate`` can return a mixed state for noisy circuits.  Backends
        without it must refuse noisy ``simulate`` calls (sampling may still
        be supported through trajectory unravelling).
    batched_sampling:
        The backend has a natively batched sampling path, so grouping many
        work items onto one instance beats a per-item loop.
    noisy_sampling:
        ``sample`` handles noisy circuits (even when ``mixed_state`` is
        false, e.g. via per-shot trajectories).
    memory_exponent:
        Memory-cost metadata for pre-dispatch budgeting: the backend's
        working state scales as ``16 * (2**memory_exponent)**n`` bytes
        (``1`` for a dense ``2^n`` state vector, ``2`` for a ``4^n`` density
        matrix / superoperator).  ``None`` means polynomial in ``n`` —
        exempt from memory-budget guards.
    batch_memory:
        The backend's working state carries a leading batch axis (the
        trajectory backend's lockstep ``(B, 2^n)`` ensemble), so its
        footprint scales with the number of simultaneous shots, not just
        ``n``.  Backends that loop shots serially (per-shot trajectories on
        the state-vector backend) keep this ``False``.
    max_batch_size:
        Cap on the simultaneous batch: larger submissions are processed in
        chunks of this many rows, bounding peak memory at
        ``O(max_batch_size * 2^(memory_exponent * n))``.  ``None`` leaves
        the batch axis unbounded.
    default_item_timeout:
        Suggested per-item wall-clock budget (seconds) for fault-tolerant
        submissions that pass ``item_timeout="auto"``; ``None`` leaves items
        unbounded on this backend.
    description:
        One-line human-readable summary for the capability matrix.
    """

    name: str
    max_qubits: Optional[int] = None
    noise: str = NOISE_NONE
    clifford_only: bool = False
    mixed_state: bool = False
    batched_sampling: bool = False
    noisy_sampling: bool = False
    memory_exponent: Optional[int] = None
    batch_memory: bool = False
    max_batch_size: Optional[int] = None
    default_item_timeout: Optional[float] = None
    description: str = ""
    aliases: Tuple[str, ...] = field(default_factory=tuple)

    def supports_noise(self) -> bool:
        return self.noise != NOISE_NONE

    def estimated_memory_bytes(self, num_qubits: int, batch_size: int = 1) -> Optional[int]:
        """Estimated dense working-state bytes for one ``num_qubits`` item.

        ``None`` when the backend's footprint is polynomial in ``n`` (the
        memory-budget guard then lets the item through).  The estimate is
        the dominant complex128 allocation — ``16 * 2**(exponent * n)`` —
        times the simultaneous batch for backends whose state carries a
        batch axis (``batch_memory``): the trajectory backend holds a
        ``(B, 2^n)`` ensemble, clamped at ``max_batch_size`` rows by its
        chunked execution.  Backends that loop shots serially ignore
        ``batch_size``.
        """
        if self.memory_exponent is None:
            return None
        per_row = 16 * (1 << (self.memory_exponent * num_qubits))
        if not self.batch_memory:
            return per_row
        rows = max(1, batch_size)
        if self.max_batch_size is not None:
            rows = min(rows, self.max_batch_size)
        return per_row * rows

    def matrix_row(self) -> Dict[str, object]:
        """Plain-dict row for the docs capability matrix."""
        return {
            "backend": self.name,
            "max_qubits": "poly(n)" if self.max_qubits is None else self.max_qubits,
            "noise": self.noise,
            "clifford_only": self.clifford_only,
            "mixed_state": self.mixed_state,
            "batched_sampling": self.batched_sampling,
            "noisy_sampling": self.noisy_sampling,
            "memory": (
                "poly(n)"
                if self.memory_exponent is None
                else f"16*{1 << self.memory_exponent}^n B"
            ),
        }
