"""Async job scheduling over a process pool.

The execution layer behind :meth:`repro.api.device.Device.run` and the
experiment harness.  A :class:`Job` owns a set of *tasks* — picklable
``(function, payload)`` pairs where ``function`` is module-level and returns
``[(item_index, row), ...]`` — and runs them either inline (serial,
blocking) or on a :class:`~concurrent.futures.ProcessPoolExecutor`:

* ``Job.status()`` reports ``pending`` / ``running`` / ``done`` /
  ``failed`` / ``cancelled``;
* ``Job.result()`` blocks for completion and returns the assembled rows in
  item order;
* ``Job.partial_results()`` and ``Job.stream()`` expose per-item rows as
  tasks complete (streaming partial results);
* ``Job.cancel()`` cancels every not-yet-started task; tasks already
  running finish, and their rows stay available through
  ``partial_results()``.

Worker failures propagate with their **original exception type**: the
worker catches the error, returns it as data, and the parent re-raises it
with the worker traceback attached as the ``__cause__`` (a
:class:`~repro.errors.JobError` carrying the formatted remote traceback).
Unpicklable exceptions degrade to a :class:`~repro.errors.JobError`
describing the original.
"""

from __future__ import annotations

import pickle
import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import JobCancelledError, JobError

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class _RemoteFailure:
    """A worker exception captured as data so its type survives the pool."""

    def __init__(self, error: BaseException):
        self.traceback = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        try:
            pickle.dumps(error)
            self.error: BaseException = error
        except Exception:
            self.error = JobError(f"unpicklable worker error: {error!r}")

    def reraise(self) -> None:
        raise self.error from JobError(f"worker traceback:\n{self.traceback}")


def run_task(task: Tuple[Callable, Any]):
    """Module-level worker entry point: run one task, capture failures as data."""
    function, payload = task
    try:
        return function(payload)
    except BaseException as error:  # noqa: BLE001 - repackaged for the parent
        return _RemoteFailure(error)


class Job:
    """Handle on one batch submission (see the module docstring).

    Created by :func:`submit`; not constructed directly by users.
    """

    def __init__(self, assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None):
        self._assemble = assemble
        self._lock = threading.Condition()
        self._rows: Dict[int, Any] = {}
        self._status = PENDING
        self._failure: Optional[_RemoteFailure] = None
        self._futures: List[Future] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pending_tasks = 0

    # ------------------------------------------------------------------
    # Construction paths (used by submit()).
    # ------------------------------------------------------------------
    def _run_inline(self, tasks: Sequence[Tuple[Callable, Any]]) -> "Job":
        self._status = RUNNING
        for task in tasks:
            with self._lock:
                if self._status == CANCELLED:
                    return self
            outcome = run_task(task)
            self._record(outcome)
            if self._failure is not None:
                break
        with self._lock:
            if self._status == RUNNING:
                self._status = FAILED if self._failure is not None else DONE
            self._lock.notify_all()
        return self

    def _run_pooled(self, tasks: Sequence[Tuple[Callable, Any]], jobs: int) -> "Job":
        self._status = RUNNING
        self._executor = ProcessPoolExecutor(max_workers=max(1, min(jobs, len(tasks))))
        self._pending_tasks = len(tasks)
        for task in tasks:
            future = self._executor.submit(run_task, task)
            self._futures.append(future)
            future.add_done_callback(self._on_task_done)
        return self

    # ------------------------------------------------------------------
    def _record(self, outcome: Any) -> None:
        with self._lock:
            if isinstance(outcome, _RemoteFailure):
                if self._failure is None:
                    self._failure = outcome
            else:
                for index, row in outcome:
                    self._rows[index] = row
            self._lock.notify_all()

    def _on_task_done(self, future: Future) -> None:
        if not future.cancelled():
            try:
                self._record(future.result())
            except BaseException as error:  # pool infrastructure failure
                self._record(_RemoteFailure(error))
        with self._lock:
            self._pending_tasks -= 1
            if self._pending_tasks == 0:
                if self._status == RUNNING:
                    self._status = FAILED if self._failure is not None else DONE
                self._shutdown()
            self._lock.notify_all()

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------------
    # Public lifecycle API.
    # ------------------------------------------------------------------
    def status(self) -> str:
        """One of ``pending`` / ``running`` / ``done`` / ``failed`` / ``cancelled``."""
        with self._lock:
            return self._status

    def done(self) -> bool:
        """True once no further rows will arrive."""
        return self.status() in (DONE, FAILED, CANCELLED)

    def cancel(self) -> bool:
        """Cancel every not-yet-started task.

        Tasks already running finish and their rows remain available via
        :meth:`partial_results`.  Returns ``True`` if the job had not already
        completed.
        """
        with self._lock:
            if self._status in (DONE, FAILED, CANCELLED):
                return False
            self._status = CANCELLED
            futures = list(self._futures)
            self._lock.notify_all()
        # Done callbacks fire for cancelled futures too, so the pending-task
        # bookkeeping in _on_task_done reaches zero on its own.
        for future in futures:
            future.cancel()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        with self._lock:
            return self._lock.wait_for(
                lambda: self._status in (DONE, FAILED, CANCELLED)
                and self._pending_tasks == 0,
                timeout=timeout,
            )

    def result(self, timeout: Optional[float] = None) -> Any:
        """Assembled rows in item order; raises on failure or cancellation.

        Raises
        ------
        JobCancelledError
            If :meth:`cancel` was called before completion.
        TimeoutError
            If the job is still running after ``timeout`` seconds.
        Exception
            A worker failure re-raised with its original type, the remote
            traceback attached as ``__cause__``.
        """
        if not self.wait(timeout):
            raise TimeoutError(f"job still {self.status()} after {timeout}s")
        with self._lock:
            if self._failure is not None:
                self._failure.reraise()
            if self._status == CANCELLED:
                raise JobCancelledError(
                    f"job cancelled with {len(self._rows)} item(s) completed; "
                    "use partial_results() to retrieve them"
                )
            rows = sorted(self._rows.items())
        return self._assemble(rows) if self._assemble else [row for _, row in rows]

    def partial_results(self) -> Dict[int, Any]:
        """Item-index -> row for every item completed so far (streaming reads)."""
        with self._lock:
            return dict(self._rows)

    def stream(self, timeout: Optional[float] = None) -> Iterator[Tuple[int, Any]]:
        """Yield ``(item_index, row)`` pairs as they complete, in arrival order.

        Stops once the job reaches a terminal state; a worker failure is
        re-raised (original type) after every already-completed row has been
        yielded.
        """
        seen: set = set()
        while True:
            with self._lock:
                fresh = [(i, row) for i, row in sorted(self._rows.items()) if i not in seen]
                terminal = self._status in (DONE, FAILED, CANCELLED) and self._pending_tasks == 0
                if not fresh and not terminal:
                    if not self._lock.wait(timeout):
                        raise TimeoutError("no job progress before timeout")
                    continue
            for index, row in fresh:
                seen.add(index)
                yield index, row
            if terminal and not fresh:
                with self._lock:
                    failure = self._failure
                if failure is not None:
                    failure.reraise()
                return

    def __repr__(self) -> str:
        with self._lock:
            return f"<Job status={self._status} completed={len(self._rows)}>"


def completed(
    rows: Sequence[Tuple[int, Any]],
    assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None,
) -> Job:
    """A job already in the ``done`` state holding ``rows`` (inline runs)."""
    job = Job(assemble=assemble)
    job._rows = dict(rows)
    job._status = DONE
    return job


def submit(
    tasks: Sequence[Tuple[Callable, Any]],
    jobs: int = 1,
    block: bool = True,
    assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None,
) -> Job:
    """Run ``tasks`` and return the :class:`Job` handle.

    ``jobs <= 1`` with ``block=True`` executes inline in this process (no
    pool, no pickling of results).  Everything else fans out over a process
    pool of ``max(1, jobs)`` workers; with ``block=True`` the call waits for
    completion before returning, with ``block=False`` it returns
    immediately and the job completes in the background.
    """
    job = Job(assemble=assemble)
    if not tasks:
        job._status = DONE
        return job
    if jobs <= 1 and block:
        return job._run_inline(tasks)
    job._run_pooled(tasks, jobs=max(1, jobs))
    if block:
        job.wait()
    return job
