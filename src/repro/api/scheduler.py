"""Async job scheduling over a process pool, with optional fault tolerance.

The execution layer behind :meth:`repro.api.device.Device.run` and the
experiment harness.  A :class:`Job` owns a set of *tasks* — picklable
``(function, payload)`` pairs where ``function`` is module-level and returns
``[(item_index, row), ...]`` — and runs them either inline (serial,
blocking) or on a process pool:

* ``Job.status()`` reports ``pending`` / ``running`` / ``done`` /
  ``failed`` / ``cancelled``;
* ``Job.result()`` blocks for completion and returns the assembled rows in
  item order;
* ``Job.partial_results()`` and ``Job.stream()`` expose per-item rows as
  tasks complete (streaming partial results);
* ``Job.cancel()`` cancels every not-yet-started task; tasks already
  running finish (fault-tolerant pools kill them), and their completed rows
  stay available through ``partial_results()``.

Worker failures propagate with their **original exception type**: the
worker catches the error, returns it as data, and the parent re-raises it
with the worker traceback attached as the ``__cause__`` (a
:class:`~repro.errors.JobError` carrying the formatted remote traceback).
Unpicklable exceptions degrade to a :class:`~repro.errors.JobError`
describing the original.

Fault tolerance
---------------
Passing any of ``retry`` / ``item_timeout`` / ``journal`` /
``on_error="partial"`` to :func:`submit` switches the job onto the
fault-tolerant engine:

* each task re-runs under its :class:`~repro.api.faults.RetryPolicy`
  (exponential backoff, deterministic jitter, retryable-error
  classification); the task's payload is re-dispatched verbatim, so retried
  items keep their original ``seed + index`` and a faulted run converges to
  the bit-identical fault-free result;
* pooled tasks each run in a **dedicated worker process** (killed workers
  take down only their own task): a worker that dies without reporting —
  SIGKILL, OOM — is detected and its task re-dispatched as a
  :class:`~repro.errors.WorkerCrashedError`; a worker that exceeds
  ``item_timeout`` seconds of wall clock is killed and its task re-dispatched
  as a :class:`~repro.errors.JobTimeoutError`;
* a task that exhausts its retries becomes an
  :class:`~repro.api.faults.ItemFailure` record; the job *keeps going*.
  ``Job.result(on_error="raise")`` (the default) then raises a
  :class:`~repro.errors.JobError` aggregating every record, while
  ``on_error="partial"`` returns the successful rows (failures stay
  inspectable on ``Job.failures()``);
* every completed row checkpoints to the optional
  :class:`~repro.api.journal.JobJournal` the moment it lands, so a later
  :func:`~repro.api.journal.resume_job` replays nothing already done.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    InvalidRequestError,
    JobCancelledError,
    JobError,
    JobTimeoutError,
    WorkerCrashedError,
)
from .faults import ItemFailure, RetryPolicy

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Poll interval of the fault-tolerant dispatcher (seconds).
_POLL_SECONDS = 0.05


class _RemoteFailure:
    """A worker exception captured as data so its type survives the pool."""

    def __init__(self, error: BaseException):
        self.traceback = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        try:
            pickle.dumps(error)
            self.error: BaseException = error
        except Exception:
            self.error = JobError(f"unpicklable worker error: {error!r}")

    def reraise(self) -> None:
        raise self.error from JobError(f"worker traceback:\n{self.traceback}")


def run_task(task: Tuple[Callable, Any]):
    """Module-level worker entry point: run one task, capture failures as data.

    Accepts the plain ``(function, payload)`` pair and the extended
    ``(function, payload, indices, key)`` form interchangeably.
    """
    function, payload = task[0], task[1]
    try:
        return function(payload)
    except BaseException as error:  # noqa: BLE001 - repackaged for the parent
        return _RemoteFailure(error)


class _TaskState:
    """Bookkeeping for one task in the fault-tolerant engine."""

    __slots__ = (
        "function",
        "payload",
        "indices",
        "key",
        "attempts",
        "not_before",
        "process",
        "conn",
        "deadline",
    )

    def __init__(self, function, payload, indices: Tuple[int, ...], key: str):
        self.function = function
        self.payload = payload
        self.indices = indices
        self.key = key
        self.attempts = 0
        self.not_before = 0.0
        self.process = None
        self.conn = None
        self.deadline: Optional[float] = None

    def task(self) -> Tuple[Callable, Any]:
        """The dispatchable pair; dict payloads learn their attempt number."""
        payload = self.payload
        if isinstance(payload, dict):
            payload = dict(payload, attempt=self.attempts)
        return (self.function, payload)


def _normalize_tasks(tasks: Sequence) -> List[_TaskState]:
    states: List[_TaskState] = []
    for position, task in enumerate(tasks):
        function, payload = task[0], task[1]
        indices = tuple(task[2]) if len(task) > 2 and task[2] is not None else ()
        key = task[3] if len(task) > 3 and task[3] else f"task-{position}"
        states.append(_TaskState(function, payload, indices, key))
    return states


def _child_entry(conn, function, payload) -> None:
    """Entry point of a dedicated (fault-tolerant) worker process."""
    outcome = run_task((function, payload))
    try:
        conn.send(outcome)
    except Exception as error:  # unpicklable rows degrade to a typed failure
        try:
            conn.send(_RemoteFailure(JobError(f"unpicklable worker result: {error!r}")))
        except Exception:  # reprolint: disable=broad-except -- worker is dying; the parent sees the closed pipe as a crash and re-dispatches
            pass
    finally:
        conn.close()


class Job:
    """Handle on one batch submission (see the module docstring).

    Created by :func:`submit`; not constructed directly by users.
    """

    def __init__(self, assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None):
        self._assemble = assemble
        self._lock = threading.Condition()
        self._rows: Dict[int, Any] = {}
        self._status = PENDING
        self._failure: Optional[_RemoteFailure] = None
        self._failures: List[ItemFailure] = []
        self._futures: List[Future] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pending_tasks = 0
        self._journal = None
        self._on_error = "raise"
        #: Journal identifier when the submission checkpoints (else ``None``).
        self.job_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction paths (used by submit()).
    # ------------------------------------------------------------------
    def _run_inline(self, tasks: Sequence[Tuple[Callable, Any]]) -> "Job":
        self._status = RUNNING
        for task in tasks:
            with self._lock:
                if self._status == CANCELLED:
                    return self
            outcome = run_task(task)
            self._record(outcome)
            if self._failure is not None:
                break
        with self._lock:
            if self._status == RUNNING:
                self._status = FAILED if self._failure is not None else DONE
            self._lock.notify_all()
        return self

    def _run_pooled(self, tasks: Sequence[Tuple[Callable, Any]], jobs: int) -> "Job":
        self._status = RUNNING
        self._executor = ProcessPoolExecutor(max_workers=max(1, min(jobs, len(tasks))))
        self._pending_tasks = len(tasks)
        for task in tasks:
            future = self._executor.submit(run_task, task)
            self._futures.append(future)
            future.add_done_callback(self._on_task_done)
        return self

    # ------------------------------------------------------------------
    # Fault-tolerant construction paths.
    # ------------------------------------------------------------------
    def _run_inline_resilient(
        self, states: List[_TaskState], retry: Optional[RetryPolicy]
    ) -> "Job":
        """Serial fault-tolerant run: retries and failure records, no pool."""
        self._status = RUNNING
        for state in states:
            with self._lock:
                if self._status == CANCELLED:
                    return self
            while True:
                outcome = run_task(state.task())
                state.attempts += 1
                if not isinstance(outcome, _RemoteFailure):
                    self._record(outcome)
                    break
                error = outcome.error
                if (
                    retry is not None
                    and retry.is_retryable(error)
                    and state.attempts < retry.max_attempts
                ):
                    time.sleep(retry.delay(state.attempts, key=state.key))
                    with self._lock:
                        if self._status == CANCELLED:
                            return self
                    continue
                self._add_failure(
                    ItemFailure(state.indices, error, state.attempts, outcome.traceback)
                )
                break
        with self._lock:
            if self._status == RUNNING:
                self._status = FAILED if self._failures else DONE
            self._lock.notify_all()
        return self

    def _run_pooled_resilient(
        self,
        states: List[_TaskState],
        jobs: int,
        retry: Optional[RetryPolicy],
        item_timeout: Optional[float],
    ) -> "Job":
        """Fan tasks out over dedicated worker processes (crash containment)."""
        self._status = RUNNING
        self._pending_tasks = len(states)
        thread = threading.Thread(
            target=self._resilient_loop,
            args=(states, max(1, jobs), retry, item_timeout),
            daemon=True,
            name="repro-job-dispatcher",
        )
        thread.start()
        return self

    def _resilient_loop(
        self,
        states: List[_TaskState],
        jobs: int,
        retry: Optional[RetryPolicy],
        item_timeout: Optional[float],
    ) -> None:
        import multiprocessing
        from multiprocessing.connection import wait as connection_wait

        context = multiprocessing.get_context()
        pending: deque = deque(states)
        delayed: List[_TaskState] = []
        running: Dict[Any, _TaskState] = {}

        def spawn(state: _TaskState) -> None:
            function, payload = state.task()
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_child_entry, args=(child_conn, function, payload), daemon=True
            )
            process.start()
            child_conn.close()
            state.process, state.conn = process, parent_conn
            state.deadline = (
                time.monotonic() + item_timeout if item_timeout is not None else None
            )
            running[parent_conn] = state

        def reap(state: _TaskState) -> None:
            running.pop(state.conn, None)
            if state.conn is not None:
                try:
                    state.conn.close()
                except OSError:
                    pass
            if state.process is not None:
                state.process.join(timeout=5)
            state.process = state.conn = None

        def settle_failure(state: _TaskState, error: BaseException, tb: str) -> None:
            """Retry the task or record its terminal failure."""
            if (
                retry is not None
                and retry.is_retryable(error)
                and state.attempts < retry.max_attempts
            ):
                state.not_before = time.monotonic() + retry.delay(
                    state.attempts, key=state.key
                )
                delayed.append(state)
                return
            self._add_failure(ItemFailure(state.indices, error, state.attempts, tb))
            self._task_finished()

        try:
            while True:
                with self._lock:
                    cancelled = self._status == CANCELLED
                if cancelled:
                    break
                now = time.monotonic()
                for state in [s for s in delayed if s.not_before <= now]:
                    delayed.remove(state)
                    pending.append(state)
                while pending and len(running) < jobs:
                    spawn(pending.popleft())
                if not running and not pending and not delayed:
                    break
                if not running:
                    time.sleep(_POLL_SECONDS)
                    continue
                ready = connection_wait(list(running), timeout=_POLL_SECONDS)
                for conn in ready:
                    state = running[conn]
                    state.attempts += 1
                    try:
                        outcome = conn.recv()
                    except (EOFError, OSError):
                        outcome = None  # died before (or while) reporting
                    reap(state)
                    if outcome is None:
                        settle_failure(
                            state,
                            WorkerCrashedError(
                                f"worker for {state.key} died without reporting "
                                f"a result (attempt {state.attempts})"
                            ),
                            "",
                        )
                    elif isinstance(outcome, _RemoteFailure):
                        settle_failure(state, outcome.error, outcome.traceback)
                    else:
                        self._record(outcome)
                        self._task_finished()
                now = time.monotonic()
                for conn, state in list(running.items()):
                    process = state.process
                    if process is not None and not process.is_alive():
                        if conn.poll():
                            # Exited normally with its result still buffered
                            # in the pipe; the next connection_wait drains it.
                            continue
                        # Dead without a readable result: crashed worker.
                        state.attempts += 1
                        reap(state)
                        settle_failure(
                            state,
                            WorkerCrashedError(
                                f"worker for {state.key} crashed "
                                f"(exit code {process.exitcode}, attempt {state.attempts})"
                            ),
                            "",
                        )
                    elif state.deadline is not None and now > state.deadline:
                        state.attempts += 1
                        if process is not None:
                            process.kill()
                        reap(state)
                        settle_failure(
                            state,
                            JobTimeoutError(
                                f"{state.key} exceeded its {item_timeout}s item "
                                f"timeout; worker killed (attempt {state.attempts})"
                            ),
                            "",
                        )
        finally:
            # Cancelled (or dispatcher failure): kill whatever still runs and
            # zero the countdown so wait()ers wake up.
            for state in list(running.values()):
                if state.process is not None:
                    state.process.kill()
                reap(state)
            with self._lock:
                self._pending_tasks = 0
                if self._status == RUNNING:
                    self._status = FAILED if self._failures else DONE
                self._lock.notify_all()

    def _task_finished(self) -> None:
        with self._lock:
            self._pending_tasks -= 1
            self._lock.notify_all()

    def _add_failure(self, failure: ItemFailure) -> None:
        with self._lock:
            self._failures.append(failure)
            self._lock.notify_all()

    # ------------------------------------------------------------------
    def _record(self, outcome: Any) -> None:
        with self._lock:
            if isinstance(outcome, _RemoteFailure):
                if self._failure is None:
                    self._failure = outcome
            else:
                for index, row in outcome:
                    self._rows[index] = row
                    if self._journal is not None:
                        self._journal.checkpoint_row(index, row)
            self._lock.notify_all()

    def _on_task_done(self, future: Future) -> None:
        if not future.cancelled():
            try:
                self._record(future.result())
            except BrokenProcessPool as error:
                self._record(
                    _RemoteFailure(
                        WorkerCrashedError(
                            "a process-pool worker died abruptly; submit with "
                            f"retry=RetryPolicy(...) for crash containment ({error!r})"
                        )
                    )
                )
            except BaseException as error:  # pool infrastructure failure
                self._record(_RemoteFailure(error))
        with self._lock:
            self._pending_tasks -= 1
            if self._pending_tasks == 0:
                if self._status == RUNNING:
                    self._status = FAILED if self._failure is not None else DONE
                self._shutdown()
            self._lock.notify_all()

    def _shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------------
    # Public lifecycle API.
    # ------------------------------------------------------------------
    def status(self) -> str:
        """One of ``pending`` / ``running`` / ``done`` / ``failed`` / ``cancelled``."""
        with self._lock:
            return self._status

    def done(self) -> bool:
        """True once no further rows will arrive."""
        return self.status() in (DONE, FAILED, CANCELLED)

    def failures(self) -> List[ItemFailure]:
        """Per-item failure records of a fault-tolerant run (terminal only)."""
        with self._lock:
            return list(self._failures)

    def cancel(self) -> bool:
        """Cancel every not-yet-started task.

        Plain pooled tasks already running finish (their rows remain
        available via :meth:`partial_results`); fault-tolerant workers are
        killed.  Idempotent: returns ``True`` only on the call that actually
        cancelled, ``False`` once the job is already terminal.
        """
        with self._lock:
            if self._status in (DONE, FAILED, CANCELLED):
                return False
            self._status = CANCELLED
            futures = list(self._futures)
            self._lock.notify_all()
        # Done callbacks fire for cancelled futures too, so the pending-task
        # bookkeeping in _on_task_done reaches zero on its own.  The
        # fault-tolerant dispatcher notices the state change and kills its
        # worker processes itself.
        for future in futures:
            future.cancel()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state.

        Returns ``True`` on completion; raises :class:`JobTimeoutError`
        (TimeoutError-compatible) when ``timeout`` seconds elapse first.
        """
        with self._lock:
            finished = self._lock.wait_for(
                lambda: self._status in (DONE, FAILED, CANCELLED)
                and self._pending_tasks == 0,
                timeout=timeout,
            )
            if not finished:
                raise JobTimeoutError(
                    f"job still {self._status} after {timeout}s "
                    f"({len(self._rows)} item(s) completed)"
                )
        return True

    def result(self, timeout: Optional[float] = None, on_error: Optional[str] = None) -> Any:
        """Assembled rows in item order; raises on failure or cancellation.

        Parameters
        ----------
        timeout:
            Seconds to wait for completion.
        on_error:
            ``"raise"`` (default) raises when any item failed terminally —
            the original exception type for plain jobs, a
            :class:`~repro.errors.JobError` aggregating every per-item
            :class:`~repro.api.faults.ItemFailure` for fault-tolerant jobs.
            ``"partial"`` returns the successfully completed rows instead;
            the records stay available via :meth:`failures`.  Defaults to
            the submission's ``on_error``.

        Raises
        ------
        JobCancelledError
            If :meth:`cancel` was called before completion.
        JobTimeoutError
            If the job is still running after ``timeout`` seconds
            (``TimeoutError``-compatible).
        Exception
            A worker failure re-raised with its original type, the remote
            traceback attached as ``__cause__``.
        """
        if on_error is None:
            on_error = self._on_error
        if on_error not in ("raise", "partial"):
            raise InvalidRequestError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
        self.wait(timeout)
        with self._lock:
            if self._status == CANCELLED:
                raise JobCancelledError(
                    f"job cancelled with {len(self._rows)} item(s) completed; "
                    "use partial_results() to retrieve them"
                )
            if on_error == "raise":
                if self._failure is not None:
                    self._failure.reraise()
                if self._failures:
                    summary = "; ".join(f.describe() for f in self._failures[:5])
                    if len(self._failures) > 5:
                        summary += f"; ... {len(self._failures) - 5} more"
                    raise JobError(
                        f"{len(self._failures)} item(s) failed after retries: {summary}",
                        failures=self._failures,
                    ) from self._failures[0].error
            rows = sorted(self._rows.items())
        return self._assemble(rows) if self._assemble else [row for _, row in rows]

    def partial_results(self) -> Dict[int, Any]:
        """Item-index -> row for every item completed so far (streaming reads)."""
        with self._lock:
            return dict(self._rows)

    def stream(self, timeout: Optional[float] = None) -> Iterator[Tuple[int, Any]]:
        """Yield ``(item_index, row)`` pairs as they complete, in arrival order.

        Stops once the job reaches a terminal state; a worker failure is
        re-raised (original type) after every already-completed row has been
        yielded.
        """
        seen: set = set()
        while True:
            with self._lock:
                fresh = [(i, row) for i, row in sorted(self._rows.items()) if i not in seen]
                terminal = self._status in (DONE, FAILED, CANCELLED) and self._pending_tasks == 0
                if not fresh and not terminal:
                    if not self._lock.wait(timeout):
                        raise JobTimeoutError("no job progress before timeout")
                    continue
            for index, row in fresh:
                seen.add(index)
                yield index, row
            if terminal and not fresh:
                with self._lock:
                    failure = self._failure
                    failures = list(self._failures)
                if failure is not None:
                    failure.reraise()
                if failures and self._on_error == "raise":
                    raise JobError(
                        f"{len(failures)} item(s) failed after retries",
                        failures=failures,
                    ) from failures[0].error
                return

    def __repr__(self) -> str:
        with self._lock:
            extra = f" failures={len(self._failures)}" if self._failures else ""
            return f"<Job status={self._status} completed={len(self._rows)}{extra}>"


def completed(
    rows: Sequence[Tuple[int, Any]],
    assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None,
) -> Job:
    """A job already in the ``done`` state holding ``rows`` (inline runs)."""
    job = Job(assemble=assemble)
    job._rows = dict(rows)
    job._status = DONE
    return job


def submit(
    tasks: Sequence,
    jobs: int = 1,
    block: bool = True,
    assemble: Optional[Callable[[List[Tuple[int, Any]]], Any]] = None,
    retry: Optional[RetryPolicy] = None,
    item_timeout: Optional[float] = None,
    on_error: str = "raise",
    journal=None,
    preloaded_rows: Optional[Sequence[Tuple[int, Any]]] = None,
    prefailures: Optional[Sequence[ItemFailure]] = None,
) -> Job:
    """Run ``tasks`` and return the :class:`Job` handle.

    Tasks are ``(function, payload)`` pairs, optionally extended to
    ``(function, payload, indices, key)`` — ``indices`` names the batch item
    indices the task covers (for failure records) and ``key`` is a stable
    identity used for deterministic backoff jitter.

    ``jobs <= 1`` with ``block=True`` executes inline in this process (no
    pool, no pickling of results).  Everything else fans out over a process
    pool of ``max(1, jobs)`` workers; with ``block=True`` the call waits for
    completion before returning, with ``block=False`` it returns
    immediately and the job completes in the background.

    Fault tolerance (see the module docstring) engages when any of
    ``retry`` / ``item_timeout`` / ``journal`` / ``on_error="partial"`` is
    given.  ``item_timeout`` needs process isolation to kill a stuck worker,
    so it forces the pooled engine even for ``jobs=1``.  ``preloaded_rows``
    (e.g. journal checkpoints from a previous life of the job) and
    ``prefailures`` (pre-dispatch rejections) seed the job before any task
    runs.
    """
    if on_error not in ("raise", "partial"):
        raise InvalidRequestError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
    job = Job(assemble=assemble)
    job._journal = journal
    job._on_error = on_error
    if journal is not None:
        job.job_id = journal.job_id
    if preloaded_rows:
        job._rows.update(dict(preloaded_rows))
    if prefailures:
        job._failures.extend(prefailures)
    fault_tolerant = (
        retry is not None
        or item_timeout is not None
        or journal is not None
        or on_error == "partial"
        or prefailures
    )
    if not tasks:
        job._status = FAILED if job._failures else DONE
        return job
    if not fault_tolerant:
        if jobs <= 1 and block:
            return job._run_inline(list(tasks))
        job._run_pooled(list(tasks), jobs=max(1, jobs))
        if block:
            job.wait()
        return job
    states = _normalize_tasks(tasks)
    if jobs <= 1 and block and item_timeout is None:
        return job._run_inline_resilient(states, retry)
    job._run_pooled_resilient(states, jobs=max(1, jobs), retry=retry, item_timeout=item_timeout)
    if block:
        job.wait()
    return job
