"""Calibrated per-backend runtime predictors behind cost-aware routing.

The cost model answers one question deterministically: *given this work
item, how long would each capable backend take?*  It is fit offline from a
seeded calibration sweep (:func:`calibration_suite` +
:func:`collect_calibration_samples`, driven by ``benchmarks/bench_all.py``)
and persisted as a versioned JSON artifact, so decision time involves **no
wall-clock reads, no RNG, and no refitting** — loading the same artifact in
two processes yields bit-identical predictions.

Model shape
-----------
One log-linear ridge regression per backend: ``log(seconds) ≈ w · φ(item)``
where ``φ`` is the fixed :data:`FEATURE_NAMES` vector extracted by
:func:`extract_features` (qubit count, depth, gate count, Clifford
fraction, noise class, repetitions).  Log-space turns the exponential
``2^n`` dense-state cost into a line in ``n`` and makes the model robust to
the orders-of-magnitude spread between the stabilizer tableau and a ``4^n``
density matrix.  Fitting solves the normal equations with a fixed ridge
term via :func:`numpy.linalg.solve` — deterministic for identical inputs.

Consumers
---------
* :func:`repro.api.routing.select_backend` ``mode="cost"`` ranks the
  *capable* backends by predicted runtime and picks the fastest.
* :meth:`repro.api.device.Device` packs pool chunks by predicted cost and
  attaches ``predicted_seconds`` / ``elapsed_seconds`` telemetry to every
  result row, so mispredictions are observable.
* The future service gateway (ROADMAP item 1) quotes the same estimates
  for admission control.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..atomicio import atomic_write_text
from ..circuits.circuit import Circuit
from ..circuits.clifford import classify_circuit, gate_clifford_ops
from ..circuits.parameters import ParamResolver
from ..errors import CostModelError

__all__ = [
    "COST_MODEL_VERSION",
    "FEATURE_NAMES",
    "CircuitFeatures",
    "extract_features",
    "BackendCostModel",
    "CostModel",
    "CostSample",
    "fit_cost_model",
    "default_cost_model",
    "CalibrationCase",
    "calibration_suite",
    "holdout_suite",
    "collect_calibration_samples",
]

#: Artifact schema version; bump on any feature-vector or format change.
COST_MODEL_VERSION = 1

#: The fixed feature basis, in vector order.  Changing this list (or its
#: order) invalidates fitted weights — bump :data:`COST_MODEL_VERSION`.
FEATURE_NAMES: Tuple[str, ...] = (
    "bias",
    "num_qubits",
    "log_depth",
    "log_gates",
    "clifford_fraction",
    "has_noise",
    "pauli_noise",
    "log_noise_ops",
    "log_repetitions",
)

#: Environment override for the default artifact location.
COST_MODEL_ENV = "REPRO_COST_MODEL"

#: Packaged artifact produced by the ``bench_all`` calibration sweep.
DEFAULT_ARTIFACT = os.path.join(os.path.dirname(__file__), "costmodel_default.json")

#: Cap on the log-space prediction so ``exp`` can never overflow a float.
_MAX_LOG_SECONDS = 50.0

#: Floor for measured runtimes entering the fit (perf_counter quantization).
_MIN_SECONDS = 1e-7


@dataclass(frozen=True)
class CircuitFeatures:
    """The routing-relevant summary of one work item.

    Immutable and derived purely from the circuit structure plus the
    submission's ``repetitions`` — never from wall-clock state — so the
    same item always maps to the same feature vector.
    """

    num_qubits: int
    depth: int
    gate_count: int
    clifford_fraction: float
    noise_ops: int
    has_noise: bool
    pauli_noise: bool
    repetitions: int

    def vector(self) -> Tuple[float, ...]:
        """``φ(item)`` in :data:`FEATURE_NAMES` order."""
        return (
            1.0,
            float(self.num_qubits),
            math.log1p(float(self.depth)),
            math.log1p(float(self.gate_count)),
            float(self.clifford_fraction),
            1.0 if self.has_noise else 0.0,
            1.0 if self.has_noise and self.pauli_noise else 0.0,
            math.log1p(float(self.noise_ops)),
            math.log1p(float(max(0, self.repetitions))),
        )


def extract_features(
    circuit: Circuit,
    resolver: Optional[ParamResolver] = None,
    repetitions: int = 0,
) -> CircuitFeatures:
    """Deterministic feature extraction for one work item."""
    unitary_ops = circuit.unitary_operations()
    clifford_ops = sum(
        1 for op in unitary_ops if gate_clifford_ops(op.gate, resolver) is not None
    )
    fraction = clifford_ops / len(unitary_ops) if unitary_ops else 1.0
    classification = classify_circuit(circuit, resolver)
    return CircuitFeatures(
        num_qubits=circuit.num_qubits,
        depth=circuit.depth,
        gate_count=len(unitary_ops),
        clifford_fraction=fraction,
        noise_ops=len(circuit.noise_operations()),
        has_noise=classification.has_noise,
        pauli_noise=classification.pauli_noise,
        repetitions=repetitions,
    )


@dataclass(frozen=True)
class BackendCostModel:
    """Fitted log-linear predictor for one backend."""

    backend: str
    weights: Tuple[float, ...]
    rmse_log: float
    samples: int

    def predict_log_seconds(self, features: CircuitFeatures) -> float:
        phi = features.vector()
        if len(phi) != len(self.weights):
            raise CostModelError(
                f"cost model for {self.backend!r} has {len(self.weights)} weights "
                f"but the feature vector has {len(phi)} entries (version skew)"
            )
        # Fixed-order scalar accumulation: bit-identical across processes.
        total = 0.0
        for weight, value in zip(self.weights, phi):
            total += weight * value
        return total

    def predict_seconds(self, features: CircuitFeatures) -> float:
        return math.exp(min(self.predict_log_seconds(features), _MAX_LOG_SECONDS))


class CostSample(NamedTuple):
    """One calibration observation: ``backend`` ran ``features`` in ``seconds``."""

    backend: str
    features: CircuitFeatures
    seconds: float


class CostModel:
    """A versioned bundle of per-backend predictors (the JSON artifact)."""

    def __init__(
        self,
        models: Mapping[str, BackendCostModel],
        feature_names: Sequence[str] = FEATURE_NAMES,
        version: int = COST_MODEL_VERSION,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if tuple(feature_names) != FEATURE_NAMES:
            raise CostModelError(
                f"cost-model feature basis {tuple(feature_names)!r} does not match "
                f"this build's {FEATURE_NAMES!r}; refit the artifact"
            )
        if version != COST_MODEL_VERSION:
            raise CostModelError(
                f"cost-model artifact version {version} is incompatible with "
                f"COST_MODEL_VERSION={COST_MODEL_VERSION}; refit the artifact"
            )
        self._models: Dict[str, BackendCostModel] = dict(models)
        self.version = int(version)
        self.meta: Dict[str, Any] = dict(meta or {})

    # -- queries --------------------------------------------------------
    def backends(self) -> List[str]:
        """Backends this model can price, sorted for determinism."""
        return sorted(self._models)

    def __contains__(self, backend: str) -> bool:
        return backend in self._models

    def predict_seconds(self, backend: str, features: CircuitFeatures) -> float:
        model = self._models.get(backend)
        if model is None:
            raise CostModelError(
                f"cost model has no predictor for backend {backend!r} "
                f"(fitted: {self.backends()})"
            )
        return model.predict_seconds(features)

    def rank(
        self, features: CircuitFeatures, candidates: Iterable[str]
    ) -> List[Tuple[str, float]]:
        """``(backend, predicted_seconds)`` for every priced candidate,
        cheapest first; ties break on name so ranking is deterministic."""
        priced = [
            (name, self.predict_seconds(name, features))
            for name in candidates
            if name in self._models
        ]
        priced.sort(key=lambda pair: (pair[1], pair[0]))
        return priced

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-costmodel",
            "version": self.version,
            "feature_names": list(FEATURE_NAMES),
            "backends": {
                name: {
                    "weights": list(model.weights),
                    "rmse_log": model.rmse_log,
                    "samples": model.samples,
                }
                for name, model in sorted(self._models.items())
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        if not isinstance(payload, Mapping) or payload.get("format") != "repro-costmodel":
            raise CostModelError("not a repro-costmodel artifact")
        backends = payload.get("backends")
        if not isinstance(backends, Mapping):
            raise CostModelError("cost-model artifact has no 'backends' table")
        models: Dict[str, BackendCostModel] = {}
        for name, entry in backends.items():
            try:
                models[name] = BackendCostModel(
                    backend=str(name),
                    weights=tuple(float(w) for w in entry["weights"]),
                    rmse_log=float(entry.get("rmse_log", 0.0)),
                    samples=int(entry.get("samples", 0)),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise CostModelError(
                    f"malformed cost-model entry for backend {name!r}: {error}"
                ) from error
        return cls(
            models,
            feature_names=tuple(payload.get("feature_names", FEATURE_NAMES)),
            version=int(payload.get("version", -1)),
            meta=payload.get("meta"),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "CostModel":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CostModelError(f"cost-model artifact is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: "os.PathLike[str] | str") -> None:
        """Persist atomically (write-temp + fsync + rename)."""
        atomic_write_text(path, self.dumps())

    @classmethod
    def load(cls, path: "os.PathLike[str] | str") -> "CostModel":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())


def fit_cost_model(
    samples: Iterable[CostSample],
    ridge: float = 1e-3,
    meta: Optional[Mapping[str, Any]] = None,
) -> CostModel:
    """Fit per-backend ridge regressions in log space.

    Deterministic: the normal equations ``(XᵀX + λI) w = Xᵀ log(y)`` are
    solved per backend with a fixed ridge ``λ``, so identical samples yield
    identical weights (and therefore identical routing decisions).
    """
    grouped: Dict[str, List[CostSample]] = {}
    for sample in samples:
        grouped.setdefault(sample.backend, []).append(sample)
    if not grouped:
        raise CostModelError("cannot fit a cost model from zero samples")
    models: Dict[str, BackendCostModel] = {}
    k = len(FEATURE_NAMES)
    identity = np.eye(k)
    for backend in sorted(grouped):
        rows = grouped[backend]
        design = np.array([sample.features.vector() for sample in rows], dtype=float)
        target = np.log(
            np.maximum([sample.seconds for sample in rows], _MIN_SECONDS)
        )
        normal = design.T @ design + ridge * identity
        weights = np.linalg.solve(normal, design.T @ target)
        residual = design @ weights - target
        rmse = float(np.sqrt(np.mean(residual**2)))
        models[backend] = BackendCostModel(
            backend=backend,
            weights=tuple(float(w) for w in weights),
            rmse_log=rmse,
            samples=len(rows),
        )
    return CostModel(models, meta=meta)


_DEFAULT_CACHE: List[Optional[CostModel]] = []


def default_cost_model() -> Optional[CostModel]:
    """The ambient calibrated model, or ``None`` when no artifact exists.

    When the ``REPRO_COST_MODEL`` environment variable is set it is
    authoritative: a missing or broken override resolves to ``None`` (the
    rules decide) rather than silently routing on the packaged artifact
    the user asked to replace.  Unset, the artifact committed by the
    ``bench_all`` calibration sweep is used.  The result is cached for the
    life of the process; a missing or broken artifact resolves to ``None``
    so routing falls back to the rule-based path instead of failing the
    submission.
    """
    if _DEFAULT_CACHE:
        return _DEFAULT_CACHE[0]
    model: Optional[CostModel] = None
    override = os.environ.get(COST_MODEL_ENV)
    try:
        model = CostModel.load(override if override else DEFAULT_ARTIFACT)
    except (OSError, CostModelError):
        model = None
    _DEFAULT_CACHE.append(model)
    return model


def _reset_default_cache() -> None:
    """Test hook: forget the cached ambient model."""
    _DEFAULT_CACHE.clear()


# ----------------------------------------------------------------------
# Seeded calibration sweep (consumed by benchmarks/bench_all.py).
# ----------------------------------------------------------------------
class CalibrationCase(NamedTuple):
    """One timed workload: a circuit plus its submission shape."""

    label: str
    circuit: Circuit
    repetitions: int
    backends: Optional[Tuple[str, ...]] = None  # None = every capable backend


def _clifford_circuit(rng: "np.random.Generator", n: int, depth: int) -> Circuit:
    from ..circuits import CNOT, CZ, H, S, X, Z

    from ..circuits.qubits import LineQubit

    qubits = LineQubit.range(n)
    circuit = Circuit()
    single = (H, S, X, Z)
    for _ in range(depth):
        kind = int(rng.integers(0, 3))
        if kind == 0 or n < 2:
            gate = single[int(rng.integers(0, len(single)))]
            circuit.append(gate(qubits[int(rng.integers(0, n))]))
        else:
            a = int(rng.integers(0, n - 1))
            two = CNOT if int(rng.integers(0, 2)) == 0 else CZ
            circuit.append(two(qubits[a], qubits[a + 1]))
    return circuit


def _rotation_circuit(rng: "np.random.Generator", n: int, layers: int) -> Circuit:
    from ..circuits import CNOT, H, Rx, Rz

    from ..circuits.qubits import LineQubit

    qubits = LineQubit.range(n)
    circuit = Circuit()
    circuit.append(H(q) for q in qubits)
    for _ in range(layers):
        for a in range(n - 1):
            circuit.append(CNOT(qubits[a], qubits[a + 1]))
            circuit.append(Rz(float(rng.uniform(0.1, 3.0)))(qubits[a + 1]))
            circuit.append(CNOT(qubits[a], qubits[a + 1]))
        for q in qubits:
            circuit.append(Rx(float(rng.uniform(0.1, 3.0)))(q))
    return circuit


#: Backends timed on the fast general families.  Two backends are kept on
#: small dedicated families instead: the tensor-network sampler runs MCMC
#: contraction per shot (tens of seconds where others take milliseconds),
#: and the knowledge-compilation backend pays an exponential compile on
#: noisy / deep non-Clifford circuits — the very cost profile the model
#: must *learn*, from anchors cheap enough to time.
_FAST_BACKENDS: Tuple[str, ...] = (
    "stabilizer",
    "state_vector",
    "density_matrix",
    "trajectory",
)
_FAST_PLUS_KC: Tuple[str, ...] = _FAST_BACKENDS + ("knowledge_compilation",)


def calibration_suite(seed: int = 0, scale: int = 1) -> List[CalibrationCase]:
    """The seeded calibration workloads (same seed → same circuits).

    ``scale`` repeats each family with fresh draws from the same stream —
    ``scale=1`` is the quick sweep, larger values densify the fit.
    """
    from ..circuits import depolarize

    rng = np.random.default_rng(seed)
    cases: List[CalibrationCase] = []
    for round_index in range(max(1, scale)):
        # Clifford circuits: the stabilizer tableau's home turf; KC
        # compiles these cheaply, so it joins the family.
        for n in (3, 5, 7, 9):
            for depth in (12, 48):
                circuit = _clifford_circuit(rng, n, depth)
                for reps in (32, 256):
                    cases.append(
                        CalibrationCase(
                            f"clifford-n{n}-d{depth}-r{reps}-{round_index}",
                            circuit,
                            reps,
                            backends=_FAST_PLUS_KC,
                        )
                    )
        for n in (12, 16):
            circuit = _clifford_circuit(rng, n, 40)
            cases.append(
                CalibrationCase(
                    f"clifford-big-n{n}-{round_index}",
                    circuit,
                    128,
                    backends=("stabilizer", "state_vector", "trajectory"),
                )
            )
        # Non-Clifford rotation ansätze, ideal and depolarized.  KC only
        # prices the shallow ideal ones (deep/noisy compiles are the
        # exponential regime the dedicated anchors below cover).
        for n in (3, 5, 7, 9):
            for layers in (1, 3):
                circuit = _rotation_circuit(rng, n, layers)
                kc_ok = layers == 1 and n <= 7
                for reps in (32, 256):
                    cases.append(
                        CalibrationCase(
                            f"rotations-n{n}-l{layers}-r{reps}-{round_index}",
                            circuit,
                            reps,
                            backends=_FAST_PLUS_KC if kc_ok else _FAST_BACKENDS,
                        )
                    )
                noisy = circuit.with_noise(lambda: depolarize(0.01))
                cases.append(
                    CalibrationCase(
                        f"noisy-n{n}-l{layers}-{round_index}",
                        noisy,
                        64,
                        backends=_FAST_BACKENDS,
                    )
                )
        # Noisy Clifford: exercises the tableau's stochastic Pauli
        # unravelling against the dense noisy paths.
        for n in (5, 9):
            circuit = _clifford_circuit(rng, n, 24).with_noise(lambda: depolarize(0.01))
            cases.append(
                CalibrationCase(
                    f"noisy-clifford-n{n}-{round_index}",
                    circuit,
                    64,
                    backends=_FAST_BACKENDS,
                )
            )
        # Dedicated tensor-network family: enough (n, depth, reps) spread
        # to anchor its cost curve without its MCMC sampler dominating
        # the sweep's wall time.
        for n, depth, reps in ((3, 12, 16), (5, 12, 32), (7, 12, 16), (5, 24, 16)):
            circuit = _clifford_circuit(rng, n, depth)
            cases.append(
                CalibrationCase(
                    f"tn-n{n}-d{depth}-r{reps}-{round_index}",
                    circuit,
                    reps,
                    backends=("tensor_network",),
                )
            )
        # One tiny noisy-KC anchor: a few seconds of compile that teach
        # the KC predictor its noise penalty, so cost routing never sends
        # noisy work to an exponential compile by extrapolating from
        # ideal-only samples.
        kc_noisy = _rotation_circuit(rng, 3, 1).with_noise(lambda: depolarize(0.01))
        cases.append(
            CalibrationCase(
                f"kc-noisy-n3-{round_index}",
                kc_noisy,
                32,
                backends=("knowledge_compilation",),
            )
        )
    return cases


def holdout_suite(seed: int = 101) -> List[CalibrationCase]:
    """The seeded 50-circuit holdout set behind the routing-accuracy gate.

    Deliberately *not* the calibration distribution: every case is sized so
    the asymptotically right backend wins by a clear margin (large Clifford
    circuits, batched noisy sampling, per-shot contraction sampling).
    Sub-millisecond near-ties, where "measured fastest" is decided by
    scheduler jitter rather than by cost, would measure timing noise, not
    model quality.  Each case restricts candidates to backends that finish
    in benchmark time; capability filtering still applies on top.
    """
    from ..circuits import depolarize

    rng = np.random.default_rng(seed)
    cases: List[CalibrationCase] = []
    # Large Clifford sampling: the tableau's poly(n) cost vs dense 2^n.
    for index in range(17):
        n = int(rng.integers(14, 20))
        depth = int(rng.integers(30, 70))
        reps = int(rng.integers(64, 257))
        cases.append(
            CalibrationCase(
                f"holdout-clifford-n{n}-{index}",
                _clifford_circuit(rng, n, depth),
                reps,
                backends=("stabilizer", "state_vector", "trajectory"),
            )
        )
    # Batched noisy sampling: lockstep trajectories vs per-shot dense
    # re-simulation.  (The 4^n density matrix at n >= 8 is out of
    # benchmark time, so the contest is batching vs per-shot.)
    for index in range(17):
        n = int(rng.integers(8, 11))
        layers = int(rng.integers(2, 4))
        reps = int(rng.integers(48, 129))
        noisy = _rotation_circuit(rng, n, layers).with_noise(lambda: depolarize(0.01))
        cases.append(
            CalibrationCase(
                f"holdout-noisy-n{n}-{index}",
                noisy,
                reps,
                backends=("trajectory", "state_vector"),
            )
        )
    # Dense ansatz sampling: one 2^n evolution plus a multinomial draw vs
    # per-shot MCMC contraction sampling in the tensor network.
    for index in range(16):
        n = int(rng.integers(4, 8))
        layers = int(rng.integers(1, 3))
        reps = int(rng.integers(4, 13))
        cases.append(
            CalibrationCase(
                f"holdout-tn-n{n}-{index}",
                _rotation_circuit(rng, n, layers),
                reps,
                backends=("state_vector", "tensor_network"),
            )
        )
    return cases


def collect_calibration_samples(
    cases: Sequence[CalibrationCase],
    backends: Optional[Sequence[str]] = None,
    seed: int = 0,
    repeats: int = 2,
) -> List[CostSample]:
    """Time every (case, capable backend) pair and return the samples.

    Each pair runs ``repeats`` times and keeps the *minimum* wall time —
    the standard microbenchmark estimator for the noise-free cost (later
    runs also amortize first-touch allocation and cache effects).  The
    only non-deterministic quantity here is the measured time itself —
    this function runs *offline* during calibration; the fitted artifact
    it feeds is what decision time consumes.
    """
    import time

    from .registry import REGISTRY, create_backend
    from .routing import capable_backends

    instances: Dict[str, Any] = {}
    samples: List[CostSample] = []
    for case in cases:
        features = extract_features(case.circuit, repetitions=case.repetitions)
        capable = capable_backends(
            case.circuit, sampling=True, repetitions=case.repetitions
        )
        if backends is not None:
            capable = [name for name in capable if name in backends]
        if case.backends is not None:
            capable = [name for name in capable if name in case.backends]
        for name in capable:
            canonical = REGISTRY.resolve(name)
            sim = instances.get(canonical)
            if sim is None:
                sim = create_backend(canonical, seed=seed)
                instances[canonical] = sim
            # The KC backend memoizes its exponential compile, so re-runs
            # of the same circuit time only the (cheap) query: its first
            # run *is* the routing-relevant cost — one timing, compile
            # included.
            runs = 1 if canonical == "knowledge_compilation" else max(1, repeats)
            best = math.inf
            for _ in range(runs):
                start = time.perf_counter()
                sim.sample(case.circuit, case.repetitions, seed=seed)
                best = min(best, time.perf_counter() - start)
            samples.append(CostSample(canonical, features, max(best, _MIN_SECONDS)))
    return samples
