"""Batch result container returned by ``Job.result()``.

A batch is a list of per-item *rows* — plain dicts so they cross process
boundaries cheaply.  Every row carries at least ``index``, ``parameters``,
``backend`` and ``reason``, plus one entry per requested observable:

``probabilities`` / ``state_vector``
    Dense ndarrays.
``samples`` / ``counts``
    The :class:`~repro.simulator.results.SampleResult` and its
    bitstring-count histogram.
``expectation``
    Scalar objective value.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..errors import MissingObservableError


class BatchResult:
    """Per-item results of one :meth:`repro.api.device.Device.run` batch.

    List-like over rows (dicts, in item order); the accessors below stack
    per-item observables the way :class:`~repro.simulator.sweep.SweepResult`
    always has.
    """

    def __init__(self, rows: List[Dict[str, Any]]):
        self.rows = sorted(rows, key=lambda row: row["index"])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return self.rows[index]

    def _stack(self, key: str) -> np.ndarray:
        if not self.rows or key not in self.rows[0]:
            raise MissingObservableError(f"batch did not record {key!r}")
        return np.stack([row[key] for row in self.rows])

    def probabilities(self) -> np.ndarray:
        """``(num_items, 2**n)`` matrix of output distributions."""
        return self._stack("probabilities")

    def state_vectors(self) -> np.ndarray:
        """``(num_items, 2**n)`` matrix of final state vectors (ideal circuits)."""
        return self._stack("state_vector")

    def expectations(self) -> np.ndarray:
        """``(num_items,)`` vector of objective expectations."""
        if not self.rows or "expectation" not in self.rows[0]:
            raise MissingObservableError("batch did not record 'expectation'")
        return np.asarray([row["expectation"] for row in self.rows], dtype=float)

    def counts(self) -> List[Dict[str, int]]:
        """Per-item sampled bitstring counts."""
        if not self.rows or "counts" not in self.rows[0]:
            raise MissingObservableError("batch did not record 'counts'")
        return [row["counts"] for row in self.rows]

    def sample_results(self) -> List[Any]:
        """Per-item :class:`~repro.simulator.results.SampleResult` objects."""
        if not self.rows or "samples" not in self.rows[0]:
            raise MissingObservableError("batch did not record 'samples'")
        return [row["samples"] for row in self.rows]

    def backends(self) -> List[str]:
        """The backend each item actually ran on, in item order."""
        return [row["backend"] for row in self.rows]

    def timings(self) -> List[Dict[str, Any]]:
        """Per-item predicted-vs-actual runtime telemetry, in item order.

        Each entry carries ``index``, ``backend``, ``elapsed_seconds``
        (measured around the item's evaluation) and ``predicted_seconds``
        (the cost model's estimate under ``routing="cost"``, else ``None``)
        — the observability hook for spotting cost-model mispredictions.
        """
        return [
            {
                "index": row["index"],
                "backend": row["backend"],
                "elapsed_seconds": row.get("elapsed_seconds"),
                "predicted_seconds": row.get("predicted_seconds"),
            }
            for row in self.rows
        ]

    def __repr__(self) -> str:
        keys = (
            sorted(set(self.rows[0]) - {"index", "parameters", "backend", "reason"})
            if self.rows
            else []
        )
        return f"{type(self).__name__}(items={len(self.rows)}, observables={keys})"
