"""Fault-tolerance policy objects: retries, failure records, chaos injection.

Three small, picklable building blocks consumed by the scheduler and the
``Device`` execution layer:

* :class:`RetryPolicy` — how many times a failed work item re-runs, with
  exponential backoff and *deterministic* jitter (derived from the item key,
  not an RNG, so two runs of the same faulted batch sleep identically), and
  which error classes count as retryable.  Retried items re-run with their
  original ``seed + index``, so a faulted run converges to the bit-identical
  result of a fault-free one;
* :class:`ItemFailure` — the per-item record kept when an item exhausts its
  retries.  ``Job.result(on_error="raise")`` aggregates these on a
  :class:`~repro.errors.JobError`; ``on_error="partial"`` returns the
  successful rows and leaves the records on ``Job.failures()``;
* :class:`FaultInjector` — a seeded chaos harness for the test suites: on a
  configured ``(item index, attempt)`` schedule it raises transient errors,
  SIGKILLs its own worker process mid-item, or hangs past the item timeout.
  It is plain data (picklable) so it rides into pool workers unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import signal
import time
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..errors import (
    InvalidRequestError,
    JobTimeoutError,
    TransientError,
    WorkerCrashedError,
)

#: Error classes the default policy treats as retryable: declared-transient
#: failures, dead workers, and per-item timeouts.  Deterministic input errors
#: (capability violations, bad circuits, ``ValueError``) are never retried —
#: re-running them burns a worker to reproduce the same failure.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError,
    WorkerCrashedError,
    JobTimeoutError,
)


def _unit_interval(key: str) -> float:
    """Deterministic pseudo-uniform draw in ``[0, 1)`` from a string key."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """When and how failed work items re-run.

    Attributes
    ----------
    max_attempts:
        Total attempts per item (first run included); ``3`` means the item
        may re-run twice.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per additional attempt (exponential backoff).
    backoff_max:
        Ceiling on any single delay.
    jitter:
        Fractional spread added to each delay, ``delay * (1 + jitter * u)``
        with ``u`` drawn deterministically from the item key and attempt
        number — retried schedules are reproducible run-to-run.
    retryable:
        Exception classes worth re-running.  Anything else fails the item
        immediately (deterministic errors re-fail identically).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidRequestError("max_attempts must be at least 1")

    def is_retryable(self, error: BaseException) -> bool:
        """True when ``error`` is an instance of a retryable class."""
        return isinstance(error, tuple(self.retryable))

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        return min(
            self.backoff_max,
            base * (1.0 + self.jitter * _unit_interval(f"{key}:{attempt}")),
        )


#: A policy that never retries (classification still applies to reporting).
NO_RETRY = RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0)


@dataclasses.dataclass(frozen=True)
class ItemFailure:
    """One work item's terminal failure after exhausting its retries.

    Attributes
    ----------
    indices:
        Batch item indices the failed task covered (one per item for
        fault-tolerant submissions).
    error:
        The final exception (original type where picklable).
    attempts:
        How many times the item ran before giving up.
    traceback:
        Formatted traceback of the final attempt (empty for pre-dispatch
        failures such as capability or memory-budget rejections).
    """

    indices: Tuple[int, ...]
    error: BaseException
    attempts: int
    traceback: str = ""

    def describe(self) -> str:
        where = ",".join(map(str, self.indices)) if self.indices else "?"
        return (
            f"item {where}: {type(self.error).__name__}: {self.error} "
            f"(after {self.attempts} attempt(s))"
        )


class FaultInjector:
    """Seeded chaos harness: fail configured items on configured attempts.

    Each schedule maps a batch item index to the number of *leading attempts*
    to fault: ``transient={3: 2}`` raises :class:`TransientError` on item 3's
    attempts 0 and 1, so a policy with ``max_attempts >= 3`` converges.  With
    ``kill`` the injector SIGKILLs its own process — only meaningful inside a
    pool worker (never inject kills into an inline run).  ``hang`` sleeps for
    ``hang_seconds`` so a per-item timeout can reap the worker.  ``rate``
    faults a deterministic pseudo-random ``rate`` fraction of first attempts
    (keyed on ``seed`` and the item index) with transient errors.

    Instances hold only plain data, pickle cleanly into workers, and keep a
    per-process count of injected faults in :attr:`injected`.
    """

    def __init__(
        self,
        transient: Optional[Dict[int, int]] = None,
        kill: Optional[Dict[int, int]] = None,
        hang: Optional[Dict[int, int]] = None,
        hang_seconds: float = 30.0,
        rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.transient: Dict[int, int] = dict(transient or {})
        self.kill: Dict[int, int] = dict(kill or {})
        self.hang: Dict[int, int] = dict(hang or {})
        self.hang_seconds = float(hang_seconds)
        self.rate = float(rate)
        self.seed = int(seed)
        #: Faults injected by *this process* (workers count independently).
        self.injected: int = 0

    def __call__(self, index: int, attempt: int) -> None:
        """Invoked at the start of every item evaluation; may not return."""
        if attempt < self.kill.get(index, 0):
            self.injected += 1
            os.kill(os.getpid(), signal.SIGKILL)
        if attempt < self.hang.get(index, 0):
            self.injected += 1
            time.sleep(self.hang_seconds)
        if attempt < self.transient.get(index, 0):
            self.injected += 1
            raise TransientError(
                f"injected transient fault (item {index}, attempt {attempt})"
            )
        if (
            self.rate > 0.0
            and attempt == 0
            and _unit_interval(f"chaos:{self.seed}:{index}") < self.rate
        ):
            self.injected += 1
            raise TransientError(f"injected transient fault (item {index}, rate)")

    def __repr__(self) -> str:
        parts: List[str] = []
        for name in ("transient", "kill", "hang"):
            schedule = getattr(self, name)
            if schedule:
                parts.append(f"{name}={schedule}")
        if self.rate:
            parts.append(f"rate={self.rate}")
        return f"FaultInjector({', '.join(parts)})"


#: Type of the optional per-item fault hook carried in the execution context.
FaultHook = Callable[[int, int], None]


__all__ = [
    "DEFAULT_RETRYABLE",
    "FaultInjector",
    "ItemFailure",
    "NO_RETRY",
    "RetryPolicy",
]
