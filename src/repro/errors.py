"""Typed error hierarchy for the ``repro`` public API.

Every failure the execution layer can route on derives from
:class:`ReproError`.  The concrete classes double-inherit from the builtin
exception each call site historically raised (``ValueError`` or
``RuntimeError``), so code written against the old untyped contract —
``except ValueError`` around a backend call — keeps working, while new code
can catch the precise class:

``UnsupportedCircuitError``
    The circuit itself is outside the backend's input class (a non-Clifford
    gate on the stabilizer tableau, a noise channel on an ideal-only
    backend).  Routing layers treat this as "pick another backend".
``BackendCapabilityError``
    The request exceeds a declared backend capability (too many qubits for a
    dense reconstruction, a mixed-state query on a pure-state backend, an
    unknown backend name).  Raised *before* any simulation work happens.
``CompilationError``
    The knowledge-compilation pipeline failed to lower the circuit
    (unbound symbols at compile time, malformed encodings).
``JobError`` / ``JobCancelledError``
    Job-lifecycle failures from the async scheduler: ``JobError`` wraps a
    worker failure that could not be represented by its original type;
    ``JobCancelledError`` is raised by ``Job.result()`` after ``cancel()``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every typed ``repro`` error."""


class UnsupportedCircuitError(ReproError, ValueError):
    """The circuit is outside the backend's supported input class."""


class BackendCapabilityError(ReproError, ValueError):
    """The request exceeds a backend's declared capabilities."""


class CompilationError(ReproError, RuntimeError):
    """The knowledge-compilation pipeline failed to compile the circuit."""


class JobError(ReproError, RuntimeError):
    """A job failed in a way that could not be re-raised as its original type."""


class JobCancelledError(JobError):
    """``Job.result()`` was called on a cancelled job."""


__all__ = [
    "ReproError",
    "UnsupportedCircuitError",
    "BackendCapabilityError",
    "CompilationError",
    "JobError",
    "JobCancelledError",
]
