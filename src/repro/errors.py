"""Typed error hierarchy for the ``repro`` public API.

Every failure the execution layer can route on derives from
:class:`ReproError`.  The concrete classes double-inherit from the builtin
exception each call site historically raised (``ValueError`` or
``RuntimeError``), so code written against the old untyped contract —
``except ValueError`` around a backend call — keeps working, while new code
can catch the precise class:

``UnsupportedCircuitError``
    The circuit itself is outside the backend's input class (a non-Clifford
    gate on the stabilizer tableau, a noise channel on an ideal-only
    backend).  Routing layers treat this as "pick another backend".
``BackendCapabilityError``
    The request exceeds a declared backend capability (too many qubits for a
    dense reconstruction, a mixed-state query on a pure-state backend, an
    unknown backend name).  Raised *before* any simulation work happens.
``CompilationError``
    The knowledge-compilation pipeline failed to lower the circuit
    (unbound symbols at compile time, malformed encodings).
``JobError`` / ``JobCancelledError``
    Job-lifecycle failures from the async scheduler: ``JobError`` wraps a
    worker failure that could not be represented by its original type (and
    aggregates per-item :class:`~repro.api.faults.ItemFailure` records on its
    ``failures`` attribute when a fault-tolerant job exhausts its retries);
    ``JobCancelledError`` is raised by ``Job.result()`` after ``cancel()``.
``JobTimeoutError``
    A deadline expired: ``Job.result(timeout=...)`` / ``Job.wait(timeout=...)``
    ran out of time, or a work item exceeded its per-item wall-clock budget
    and its worker was killed.  Inherits :class:`TimeoutError`, so code
    catching the builtin keeps working.
``WorkerCrashedError``
    A pool worker died without reporting a result (SIGKILL, OOM kill,
    ``BrokenProcessPool``).  Retryable by default: the scheduler resurrects
    the worker and re-dispatches only the in-flight items.
``TransientError``
    A failure the caller declares to be transient (flaky I/O, injected
    chaos).  The default :class:`~repro.api.faults.RetryPolicy` retries it.
``MemoryBudgetError``
    A work item's estimated dense ``2^n`` footprint exceeds the submission's
    memory budget and no capable cheaper backend exists.  Raised *before*
    the allocation is attempted.
``CostModelError``
    A calibrated cost-model artifact is malformed, version-incompatible, or
    queried for a backend it was never fitted on.  Routing falls back to the
    rule-based path rather than guessing.
``InvalidRequestError`` / ``RequestTypeError``
    The submission itself is malformed — an unknown option value, a
    non-``Circuit`` argument, inconsistent sweep shapes.  These replace the
    bare ``ValueError``/``TypeError`` raises the api layer used to make, so
    a future service gateway can map "your request was bad" (4xx) apart from
    "the system failed" (5xx).  ``RequestTypeError`` additionally inherits
    ``TypeError`` for the wrong-argument-type sites.
``MissingObservableError``
    A result lookup asked a batch for an observable it never recorded
    (``KeyError``-compatible, so ``except KeyError`` and ``dict``-style
    probing keep working).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.faults import ItemFailure


class ReproError(Exception):
    """Base class of every typed ``repro`` error."""


class UnsupportedCircuitError(ReproError, ValueError):
    """The circuit is outside the backend's supported input class."""


class BackendCapabilityError(ReproError, ValueError):
    """The request exceeds a backend's declared capabilities."""


class MemoryBudgetError(BackendCapabilityError):
    """The item's estimated memory footprint exceeds the submission budget."""


class CostModelError(ReproError, ValueError):
    """A cost-model artifact is malformed, incompatible, or unfitted."""


class InvalidRequestError(ReproError, ValueError):
    """The submission is malformed (bad option value, inconsistent shapes)."""


class RequestTypeError(InvalidRequestError, TypeError):
    """A submission argument has the wrong type (TypeError-compatible)."""


class MissingObservableError(ReproError, KeyError):
    """A result lookup asked for an observable the batch never recorded."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the readable message.
        return Exception.__str__(self)


class CompilationError(ReproError, RuntimeError):
    """The knowledge-compilation pipeline failed to compile the circuit."""


class TransientError(ReproError, RuntimeError):
    """A transient failure; the default retry policy re-runs the item."""


class JobError(ReproError, RuntimeError):
    """A job failed in a way that could not be re-raised as its original type.

    Fault-tolerant jobs aggregate their per-item failure records here: the
    ``failures`` attribute holds one :class:`~repro.api.faults.ItemFailure`
    per item that exhausted its retries.
    """

    def __init__(
        self, *args: object, failures: Optional[Iterable["ItemFailure"]] = None
    ) -> None:
        super().__init__(*args)
        #: Per-item failure records (fault-tolerant jobs), else ``()``.
        self.failures: Tuple["ItemFailure", ...] = tuple(failures or ())


class JobCancelledError(JobError):
    """``Job.result()`` was called on a cancelled job."""


class JobTimeoutError(JobError, TimeoutError):
    """A job- or item-level deadline expired (TimeoutError-compatible)."""


class WorkerCrashedError(JobError):
    """A pool worker died (SIGKILL / OOM / broken pool) without a result."""


__all__ = [
    "ReproError",
    "UnsupportedCircuitError",
    "BackendCapabilityError",
    "MemoryBudgetError",
    "CostModelError",
    "InvalidRequestError",
    "RequestTypeError",
    "MissingObservableError",
    "CompilationError",
    "TransientError",
    "JobError",
    "JobCancelledError",
    "JobTimeoutError",
    "WorkerCrashedError",
]
