"""Batched quantum-trajectory (Monte Carlo wavefunction) backend.

Unravels each Kraus channel into stochastic pure-state jumps and evolves many
trajectories in lockstep as one ``(B, 2^n)`` state array, making noisy
sampling feasible at qubit counts where a dense ``4^n`` density matrix is
not.
"""

from .simulator import TrajectorySimulator

__all__ = ["TrajectorySimulator"]
