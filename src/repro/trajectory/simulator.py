"""Lockstep batched quantum-trajectory simulation of noisy circuits.

The quantum-trajectory (Monte Carlo wavefunction) method replaces the dense
``2^n x 2^n`` density matrix of a noisy simulation by an ensemble of pure
states: every noise channel is *unravelled* into a stochastic jump — one
Kraus branch is selected per trajectory with its Born probability — so a
single trajectory costs the same ``2^n`` memory as an ideal state-vector
run.  Averaging ``|psi><psi|`` (or sampling one measurement per trajectory)
converges to the density-matrix result at the usual ``1/sqrt(T)`` Monte
Carlo rate, and is *exact* for measurement sampling when each sample comes
from its own trajectory.

The seed's :class:`~repro.statevector.simulator.StateVectorSimulator` already
implements this method one trajectory at a time.  This backend makes it a
scalable first-class citizen, mirroring the batched-evaluation design of the
many-chain Gibbs sampler:

* all ``B`` trajectories advance in lockstep through one compiled program —
  a ``(B, 2^n)`` array is transformed by one tensor contraction per step
  instead of ``B`` Python-level circuit walks;
* the circuit is compiled once per run: parameters are resolved a single
  time, channels are looked up in a per-gate-class cache, and runs of
  adjacent single-qubit unitaries on the same qubit are fused;
* mixture channels (the paper's depolarizing noise) select their unitary
  branch from *state-independent* probabilities, so only the trajectories
  that actually jump (about ``p * B`` rows per channel) are touched;
* general Kraus channels (amplitude/phase damping) compute all branch norms
  in one pass and renormalise only once per channel.

Trajectory batches are processed in chunks of ``max_batch_size`` to bound
peak memory at ``O(max_batch_size * 2^n)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseOperation
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import (
    apply_unitary_to_state_batch,
    basis_state,
    indices_to_bitstrings,
)
from ..simulator.base import Simulator
from ..simulator.results import DensityMatrixResult, SampleResult, StateVectorResult

_ATOL = 1e-12


class _UnitaryStep:
    """Apply one (possibly fused) unitary to every trajectory."""

    __slots__ = ("targets", "matrix")

    def __init__(self, targets: Tuple[int, ...], matrix: np.ndarray):
        self.targets = targets
        self.matrix = matrix

    def apply(self, states: np.ndarray, num_qubits: int, rng: np.random.Generator) -> np.ndarray:
        return apply_unitary_to_state_batch(states, self.matrix, self.targets, num_qubits)


class _MixtureStep:
    """Unravel a mixture channel: per-trajectory branch choice from fixed probabilities.

    Because every branch is unitary, the branch probabilities do not depend
    on the state; trajectories that draw an identity branch are left
    untouched, so a sparse channel (e.g. 0.5% depolarizing) costs
    ``O(p * B * 2^n)`` instead of ``O(B * 2^n)``.
    """

    __slots__ = ("targets", "cumulative", "unitaries", "is_identity")

    def __init__(self, targets: Tuple[int, ...], mixture: Sequence[Tuple[float, np.ndarray]]):
        self.targets = targets
        probabilities = np.array([max(float(p), 0.0) for p, _ in mixture])
        self.cumulative = np.cumsum(probabilities / probabilities.sum())
        self.unitaries = [np.asarray(u, dtype=complex) for _, u in mixture]
        dim = self.unitaries[0].shape[0]
        identity = np.eye(dim)
        self.is_identity = [np.allclose(u, identity, atol=_ATOL) for u in self.unitaries]

    def apply(self, states: np.ndarray, num_qubits: int, rng: np.random.Generator) -> np.ndarray:
        choices = np.searchsorted(self.cumulative, rng.random(states.shape[0]), side="right")
        choices = np.minimum(choices, len(self.unitaries) - 1)
        for branch, unitary in enumerate(self.unitaries):
            if self.is_identity[branch]:
                continue
            rows = np.nonzero(choices == branch)[0]
            if rows.size:
                states[rows] = apply_unitary_to_state_batch(
                    states[rows], unitary, self.targets, num_qubits
                )
        return states


class _KrausStep:
    """Unravel a general channel: per-trajectory branch choice by Born probability."""

    __slots__ = ("targets", "operators")

    def __init__(self, targets: Tuple[int, ...], operators: Sequence[np.ndarray]):
        self.targets = targets
        self.operators = [np.asarray(op, dtype=complex) for op in operators]

    def apply(self, states: np.ndarray, num_qubits: int, rng: np.random.Generator) -> np.ndarray:
        candidates = np.stack(
            [
                apply_unitary_to_state_batch(states, op, self.targets, num_qubits)
                for op in self.operators
            ]
        )
        norms = np.einsum("kbd,kbd->kb", candidates, candidates.conj()).real
        totals = norms.sum(axis=0)
        if np.any(totals <= 0):
            raise ValueError("all Kraus branches have zero probability")
        cumulative = np.cumsum(norms / totals, axis=0)
        choices = (cumulative < rng.random(states.shape[0])).sum(axis=0)
        choices = np.minimum(choices, len(self.operators) - 1)
        chosen = candidates[choices, np.arange(states.shape[0])]
        chosen /= np.linalg.norm(chosen, axis=1, keepdims=True)
        return chosen


_Step = Union[_UnitaryStep, _MixtureStep, _KrausStep]


def compile_trajectory_program(
    circuit: Circuit,
    resolver: Optional[ParamResolver],
    index_of: Dict[Qubit, int],
) -> List[_Step]:
    """Lower a circuit to trajectory steps: fused unitaries and unravelled channels.

    Parameters and channels are resolved once here, so the per-step work
    during simulation is pure array arithmetic.
    """
    channel_cache: Dict[tuple, _Step] = {}
    steps: List[_Step] = []
    pending: Dict[int, np.ndarray] = {}

    def flush(target: int) -> None:
        matrix = pending.pop(target, None)
        if matrix is not None:
            steps.append(_UnitaryStep((target,), matrix))

    def channel_step(op: NoiseOperation, targets: Tuple[int, ...]) -> _Step:
        channel_key = op.channel.cache_key(resolver)
        key = None if channel_key is None else (channel_key, targets)
        if key is not None and key in channel_cache:
            return channel_cache[key]
        if op.channel.is_mixture:
            step: _Step = _MixtureStep(targets, op.channel.mixture(resolver))
        else:
            step = _KrausStep(targets, op.kraus_operators(resolver))
        if key is not None:
            channel_cache[key] = step
        return step

    for op in circuit.all_operations():
        if op.is_measurement:
            continue
        targets = tuple(index_of[q] for q in op.qubits)
        if isinstance(op, NoiseOperation):
            for target in targets:
                flush(target)
            steps.append(channel_step(op, targets))
        elif len(targets) == 1:
            target = targets[0]
            matrix = op.unitary(resolver)
            previous = pending.get(target)
            pending[target] = matrix if previous is None else matrix @ previous
        else:
            for target in targets:
                flush(target)
            steps.append(_UnitaryStep(targets, op.unitary(resolver)))
    for target in sorted(pending):
        steps.append(_UnitaryStep((target,), pending[target]))
    return steps


def _sample_indices_from_states(
    states: np.ndarray, per_trajectory: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``per_trajectory[b]`` basis-state indices from each row of ``states``.

    One flattened ``searchsorted`` serves the whole batch: per-row cumulative
    distributions are offset by the row number so row ``b`` occupies the value
    interval ``(b, b + 1]``.
    """
    probabilities = np.abs(states) ** 2
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    cumulative = np.cumsum(probabilities, axis=1)
    cumulative[:, -1] = 1.0
    batch, dim = probabilities.shape
    offsets = np.arange(batch)
    flat_cumulative = (cumulative + offsets[:, None]).ravel()
    row_of_sample = np.repeat(offsets, per_trajectory)
    draws = rng.random(row_of_sample.size) + row_of_sample
    positions = np.searchsorted(flat_cumulative, draws, side="right")
    return np.clip(positions - row_of_sample * dim, 0, dim - 1)


class TrajectorySimulator(Simulator):
    """Batched Monte Carlo wavefunction simulation of noisy circuits.

    Parameters
    ----------
    seed:
        Seed of the backend's shared default generator (see
        :class:`~repro.simulator.base.Simulator`).
    max_batch_size:
        Upper bound on the number of trajectories evolved in one lockstep
        batch; larger ensembles are processed in chunks of this size, keeping
        peak memory at ``O(max_batch_size * 2^n)``.
    """

    name = "trajectory"

    def __init__(self, seed: Optional[int] = None, max_batch_size: int = 512):
        super().__init__(seed)
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        self.max_batch_size = int(max_batch_size)

    # ------------------------------------------------------------------
    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
        num_trajectories: int = 256,
        seed: Optional[int] = None,
    ) -> DensityMatrixResult:
        """Trajectory-averaged density matrix of the final state.

        For ideal circuits one trajectory suffices and the result is exact;
        for noisy circuits the estimate converges to the dense
        density-matrix result at the ``1/sqrt(num_trajectories)`` Monte
        Carlo rate.  Only sensible at qubit counts where the ``4^n`` output
        itself is representable — use :meth:`sample` or
        :meth:`estimate_probabilities` beyond that.

        Args:
            circuit: The circuit to run (noise channels allowed).
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            initial_state: Computational-basis index of the starting state.
            num_trajectories: Ensemble size for the Monte Carlo average.
            seed: Per-call seed; ``None`` uses the backend's default
                generator.

        Returns:
            A :class:`DensityMatrixResult` with the trajectory-averaged
            ``2^n x 2^n`` matrix.

        Raises:
            ValueError: If ``num_trajectories`` is not positive (raised
                during batch preparation).
        """
        rng = self._rng(seed)
        if not circuit.has_noise:
            num_trajectories = 1
        qubits, chunks = self._prepared_run(
            circuit, resolver, qubit_order, initial_state, num_trajectories
        )
        dim = 2 ** len(qubits)
        rho = np.zeros((dim, dim), dtype=complex)
        total = 0
        for states in self._final_state_chunks(chunks, len(qubits), rng):
            rho += np.einsum("bi,bj->ij", states, states.conj())
            total += states.shape[0]
        return DensityMatrixResult(qubits, rho / total)

    def simulate_trajectory(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
        seed: Optional[int] = None,
    ) -> StateVectorResult:
        """One pure-state trajectory (drop-in for the state-vector backend's API)."""
        rng = self._rng(seed)
        qubits, chunks = self._prepared_run(circuit, resolver, qubit_order, initial_state, 1)
        states = next(self._final_state_chunks(chunks, len(qubits), rng))
        return StateVectorResult(qubits, states[0])

    def estimate_probabilities(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
        num_trajectories: int = 256,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Monte Carlo estimate of the ``2^n`` measurement probabilities.

        The trajectory average of ``|psi|^2`` — the diagonal of the density
        matrix without ever materialising the ``4^n`` matrix.

        Args:
            circuit: The circuit to run.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            initial_state: Computational-basis index of the starting state.
            num_trajectories: Ensemble size (ideal circuits use one).
            seed: Per-call seed; ``None`` uses the backend's default
                generator.

        Returns:
            A ``(2^n,)`` float array summing to 1 (up to Monte Carlo noise).
        """
        rng = self._rng(seed)
        if not circuit.has_noise:
            num_trajectories = 1  # every trajectory of an ideal circuit is identical
        qubits, chunks = self._prepared_run(
            circuit, resolver, qubit_order, initial_state, num_trajectories
        )
        probabilities = np.zeros(2 ** len(qubits))
        total = 0
        for states in self._final_state_chunks(chunks, len(qubits), rng):
            probabilities += np.einsum("bd,bd->d", states, states.conj()).real
            total += states.shape[0]
        return probabilities / total

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        num_trajectories: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw measurement samples from the noisy circuit's output distribution.

        By default every repetition is measured on its own trajectory, which
        makes each sample an exact draw from the density-matrix distribution
        (the trajectory unravelling is unbiased).  ``num_trajectories`` can
        cap the ensemble size below ``repetitions``; samples are then spread
        round-robin over the trajectories — still unbiased per sample, at
        the cost of correlation between samples sharing a trajectory.  Ideal
        circuits collapse to a single deterministic trajectory.

        Args:
            circuit: The circuit to sample.
            repetitions: Number of bitstring samples to draw.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order.
            seed: Per-call seed; ``None`` uses the backend's default
                generator.
            num_trajectories: Optional cap on the trajectory ensemble size.
            initial_state: Computational-basis index of the starting state.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings.

        Raises:
            ValueError: If ``repetitions`` or ``num_trajectories`` is not
                positive.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        rng = self._rng(seed)
        if not circuit.has_noise:
            num_trajectories = 1
        elif num_trajectories is None:
            num_trajectories = repetitions
        else:
            num_trajectories = min(int(num_trajectories), repetitions)
            if num_trajectories < 1:
                raise ValueError("num_trajectories must be positive")
        qubits, chunks = self._prepared_run(
            circuit, resolver, qubit_order, initial_state, num_trajectories
        )
        num_qubits = len(qubits)
        # Round-robin allocation: the first (repetitions % T) trajectories
        # contribute one extra sample.
        base, extra = divmod(repetitions, num_trajectories)
        per_trajectory = np.full(num_trajectories, base, dtype=np.int64)
        per_trajectory[:extra] += 1
        samples: List[Tuple[int, ...]] = []
        consumed = 0
        for states in self._final_state_chunks(chunks, num_qubits, rng):
            counts = per_trajectory[consumed : consumed + states.shape[0]]
            consumed += states.shape[0]
            indices = _sample_indices_from_states(states, counts, rng)
            bits = indices_to_bitstrings(indices, num_qubits)
            samples.extend(map(tuple, bits.tolist()))
        return SampleResult(qubits, samples)

    # ------------------------------------------------------------------
    def _prepared_run(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
        num_trajectories: int,
    ):
        if num_trajectories < 1:
            raise ValueError("num_trajectories must be positive")
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        index_of: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        program = compile_trajectory_program(circuit, resolver, index_of)
        chunks = (program, basis_state(initial_state, len(qubits)), num_trajectories)
        return qubits, chunks

    def _final_state_chunks(self, chunks, num_qubits: int, rng: np.random.Generator):
        """Yield final ``(chunk, 2^n)`` state arrays, ``max_batch_size`` rows at a time."""
        program, initial, num_trajectories = chunks
        remaining = num_trajectories
        while remaining > 0:
            batch = min(remaining, self.max_batch_size)
            remaining -= batch
            states = np.tile(initial, (batch, 1))
            for step in program:
                states = step.apply(states, num_qubits, rng)
            yield states
