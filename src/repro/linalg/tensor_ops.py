"""Dense linear-algebra primitives shared by the baseline simulators.

Conventions
-----------
A system of ``n`` qubits indexed ``0..n-1`` has basis states indexed by
integers whose binary expansion lists qubit 0 as the most significant bit
(the Cirq "big endian" convention used throughout the paper's examples).
State vectors have shape ``(2**n,)`` and density matrices ``(2**n, 2**n)``.

Gate application works on reshaped tensors so the density-matrix simulator
never materialises a full ``2^n x 2^n`` operator for a local gate.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices (left to right)."""
    result = np.array([[1.0 + 0j]])
    for matrix in matrices:
        result = np.kron(result, matrix)
    return result


def basis_state(index: int, num_qubits: int) -> np.ndarray:
    """Return the computational basis state |index> on ``num_qubits`` qubits."""
    dim = 2 ** num_qubits
    if not 0 <= index < dim:
        raise ValueError(f"basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(dim, dtype=complex)
    state[index] = 1.0
    return state


def bits_to_index(bits: Sequence[int]) -> int:
    """Convert a bit list (qubit 0 first = most significant) to a basis index."""
    index = 0
    for bit in bits:
        index = (index << 1) | (int(bit) & 1)
    return index


def index_to_bits(index: int, num_qubits: int) -> Tuple[int, ...]:
    """Convert a basis index to a bit tuple (qubit 0 first = most significant)."""
    return tuple((index >> (num_qubits - 1 - i)) & 1 for i in range(num_qubits))


def bitstrings_to_indices(samples: Sequence[Sequence[int]]) -> np.ndarray:
    """Vectorized :func:`bits_to_index` over a batch of bit rows.

    ``samples`` is a ``(num_samples, n)`` array-like of 0/1 values; returns the
    ``(num_samples,)`` int64 array of basis indices.
    """
    array = np.asarray(samples, dtype=np.int64) & 1  # mask like bits_to_index
    if array.size == 0:
        return np.zeros(len(array), dtype=np.int64)
    weights = np.left_shift(1, np.arange(array.shape[-1] - 1, -1, -1, dtype=np.int64))
    return array @ weights


def indices_to_bitstrings(indices: Sequence[int], num_qubits: int) -> np.ndarray:
    """Vectorized :func:`index_to_bits`: ``(num_samples,)`` indices to a bit matrix."""
    array = np.asarray(indices, dtype=np.int64)
    shifts = np.arange(num_qubits - 1, -1, -1, dtype=np.int64)
    return (array[:, None] >> shifts) & 1


def _apply_to_axes(
    tensor: np.ndarray, op_tensor: np.ndarray, targets: Sequence[int], k: int
) -> np.ndarray:
    """Contract a (2,)*2k operator tensor into ``targets`` axes of ``tensor``.

    ``op_tensor`` has its first k axes as outputs and last k axes as inputs.
    The result has the same axis layout as ``tensor``.
    """
    targets = list(targets)
    num_axes = tensor.ndim
    contracted = np.tensordot(op_tensor, tensor, axes=(list(range(k, 2 * k)), targets))
    # Axes of `contracted`: the k operator output axes first, then the
    # surviving axes of `tensor` in their original relative order.
    surviving = [axis for axis in range(num_axes) if axis not in targets]
    position_of = {axis: k + i for i, axis in enumerate(surviving)}
    order: List[int] = []
    for axis in range(num_axes):
        if axis in targets:
            order.append(targets.index(axis))
        else:
            order.append(position_of[axis])
    return np.transpose(contracted, order)


def expand_operator(operator: np.ndarray, targets: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit operator acting on ``targets`` into the full 2^n space.

    ``targets[i]`` gives the global qubit index corresponding to the i-th
    (most significant first) qubit of ``operator``.  Only used for small
    systems (tests, overall-circuit unitaries); simulators use the
    tensor-contraction helpers instead.
    """
    operator = np.asarray(operator, dtype=complex)
    k = len(targets)
    if operator.shape != (2 ** k, 2 ** k):
        raise ValueError("operator shape does not match number of targets")
    if len(set(targets)) != k:
        raise ValueError("targets must be distinct")
    identity = np.eye(2 ** num_qubits, dtype=complex)
    columns = _apply_to_axes(
        identity.reshape((2,) * num_qubits + (2 ** num_qubits,)),
        operator.reshape((2,) * (2 * k)),
        targets,
        k,
    )
    return columns.reshape((2 ** num_qubits, 2 ** num_qubits))


def apply_unitary_to_state(
    state: np.ndarray, unitary: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary to ``targets`` of an n-qubit state vector."""
    k = len(targets)
    tensor = np.asarray(state, dtype=complex).reshape((2,) * num_qubits)
    op_tensor = np.asarray(unitary, dtype=complex).reshape((2,) * (2 * k))
    return _apply_to_axes(tensor, op_tensor, targets, k).reshape(-1)


def apply_unitary_to_density(
    rho: np.ndarray, unitary: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a unitary U to ``targets`` of a density matrix: rho -> U rho U†."""
    return apply_kraus_to_density(rho, [unitary], targets, num_qubits)


def apply_unitary_to_state_batch(
    states: np.ndarray, unitary: np.ndarray, targets: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary to ``targets`` of a ``(B, 2**n)`` batch of states.

    All batch rows are transformed in one tensor contraction — the hot path of
    the lockstep quantum-trajectory backend.
    """
    states = np.asarray(states, dtype=complex)
    batch = states.shape[0]
    k = len(targets)
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    op_tensor = np.asarray(unitary, dtype=complex).reshape((2,) * (2 * k))
    shifted = [t + 1 for t in targets]
    return _apply_to_axes(tensor, op_tensor, shifted, k).reshape(batch, -1)


def kraus_to_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Return the channel's superoperator ``S`` as a ``(d*d, d*d)`` matrix.

    With row index ``(i, j)`` and column index ``(k, l)``,
    ``S[(i,j),(k,l)] = sum_m E_m[i,k] * conj(E_m[j,l])`` so that
    ``vec(rho) -> S @ vec(rho)`` implements ``rho -> sum_m E_m rho E_m†``.
    Superoperators of consecutive channels on the same qubits compose by
    plain matrix multiplication, which is what makes channel fusion cheap.
    """
    operators = [np.asarray(op, dtype=complex) for op in kraus_operators]
    dim = operators[0].shape[0]
    tensor = np.zeros((dim, dim, dim, dim), dtype=complex)
    for op in operators:
        tensor += np.einsum("ik,jl->ijkl", op, op.conj())
    return tensor.reshape(dim * dim, dim * dim)


def apply_superoperator_to_density(
    rho: np.ndarray,
    superoperator: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a fused k-qubit superoperator to ``targets`` of a density matrix.

    Unlike :func:`apply_kraus_to_density`, which walks the Kraus branches one
    two-sided contraction at a time, this applies the whole channel (or a
    fused run of channels) in a single contraction over the row *and* column
    axes of the density tensor.
    """
    targets = list(targets)
    k = len(targets)
    dim = 2 ** num_qubits
    rho_tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    op_tensor = np.asarray(superoperator, dtype=complex).reshape((2,) * (4 * k))
    axes = targets + [t + num_qubits for t in targets]
    return _apply_to_axes(rho_tensor, op_tensor, axes, 2 * k).reshape((dim, dim))


def apply_kraus_to_density(
    rho: np.ndarray,
    kraus_operators: Sequence[np.ndarray],
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a channel given by Kraus operators to ``targets`` of a density matrix.

    The density matrix is treated as a tensor with ``2 * num_qubits`` axes;
    each Kraus operator is contracted into the row axes and its conjugate
    into the column axes, avoiding any full-space operator expansion.
    """
    targets = list(targets)
    k = len(targets)
    dim = 2 ** num_qubits
    rho_tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    column_targets = [t + num_qubits for t in targets]
    result = np.zeros_like(rho_tensor)
    for op in kraus_operators:
        op_tensor = np.asarray(op, dtype=complex).reshape((2,) * (2 * k))
        op_conj = np.conj(op_tensor)
        branch = _apply_to_axes(rho_tensor, op_tensor, targets, k)
        branch = _apply_to_axes(branch, op_conj, column_targets, k)
        result += branch
    return result.reshape((dim, dim))


def density_from_state(state: np.ndarray) -> np.ndarray:
    """Return the pure-state density matrix |state><state|."""
    state = np.asarray(state, dtype=complex)
    return np.outer(state, state.conj())


def partial_trace(rho: np.ndarray, keep: Sequence[int], num_qubits: int) -> np.ndarray:
    """Trace out all qubits not listed in ``keep`` from a density matrix.

    The kept qubits retain their relative order.
    """
    keep = list(keep)
    tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    traced = sorted((q for q in range(num_qubits) if q not in keep), reverse=True)
    remaining = num_qubits
    for qubit in traced:
        tensor = np.trace(tensor, axis1=qubit, axis2=qubit + remaining)
        remaining -= 1
    dim = 2 ** len(keep)
    return tensor.reshape((dim, dim))


def measurement_probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities of a state vector in the computational basis."""
    return np.abs(np.asarray(state)) ** 2


def density_measurement_probabilities(rho: np.ndarray) -> np.ndarray:
    """Measurement probabilities from the diagonal of a density matrix."""
    return np.real(np.diag(rho)).clip(min=0.0)


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """|<a|b>|^2 for two pure states."""
    return float(abs(np.vdot(state_a, state_b)) ** 2)


def trace_distance(rho_a: np.ndarray, rho_b: np.ndarray) -> float:
    """Trace distance between two density matrices."""
    diff = np.asarray(rho_a) - np.asarray(rho_b)
    eigenvalues = np.linalg.eigvalsh((diff + diff.conj().T) / 2.0)
    return float(0.5 * np.sum(np.abs(eigenvalues)))
