"""Dense linear algebra helpers used by the baseline simulators."""

from .tensor_ops import (
    apply_kraus_to_density,
    apply_unitary_to_density,
    apply_unitary_to_state,
    basis_state,
    bits_to_index,
    density_from_state,
    density_measurement_probabilities,
    expand_operator,
    index_to_bits,
    kron_all,
    measurement_probabilities,
    partial_trace,
    state_fidelity,
    trace_distance,
)

__all__ = [
    "apply_kraus_to_density",
    "apply_unitary_to_density",
    "apply_unitary_to_state",
    "basis_state",
    "bits_to_index",
    "density_from_state",
    "density_measurement_probabilities",
    "expand_operator",
    "index_to_bits",
    "kron_all",
    "measurement_probabilities",
    "partial_trace",
    "state_fidelity",
    "trace_distance",
]
