"""Max-Cut problem instances for the QAOA workload.

The paper's QAOA benchmark solves Max-Cut on random graphs "with varying
number of vertices each having three edges" — i.e. random 3-regular graphs —
where each qubit encodes a vertex and each ZZ interaction an edge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


class MaxCutProblem:
    """A Max-Cut instance over an undirected graph."""

    def __init__(self, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise ValueError("Max-Cut problem requires a non-empty graph")
        self.graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")

    @property
    def num_vertices(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [(min(u, v), max(u, v)) for u, v in self.graph.edges()]

    # ------------------------------------------------------------------
    def cut_value(self, bits: Sequence[int]) -> int:
        """Number of edges cut by the partition described by ``bits``."""
        if len(bits) != self.num_vertices:
            raise ValueError("bit assignment length must equal the number of vertices")
        return sum(1 for u, v in self.edges if bits[u] != bits[v])

    def cost(self, bits: Sequence[int]) -> float:
        """QAOA cost (negative cut value, so minimisation finds the max cut)."""
        return -float(self.cut_value(bits))

    def max_cut_brute_force(self) -> Tuple[int, Tuple[int, ...]]:
        """Exact optimum by enumeration (small instances only)."""
        best_value = -1
        best_bits: Tuple[int, ...] = tuple([0] * self.num_vertices)
        for mask in range(2 ** self.num_vertices):
            bits = tuple((mask >> i) & 1 for i in range(self.num_vertices))
            value = self.cut_value(bits)
            if value > best_value:
                best_value = value
                best_bits = bits
        return best_value, best_bits

    def expected_cut(self, distribution: Sequence[float]) -> float:
        """Expected cut value under a distribution over bitstrings.

        The distribution is indexed with vertex 0 as the most significant bit
        (the simulators' convention).
        """
        total = 0.0
        n = self.num_vertices
        for index, probability in enumerate(distribution):
            if probability == 0:
                continue
            bits = [(index >> (n - 1 - i)) & 1 for i in range(n)]
            total += probability * self.cut_value(bits)
        return total

    def __repr__(self) -> str:
        return f"MaxCutProblem(vertices={self.num_vertices}, edges={len(self.edges)})"


def random_regular_maxcut(
    num_vertices: int, degree: int = 3, seed: Optional[int] = None
) -> MaxCutProblem:
    """A Max-Cut instance on a random ``degree``-regular graph.

    Matches the paper's workload (3-regular random graphs).  For very small
    vertex counts where a regular graph does not exist, falls back to a
    cycle.
    """
    if num_vertices * degree % 2 != 0 or num_vertices <= degree:
        graph = nx.cycle_graph(num_vertices)
    else:
        graph = nx.random_regular_graph(degree, num_vertices, seed=seed)
    return MaxCutProblem(graph)


def ring_maxcut(num_vertices: int) -> MaxCutProblem:
    """A Max-Cut instance on a simple ring (useful for tests with known optima)."""
    return MaxCutProblem(nx.cycle_graph(num_vertices))
