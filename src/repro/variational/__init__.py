"""Variational workloads: QAOA Max-Cut, VQE 2D Ising, classical optimizers."""

from .gradient import CompiledObjective, gradient_descent, parameter_shift_gradient
from .ising import IsingModel2D, square_grid_ising
from .loop import VariationalLoop, VariationalRun
from .maxcut import MaxCutProblem, random_regular_maxcut, ring_maxcut
from .optimizer import NelderMeadOptimizer, OptimizationResult, RandomSearchOptimizer
from .qaoa import QAOACircuit, qaoa_maxcut_circuit
from .vqe import VQECircuit

__all__ = [
    "MaxCutProblem",
    "random_regular_maxcut",
    "ring_maxcut",
    "IsingModel2D",
    "square_grid_ising",
    "QAOACircuit",
    "qaoa_maxcut_circuit",
    "VQECircuit",
    "NelderMeadOptimizer",
    "RandomSearchOptimizer",
    "OptimizationResult",
    "VariationalLoop",
    "VariationalRun",
    "CompiledObjective",
    "parameter_shift_gradient",
    "gradient_descent",
]
