"""Derivative-free classical optimizers for the variational loop.

The paper's hybrid algorithms use the Nelder–Mead simplex method on the
classical side.  We implement it from scratch (no dependence on
``scipy.optimize``) so the full variational loop is reproducible inside this
library, plus a simple random-search baseline used in tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

Objective = Callable[[np.ndarray], float]


class OptimizationResult:
    """The outcome of a classical optimization run."""

    def __init__(
        self,
        best_parameters: np.ndarray,
        best_value: float,
        num_evaluations: int,
        history: List[Tuple[np.ndarray, float]],
        converged: bool,
    ):
        self.best_parameters = np.asarray(best_parameters, dtype=float)
        self.best_value = float(best_value)
        self.num_evaluations = int(num_evaluations)
        self.history = history
        self.converged = bool(converged)

    def __repr__(self) -> str:
        return (
            f"OptimizationResult(best_value={self.best_value:.6f}, "
            f"evaluations={self.num_evaluations}, converged={self.converged})"
        )


class NelderMeadOptimizer:
    """The Nelder–Mead downhill simplex method (minimisation)."""

    def __init__(
        self,
        max_iterations: int = 200,
        initial_step: float = 0.25,
        tolerance: float = 1e-4,
        alpha: float = 1.0,
        gamma: float = 2.0,
        rho: float = 0.5,
        sigma: float = 0.5,
    ):
        self.max_iterations = max_iterations
        self.initial_step = initial_step
        self.tolerance = tolerance
        self.alpha = alpha
        self.gamma = gamma
        self.rho = rho
        self.sigma = sigma

    def minimize(self, objective: Objective, initial: Sequence[float]) -> OptimizationResult:
        initial = np.asarray(initial, dtype=float)
        dimension = len(initial)
        evaluations = 0
        history: List[Tuple[np.ndarray, float]] = []

        def evaluate(point: np.ndarray) -> float:
            nonlocal evaluations
            value = float(objective(point))
            evaluations += 1
            history.append((point.copy(), value))
            return value

        # Initial simplex: the start point plus one perturbed vertex per axis.
        simplex = [initial.copy()]
        for axis in range(dimension):
            vertex = initial.copy()
            vertex[axis] += self.initial_step
            simplex.append(vertex)
        values = [evaluate(vertex) for vertex in simplex]

        converged = False
        for _ in range(self.max_iterations):
            order = np.argsort(values)
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]

            if abs(values[-1] - values[0]) < self.tolerance:
                converged = True
                break

            centroid = np.mean(simplex[:-1], axis=0)
            worst = simplex[-1]

            reflected = centroid + self.alpha * (centroid - worst)
            reflected_value = evaluate(reflected)
            if values[0] <= reflected_value < values[-2]:
                simplex[-1], values[-1] = reflected, reflected_value
                continue

            if reflected_value < values[0]:
                expanded = centroid + self.gamma * (reflected - centroid)
                expanded_value = evaluate(expanded)
                if expanded_value < reflected_value:
                    simplex[-1], values[-1] = expanded, expanded_value
                else:
                    simplex[-1], values[-1] = reflected, reflected_value
                continue

            contracted = centroid + self.rho * (worst - centroid)
            contracted_value = evaluate(contracted)
            if contracted_value < values[-1]:
                simplex[-1], values[-1] = contracted, contracted_value
                continue

            # Shrink towards the best vertex.
            best = simplex[0]
            for index in range(1, len(simplex)):
                simplex[index] = best + self.sigma * (simplex[index] - best)
                values[index] = evaluate(simplex[index])

        best_index = int(np.argmin(values))
        return OptimizationResult(
            simplex[best_index], values[best_index], evaluations, history, converged
        )


class RandomSearchOptimizer:
    """Uniform random search within a box; a baseline and test utility."""

    def __init__(self, num_samples: int = 64, bounds: Tuple[float, float] = (0.0, np.pi), seed: Optional[int] = None):
        self.num_samples = num_samples
        self.bounds = bounds
        self.rng = np.random.default_rng(seed)

    def minimize(self, objective: Objective, initial: Sequence[float]) -> OptimizationResult:
        initial = np.asarray(initial, dtype=float)
        dimension = len(initial)
        history: List[Tuple[np.ndarray, float]] = []
        best_point = initial.copy()
        best_value = float(objective(initial))
        history.append((best_point.copy(), best_value))
        low, high = self.bounds
        for _ in range(self.num_samples):
            candidate = self.rng.uniform(low, high, size=dimension)
            value = float(objective(candidate))
            history.append((candidate.copy(), value))
            if value < best_value:
                best_value = value
                best_point = candidate
        return OptimizationResult(best_point, best_value, len(history), history, True)
