"""2D Ising model instances for the VQE workload.

The paper's VQE benchmark finds the minimum-energy configuration of a 2D
Ising model: each qubit encodes a grid point and ZZ couplings encode
interactions between neighbouring spins, optionally with local fields.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class IsingModel2D:
    """A transverse-field-free 2D Ising Hamiltonian H = sum J s_i s_j + sum h s_i.

    Spins take values s = +1 (bit 0) or s = -1 (bit 1).  Grid points are
    indexed row-major; couplings connect horizontal and vertical neighbours.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        coupling: float = 1.0,
        field: float = 0.0,
        couplings: Optional[Dict[Tuple[int, int], float]] = None,
        fields: Optional[Sequence[float]] = None,
    ):
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.num_sites = rows * cols
        if couplings is None:
            couplings = {}
            for r in range(rows):
                for c in range(cols):
                    site = self.site_index(r, c)
                    if c + 1 < cols:
                        couplings[(site, self.site_index(r, c + 1))] = coupling
                    if r + 1 < rows:
                        couplings[(site, self.site_index(r + 1, c))] = coupling
        self.couplings: Dict[Tuple[int, int], float] = {
            (min(a, b), max(a, b)): float(j) for (a, b), j in couplings.items()
        }
        if fields is None:
            fields = [field] * self.num_sites
        if len(fields) != self.num_sites:
            raise ValueError("fields length must match the number of sites")
        self.fields: List[float] = [float(h) for h in fields]

    # ------------------------------------------------------------------
    def site_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError("grid coordinates out of range")
        return row * self.cols + col

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return sorted(self.couplings.keys())

    # ------------------------------------------------------------------
    def energy(self, bits: Sequence[int]) -> float:
        """Energy of a spin configuration given as bits (0 -> +1, 1 -> -1)."""
        if len(bits) != self.num_sites:
            raise ValueError("configuration length must equal the number of sites")
        spins = [1.0 - 2.0 * int(b) for b in bits]
        energy = 0.0
        for (a, b), j in self.couplings.items():
            energy += j * spins[a] * spins[b]
        for site, h in enumerate(self.fields):
            energy += h * spins[site]
        return energy

    def cost(self, bits: Sequence[int]) -> float:
        return self.energy(bits)

    def ground_state_brute_force(self) -> Tuple[float, Tuple[int, ...]]:
        """Exact ground state by enumeration (small grids only)."""
        best_energy = float("inf")
        best_bits: Tuple[int, ...] = tuple([0] * self.num_sites)
        for mask in range(2 ** self.num_sites):
            bits = tuple((mask >> i) & 1 for i in range(self.num_sites))
            energy = self.energy(bits)
            if energy < best_energy:
                best_energy = energy
                best_bits = bits
        return best_energy, best_bits

    def expected_energy(self, distribution: Sequence[float]) -> float:
        """Expected energy under a distribution over bitstrings (site 0 = MSB)."""
        total = 0.0
        n = self.num_sites
        for index, probability in enumerate(distribution):
            if probability == 0:
                continue
            bits = [(index >> (n - 1 - i)) & 1 for i in range(n)]
            total += probability * self.energy(bits)
        return total

    def __repr__(self) -> str:
        return f"IsingModel2D(rows={self.rows}, cols={self.cols}, edges={len(self.couplings)})"


def square_grid_ising(
    num_sites: int, coupling: float = 1.0, field: float = 0.25, seed: Optional[int] = None
) -> IsingModel2D:
    """An Ising instance on the most-square grid with ``num_sites`` points.

    The paper sweeps the number of qubits (grid points); we factor the count
    into the most balanced rows x cols rectangle, falling back to a 1 x n
    chain for primes.  Random fields (when ``seed`` is given) break the
    degeneracy between the two anti-ferromagnetic ground states.
    """
    best_rows = 1
    for rows in range(1, int(np.sqrt(num_sites)) + 1):
        if num_sites % rows == 0:
            best_rows = rows
    cols = num_sites // best_rows
    fields: Optional[List[float]] = None
    if seed is not None:
        rng = np.random.default_rng(seed)
        fields = list(rng.uniform(-abs(field), abs(field), size=num_sites))
    return IsingModel2D(best_rows, cols, coupling=coupling, field=field, fields=fields)
