"""Parameter-shift gradients evaluated on a compiled circuit.

Because the knowledge-compilation simulator re-binds parameters without
recompiling, gradient estimation via the parameter-shift rule — evaluate the
objective at ``theta +/- pi/2`` per parameter — costs just two extra weight
re-bindings and sampling passes per parameter.  This module implements that
estimator for QAOA/VQE ansatz objectives, enabling gradient-based optimizers
alongside the paper's Nelder–Mead loop.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..simulator.base import Simulator
from ..simulator.kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator

Objective = Callable[[Sequence[float]], float]


def parameter_shift_gradient(
    objective: Objective,
    parameters: Sequence[float],
    shift: float = np.pi / 2,
    frequency: float = 1.0,
) -> np.ndarray:
    """Two-term parameter-shift gradient of ``objective`` at ``parameters``.

    Exact for objectives of the form ``A + B cos(f * theta) + C sin(f * theta)``
    in each parameter, where ``f`` is ``frequency``:

        dE/dtheta = f * (E(theta + s) - E(theta - s)) / (2 sin(f * s)).

    Expectation values of rotations ``exp(-i theta P / 2)`` have frequency 1
    (the textbook rule, ``shift = pi/2``); this library's QAOA/VQE ansatz
    passes ``2 * parameter`` as the gate angle, giving frequency 2 (use
    ``shift = pi/4``, which :class:`CompiledObjective` does by default).
    """
    parameters = np.asarray(parameters, dtype=float)
    gradient = np.zeros_like(parameters)
    denominator = 2.0 * np.sin(frequency * shift) / frequency
    if abs(denominator) < 1e-12:
        raise ValueError("shift and frequency lead to a vanishing parameter-shift denominator")
    for index in range(len(parameters)):
        plus = parameters.copy()
        minus = parameters.copy()
        plus[index] += shift
        minus[index] -= shift
        gradient[index] = (objective(plus) - objective(minus)) / denominator
    return gradient


class CompiledObjective:
    """An ansatz objective evaluated by sampling a compiled circuit.

    Wraps (ansatz, simulator) into a callable suitable for
    :func:`parameter_shift_gradient` and for gradient-descent loops; the
    circuit is compiled once when the simulator supports it.
    """

    def __init__(
        self,
        ansatz,
        simulator: Simulator,
        samples_per_evaluation: int = 512,
        seed: Optional[int] = None,
        exact: bool = False,
        num_chains: Optional[int] = None,
    ):
        self.ansatz = ansatz
        self.simulator = simulator
        self.samples_per_evaluation = samples_per_evaluation
        self.seed = seed
        self.exact = exact
        self.num_chains = num_chains
        self._evaluations = 0
        self._compiled: Optional[CompiledCircuit] = None
        if isinstance(simulator, KnowledgeCompilationSimulator):
            # One compile per objective; the simulator's topology cache
            # deduplicates further across objectives sharing an ansatz
            # topology, so every optimizer step and parameter-shift probe
            # below is a pure weight re-binding.
            self._compiled = simulator.compile_circuit(ansatz.circuit)

    @property
    def num_evaluations(self) -> int:
        return self._evaluations

    def __call__(self, parameters: Sequence[float]) -> float:
        self._evaluations += 1
        resolver = self.ansatz.resolver(list(parameters))
        if self.exact:
            return self._exact_value(resolver)
        seed = None if self.seed is None else self.seed + self._evaluations
        if self._compiled is not None:
            samples = self.simulator.sample(
                self._compiled,
                self.samples_per_evaluation,
                resolver=resolver,
                seed=seed,
                num_chains=self.num_chains,
            )
        else:
            resolved = self.ansatz.circuit.resolve_parameters(resolver)
            samples = self.simulator.sample(resolved, self.samples_per_evaluation, seed=seed)
        return self.ansatz.objective_from_samples(samples)

    def _exact_value(self, resolver) -> float:
        """Noise-free exact objective from the full output distribution (tests, small circuits)."""
        if self._compiled is not None:
            probabilities = np.abs(self._compiled.state_vector(resolver)) ** 2
        else:
            from ..statevector import StateVectorSimulator

            state = StateVectorSimulator().simulate(
                self.ansatz.circuit.resolve_parameters(resolver)
            ).state_vector
            probabilities = np.abs(state) ** 2
        return self.ansatz.objective_from_distribution(probabilities)

    def gradient(
        self,
        parameters: Sequence[float],
        method: str = "finite_difference",
        step: float = 1e-4,
        shift: float = np.pi / 4,
        frequency: float = 2.0,
    ) -> np.ndarray:
        """Gradient of the objective at ``parameters``.

        The default is a central finite difference: QAOA/VQE cost expectations
        are sums of multi-frequency trigonometric terms (several edges share
        each angle), so no single two-term parameter-shift rule is exact for
        them.  ``method="parameter_shift"`` applies the two-term rule with the
        given ``shift``/``frequency`` for ansatz families where it is exact
        (one rotation per parameter).
        """
        if method == "parameter_shift":
            return parameter_shift_gradient(self, parameters, shift, frequency)
        if method != "finite_difference":
            raise ValueError(f"unknown gradient method: {method}")
        parameters = np.asarray(parameters, dtype=float)
        gradient = np.zeros_like(parameters)
        for index in range(len(parameters)):
            plus = parameters.copy()
            minus = parameters.copy()
            plus[index] += step
            minus[index] -= step
            gradient[index] = (self(plus) - self(minus)) / (2.0 * step)
        return gradient


def gradient_descent(
    objective: CompiledObjective,
    initial_parameters: Sequence[float],
    learning_rate: float = 0.1,
    num_steps: int = 50,
    method: str = "finite_difference",
) -> List[dict]:
    """A plain gradient-descent loop over a compiled objective.

    Returns the per-step history (parameters, objective value, gradient norm).
    """
    parameters = np.asarray(initial_parameters, dtype=float)
    history: List[dict] = []
    for step in range(num_steps):
        value = objective(parameters)
        gradient = objective.gradient(parameters, method=method)
        history.append(
            {
                "step": step,
                "parameters": parameters.copy(),
                "value": float(value),
                "gradient_norm": float(np.linalg.norm(gradient)),
            }
        )
        parameters = parameters - learning_rate * gradient
    history.append(
        {
            "step": num_steps,
            "parameters": parameters.copy(),
            "value": float(objective(parameters)),
            "gradient_norm": float("nan"),
        }
    )
    return history
