"""VQE ansatz circuits for the 2D Ising model (the paper's second workload).

The hardware-efficient ansatz mirrors the structure the paper describes: each
qubit encodes a grid point, ZZ entangling rotations encode the couplings
between neighbouring spins, and per-qubit Ry rotations provide the
variational freedom.  One "iteration" is one entangling layer plus one
rotation layer; deeper circuits repeat the block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuits.circuit import Circuit
from ..circuits.gates import Ry, ZZ
from ..circuits.parameters import ParamResolver, Symbol
from ..circuits.qubits import LineQubit, Qubit
from .ising import IsingModel2D


class VQECircuit:
    """A VQE ansatz for a 2D Ising model with symbolic rotation angles."""

    def __init__(self, model: IsingModel2D, iterations: int = 1):
        if iterations < 1:
            raise ValueError("VQE requires at least one iteration")
        self.model = model
        self.iterations = iterations
        self.qubits: List[Qubit] = LineQubit.range(model.num_sites)
        self.thetas: List[List[Symbol]] = [
            [Symbol(f"theta{k}_{site}") for site in range(model.num_sites)]
            for k in range(iterations + 1)
        ]
        self.coupling_angles: List[Symbol] = [Symbol(f"phi{k}") for k in range(iterations)]
        self.circuit = self._build()

    def _build(self) -> Circuit:
        circuit = Circuit()
        # Initial rotation layer.
        for site, qubit in enumerate(self.qubits):
            circuit.append(Ry(self.thetas[0][site])(qubit))
        for k in range(self.iterations):
            for a, b in self.model.edges:
                circuit.append(ZZ(self.coupling_angles[k])(self.qubits[a], self.qubits[b]))
            for site, qubit in enumerate(self.qubits):
                circuit.append(Ry(self.thetas[k + 1][site])(qubit))
        return circuit

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return (self.iterations + 1) * self.model.num_sites + self.iterations

    def resolver(self, parameters: Sequence[float]) -> ParamResolver:
        """Flat layout: all theta layers (site-major per layer) then coupling angles."""
        if len(parameters) != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {len(parameters)}"
            )
        assignment: Dict[Symbol, float] = {}
        cursor = 0
        for layer in self.thetas:
            for symbol in layer:
                assignment[symbol] = float(parameters[cursor])
                cursor += 1
        for symbol in self.coupling_angles:
            assignment[symbol] = float(parameters[cursor])
            cursor += 1
        return ParamResolver(assignment)

    def objective_from_samples(self, samples) -> float:
        """Mean Ising energy over a :class:`SampleResult`."""
        if len(samples) == 0:
            raise ValueError("no samples")
        total = 0.0
        for bits in samples:
            total += self.model.energy(bits)
        return total / len(samples)

    def objective_from_distribution(self, distribution: Sequence[float]) -> float:
        return self.model.expected_energy(distribution)

    def __repr__(self) -> str:
        return (
            f"VQECircuit(sites={self.model.num_sites}, iterations={self.iterations}, "
            f"gates={self.circuit.gate_count()})"
        )
