"""The hybrid quantum-classical variational loop.

Ties together an ansatz (QAOA or VQE), a simulator backend and a classical
optimizer: each optimizer iteration binds the current parameters, draws
samples from the circuit's output distribution, and evaluates the problem
objective on those samples.  When the backend is the knowledge-compilation
simulator, the circuit is compiled once up front and only the weight values
change per iteration — the reuse the paper's toolchain is designed around.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..simulator.base import Simulator
from ..simulator.kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator
from .optimizer import NelderMeadOptimizer, OptimizationResult
from .qaoa import QAOACircuit
from .vqe import VQECircuit

Ansatz = Union[QAOACircuit, VQECircuit]


class VariationalRun:
    """Result of a full variational optimization."""

    def __init__(
        self,
        optimization: OptimizationResult,
        best_samples,
        objective_trace: List[float],
        num_circuit_executions: int,
    ):
        self.optimization = optimization
        self.best_samples = best_samples
        self.objective_trace = objective_trace
        self.num_circuit_executions = num_circuit_executions

    @property
    def best_value(self) -> float:
        return self.optimization.best_value

    @property
    def best_parameters(self) -> np.ndarray:
        return self.optimization.best_parameters

    def __repr__(self) -> str:
        return (
            f"VariationalRun(best_value={self.best_value:.4f}, "
            f"executions={self.num_circuit_executions})"
        )


class VariationalLoop:
    """Runs a hybrid optimization of an ansatz on a simulator backend."""

    def __init__(
        self,
        ansatz: Ansatz,
        simulator: Simulator,
        samples_per_evaluation: int = 256,
        optimizer: Optional[NelderMeadOptimizer] = None,
        seed: Optional[int] = None,
    ):
        self.ansatz = ansatz
        self.simulator = simulator
        self.samples_per_evaluation = samples_per_evaluation
        self.optimizer = optimizer or NelderMeadOptimizer(max_iterations=40)
        self.seed = seed
        self._compiled: Optional[CompiledCircuit] = None
        self._executions = 0
        self._trace: List[float] = []

        if isinstance(simulator, KnowledgeCompilationSimulator):
            # Compile the parameterized circuit structure once; every
            # objective evaluation below re-binds parameters only.  The
            # simulator's topology cache means separate loops over the same
            # ansatz topology (e.g. restarts, gradient probes) also share
            # this compile.
            self._compiled = simulator.compile_circuit(ansatz.circuit)

    # ------------------------------------------------------------------
    def _sample(self, resolver):
        self._executions += 1
        target = self._compiled if self._compiled is not None else self.ansatz.circuit
        seed = None if self.seed is None else self.seed + self._executions
        if self._compiled is not None:
            return self.simulator.sample(
                target, self.samples_per_evaluation, resolver=resolver, seed=seed
            )
        resolved = self.ansatz.circuit.resolve_parameters(resolver)
        return self.simulator.sample(resolved, self.samples_per_evaluation, seed=seed)

    def objective(self, parameters: np.ndarray) -> float:
        resolver = self.ansatz.resolver(list(parameters))
        samples = self._sample(resolver)
        value = self.ansatz.objective_from_samples(samples)
        self._trace.append(value)
        return value

    def run(self, initial_parameters: Optional[np.ndarray] = None) -> VariationalRun:
        if initial_parameters is None:
            rng = np.random.default_rng(self.seed)
            initial_parameters = rng.uniform(0.1, 1.0, size=self.ansatz.num_parameters)
        result = self.optimizer.minimize(self.objective, initial_parameters)
        best_resolver = self.ansatz.resolver(list(result.best_parameters))
        best_samples = self._sample(best_resolver)
        return VariationalRun(result, best_samples, list(self._trace), self._executions)
