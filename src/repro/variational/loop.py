"""The hybrid quantum-classical variational loop (thin layer over ``Device``).

Ties together an ansatz (QAOA or VQE), an execution backend and a classical
optimizer: each optimizer iteration binds the current parameters, draws
samples from the circuit's output distribution, and evaluates the problem
objective on those samples.  The simulator instance is wrapped in a
fixed-backend :class:`~repro.api.device.Device`: dense backends sample
through ``Device.run`` rows, and the knowledge-compilation backend
compiles once through the device's per-topology memo — the
compile-once/rebind-per-iteration economics the paper's toolchain is
designed around — then samples the precompiled circuit directly so the
legacy Gibbs semantics (warm chains, per-seed streams) are preserved
bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..api.device import Device
from ..api.registry import REGISTRY
from ..simulator.base import Simulator
from ..simulator.kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator
from .optimizer import NelderMeadOptimizer, OptimizationResult
from .qaoa import QAOACircuit
from .vqe import VQECircuit

Ansatz = Union[QAOACircuit, VQECircuit]


class VariationalRun:
    """Result of a full variational optimization."""

    def __init__(
        self,
        optimization: OptimizationResult,
        best_samples,
        objective_trace: List[float],
        num_circuit_executions: int,
    ):
        self.optimization = optimization
        self.best_samples = best_samples
        self.objective_trace = objective_trace
        self.num_circuit_executions = num_circuit_executions

    @property
    def best_value(self) -> float:
        return self.optimization.best_value

    @property
    def best_parameters(self) -> np.ndarray:
        return self.optimization.best_parameters

    def __repr__(self) -> str:
        return (
            f"VariationalRun(best_value={self.best_value:.4f}, "
            f"executions={self.num_circuit_executions})"
        )


class VariationalLoop:
    """Runs a hybrid optimization of an ansatz on a simulator backend."""

    def __init__(
        self,
        ansatz: Ansatz,
        simulator: Simulator,
        samples_per_evaluation: int = 256,
        optimizer: Optional[NelderMeadOptimizer] = None,
        seed: Optional[int] = None,
    ):
        self.ansatz = ansatz
        self.simulator = simulator
        self.samples_per_evaluation = samples_per_evaluation
        self.optimizer = optimizer or NelderMeadOptimizer(max_iterations=40)
        self.seed = seed
        self._compiled: Optional[CompiledCircuit] = None
        self._executions = 0
        self._trace: List[float] = []

        # Wrap the backend in a fixed-name Device so every objective
        # evaluation goes through the unified execution API (registered
        # backends only — a custom Simulator subclass keeps the direct
        # call path).
        self._device: Optional[Device] = None
        if simulator.name in REGISTRY:
            self._device = Device(
                backend=simulator.name, instances={simulator.name: simulator}, seed=seed
            )

        if isinstance(simulator, KnowledgeCompilationSimulator):
            # Compile the parameterized circuit structure once; every
            # objective evaluation below re-binds parameters only (Gibbs
            # sampling against the shared compile — the legacy semantics,
            # bit-identical per seed).  The device memo shares the artifact
            # with any batched run over the same topology.
            if self._device is not None:
                self._compiled = self._device.ensure_compiled(ansatz.circuit)
            else:
                self._compiled = simulator.compile_circuit(ansatz.circuit)

    # ------------------------------------------------------------------
    def _sample(self, resolver):
        self._executions += 1
        seed = None if self.seed is None else self.seed + self._executions
        if self._compiled is not None:
            # Knowledge-compilation fast path: sample the precompiled
            # circuit directly — no per-iteration canonicalization, and the
            # sampling semantics (warm Gibbs chains, per-seed streams) stay
            # exactly what they were before the Device API existed.
            return self.simulator.sample(
                self._compiled, self.samples_per_evaluation, resolver=resolver, seed=seed
            )
        if self._device is not None:
            job = self._device.run(
                self.ansatz.circuit,
                params=[resolver],
                repetitions=self.samples_per_evaluation,
                seed=seed,
            )
            return job.result().sample_results()[0]
        resolved = self.ansatz.circuit.resolve_parameters(resolver)
        return self.simulator.sample(resolved, self.samples_per_evaluation, seed=seed)

    def objective(self, parameters: np.ndarray) -> float:
        resolver = self.ansatz.resolver(list(parameters))
        samples = self._sample(resolver)
        value = self.ansatz.objective_from_samples(samples)
        self._trace.append(value)
        return value

    def run(self, initial_parameters: Optional[np.ndarray] = None) -> VariationalRun:
        if initial_parameters is None:
            rng = np.random.default_rng(self.seed)
            initial_parameters = rng.uniform(0.1, 1.0, size=self.ansatz.num_parameters)
        result = self.optimizer.minimize(self.objective, initial_parameters)
        best_resolver = self.ansatz.resolver(list(result.best_parameters))
        best_samples = self._sample(best_resolver)
        return VariationalRun(result, best_samples, list(self._trace), self._executions)
