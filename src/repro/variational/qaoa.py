"""QAOA ansatz circuits for Max-Cut (Farhi et al., the paper's first workload).

A ``p``-iteration QAOA circuit is::

    |psi(gamma, beta)> = prod_{k=p..1} U_B(beta_k) U_C(gamma_k) H^{(x n)} |0...0>

where ``U_C(gamma) = exp(-i gamma C)`` applies a ZZ rotation per graph edge
and ``U_B(beta) = exp(-i beta B)`` applies an Rx rotation per qubit.  The
circuits are built with *symbolic* parameters so the knowledge-compilation
simulator can compile once and re-bind angles on every optimizer iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import H, Rx, ZZ
from ..circuits.parameters import ParamResolver, Symbol
from ..circuits.qubits import LineQubit, Qubit
from .maxcut import MaxCutProblem


class QAOACircuit:
    """A QAOA Max-Cut ansatz with symbolic (gamma_k, beta_k) parameters."""

    def __init__(self, problem: MaxCutProblem, iterations: int = 1):
        if iterations < 1:
            raise ValueError("QAOA requires at least one iteration")
        self.problem = problem
        self.iterations = iterations
        self.qubits: List[Qubit] = LineQubit.range(problem.num_vertices)
        self.gammas: List[Symbol] = [Symbol(f"gamma{k}") for k in range(iterations)]
        self.betas: List[Symbol] = [Symbol(f"beta{k}") for k in range(iterations)]
        self.circuit = self._build()

    def _build(self) -> Circuit:
        circuit = Circuit()
        circuit.append(H(q) for q in self.qubits)
        for k in range(self.iterations):
            gamma = self.gammas[k]
            beta = self.betas[k]
            for u, v in self.problem.edges:
                circuit.append(ZZ(2 * gamma)(self.qubits[u], self.qubits[v]))
            for qubit in self.qubits:
                circuit.append(Rx(2 * beta)(qubit))
        return circuit

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return 2 * self.iterations

    def resolver(self, parameters: Sequence[float]) -> ParamResolver:
        """Map a flat parameter vector [gamma_0..gamma_{p-1}, beta_0..beta_{p-1}]."""
        if len(parameters) != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {len(parameters)}"
            )
        assignment: Dict[Symbol, float] = {}
        for k in range(self.iterations):
            assignment[self.gammas[k]] = float(parameters[k])
            assignment[self.betas[k]] = float(parameters[self.iterations + k])
        return ParamResolver(assignment)

    def objective_from_samples(self, samples) -> float:
        """Mean cost (negative cut) over a :class:`SampleResult`."""
        if len(samples) == 0:
            raise ValueError("no samples")
        total = 0.0
        for bits in samples:
            total += self.problem.cost(bits)
        return total / len(samples)

    def objective_from_distribution(self, distribution: Sequence[float]) -> float:
        return -self.problem.expected_cut(distribution)

    def __repr__(self) -> str:
        return (
            f"QAOACircuit(vertices={self.problem.num_vertices}, iterations={self.iterations}, "
            f"gates={self.circuit.gate_count()})"
        )


def qaoa_maxcut_circuit(
    problem: MaxCutProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> Circuit:
    """A concrete (non-symbolic) QAOA circuit for fixed angles."""
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have the same length")
    ansatz = QAOACircuit(problem, iterations=len(gammas))
    resolver = ansatz.resolver(list(gammas) + list(betas))
    return ansatz.circuit.resolve_parameters(resolver)
