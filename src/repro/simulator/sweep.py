"""Compile-once parameter-sweep engine (thin layer over :mod:`repro.api`).

The paper's economics are "compile once, query many": the exponential
CNF -> d-DNNF compile is paid per circuit *topology*, after which every
parameter binding costs a handful of vectorized passes.  This module keeps
the first-class sweep surface — :class:`ParameterSweep`,
:class:`SweepResult`, :func:`resolver_grid` / :func:`resolver_zip` — but the
engine underneath is now the unified execution API: ``run()`` submits a
sweep spec to a :class:`~repro.api.device.Device` and converts the batch
rows back to sweep rows.

What the Device gives the sweep for free:

* points fanned out over a **process pool** with per-worker disk-cache
  hydration, the compile still happening exactly once per sweep;
* deterministic per-point seeding (``seed + index``), so serial and
  parallel runs produce identical results;
* with ``dispatch="auto"``, per-point Clifford classification: a point
  whose bound angles land on the Clifford grid is evaluated on the
  polynomial-cost stabilizer tableau, and the knowledge compile is
  deferred until the first point that actually needs it — a sweep whose
  points are all Clifford never compiles at all.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..api.results import BatchResult
from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.passes import OptimizeSpec, PipelineStats, resolve_pipeline
from ..circuits.qubits import Qubit
from .kc_simulator import CompiledCircuit, KnowledgeCompilationSimulator

#: Registry name of the knowledge-compilation backend (kept literal here:
#: this module is imported while :mod:`repro.api.device` is still loading).
KC_BACKEND = "knowledge_compilation"

SweepPoint = Union[None, ParamResolver, Mapping[str, float]]

#: Observables a sweep can evaluate per point.
OBSERVABLES = ("probabilities", "state_vector", "samples", "expectation")


def resolver_zip(assignments: Mapping[str, Sequence[float]]) -> List[ParamResolver]:
    """Pointwise sweep: the i-th resolver binds every symbol to its i-th value.

    Raises ``ValueError`` if the value sequences have unequal lengths.
    """
    lengths = {name: len(values) for name, values in assignments.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"resolver_zip requires equal-length value sequences, got {lengths}")
    names = list(assignments)
    return [
        ParamResolver({name: float(assignments[name][index]) for name in names})
        for index in range(next(iter(lengths.values()), 0))
    ]


def resolver_grid(assignments: Mapping[str, Sequence[float]]) -> List[ParamResolver]:
    """Cartesian-product sweep over per-symbol value sequences."""
    names = list(assignments)
    return [
        ParamResolver({name: float(value) for name, value in zip(names, combination)})
        for combination in itertools.product(*(assignments[name] for name in names))
    ]


class SweepResult(BatchResult):
    """Per-point results of one :meth:`ParameterSweep.run`.

    ``rows`` is a list of plain dicts (one per point, in point order) with at
    least ``index`` and ``parameters``, plus one entry per requested
    observable: ``probabilities`` / ``state_vector`` (ndarrays), ``counts``
    (bitstring -> count dict) and/or ``expectation`` (float).  Points
    dispatched to the tableau carry ``row["backend"] == "stabilizer"``.
    """


_SWEEP_ROW_KEYS = (
    "index",
    "parameters",
    "probabilities",
    "state_vector",
    "samples",
    "counts",
    "expectation",
)


def _sweep_rows(batch: BatchResult) -> List[Dict[str, Any]]:
    """Convert device batch rows to the sweep's historical row schema.

    The sweep names its compiled route ``"kc"`` (not the registry's
    ``"knowledge_compilation"``); ``"backend"`` is set on every row so the
    inherited :meth:`BatchResult.backends` accessor works.
    """
    rows: List[Dict[str, Any]] = []
    for row in batch.rows:
        converted = {key: row[key] for key in _SWEEP_ROW_KEYS if key in row}
        converted["backend"] = "stabilizer" if row["backend"] == "stabilizer" else "kc"
        rows.append(converted)
    return rows


class ParameterSweep:
    """Evaluate many parameter bindings of one circuit against one compile.

    Parameters
    ----------
    circuit:
        The (typically parameterized) circuit to sweep.
    simulator:
        A :class:`KnowledgeCompilationSimulator`; a default instance is
        created when omitted.  Its topology cache means constructing several
        sweeps over the same topology still compiles once.
    qubit_order, initial_bits:
        Forwarded to :meth:`KnowledgeCompilationSimulator.compile_circuit`.
    dispatch:
        ``"kc"`` (default) evaluates every point against the knowledge
        compile, which happens eagerly in the constructor.  ``"auto"``
        routes each point through the Clifford classifier first: points
        whose bound circuit is Clifford (with at most Pauli noise, samples
        only) run on the stabilizer tableau, and the compile is deferred to
        the first point that needs it — an all-Clifford sweep never
        compiles.  Stabilizer-evaluated rows carry ``row["backend"] ==
        "stabilizer"``.  The ``state_vector`` observable always evaluates
        on the compile (tableau state vectors are only defined up to global
        phase, which would make per-point phases inconsistent).
    optimize:
        ``None``/``False`` (default) sweeps the circuit as given;
        ``"auto"``/``True`` rewrites it once with
        :func:`repro.circuits.passes.default_pipeline` before compiling (a
        :class:`~repro.circuits.passes.PassPipeline` runs that pipeline).
        Stats land on :attr:`last_optimization`.

    Raises
    ------
    TypeError
        If ``simulator`` is not a knowledge-compilation simulator (the
        engine's contract is structure reuse, which dense backends lack).
    ValueError
        For an unknown ``dispatch`` mode.
    """

    def __init__(
        self,
        circuit: Circuit,
        simulator: Optional[KnowledgeCompilationSimulator] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        dispatch: str = "kc",
        optimize: OptimizeSpec = None,
    ):
        self.simulator = simulator or KnowledgeCompilationSimulator()
        if not isinstance(self.simulator, KnowledgeCompilationSimulator):
            raise TypeError("ParameterSweep requires a KnowledgeCompilationSimulator")
        if dispatch not in ("kc", "auto"):
            raise ValueError(f"dispatch must be 'kc' or 'auto', got {dispatch!r}")
        # Rewrite once, up front: the compile below and every point
        # evaluation then share the optimized circuit (and because the
        # passes are value-blind, its topology key — so sweeps over the
        # optimized symbolic ansatz still share one compiled artifact with
        # any optimized resolved instance).
        self.last_optimization: Optional[PipelineStats] = None
        pipeline = resolve_pipeline(optimize)
        if pipeline is not None:
            result = pipeline.run(circuit)
            circuit = result.circuit
            self.last_optimization = result.stats
        self.circuit = circuit
        self.dispatch = dispatch
        self._qubit_order = list(qubit_order) if qubit_order is not None else None
        self._initial_bits = list(initial_bits) if initial_bits is not None else None
        self._num_qubits = (
            len(self._qubit_order) if self._qubit_order is not None else circuit.num_qubits
        )
        # The execution endpoint: either the KC backend directly, or
        # auto-routing whose non-Clifford route is the KC backend.
        from ..api.device import Device

        self._device = Device(
            backend=KC_BACKEND if dispatch == "kc" else "auto",
            fallback=KC_BACKEND,
            noisy_fallback=KC_BACKEND,
            instances={KC_BACKEND: self.simulator},
        )
        self._compiled: Optional[CompiledCircuit] = None
        if dispatch == "kc":
            # Compile through the device's per-topology memo so the batch
            # runs below reuse this exact artifact (one compile total, even
            # with the simulator's own cache disabled).
            self._compiled = self._device.ensure_compiled(
                circuit, qubit_order=self._qubit_order, initial_bits=self._initial_bits
            )

    @property
    def device(self):
        """The underlying :class:`~repro.api.device.Device`."""
        return self._device

    @property
    def compiled(self) -> CompiledCircuit:
        """The shared knowledge compile (created on first use under ``"auto"``)."""
        if self._compiled is None:
            self._compiled = self._device.ensure_compiled(
                self.circuit, qubit_order=self._qubit_order, initial_bits=self._initial_bits
            )
        return self._compiled

    @property
    def has_compiled(self) -> bool:
        """True once the knowledge compile has actually been performed."""
        return self._compiled is not None

    # ------------------------------------------------------------------
    def run(
        self,
        points: Iterable[SweepPoint],
        observables: Sequence[str] = ("probabilities",),
        repetitions: int = 0,
        objective: Optional[Callable[[np.ndarray], float]] = None,
        seed: Optional[int] = 0,
        jobs: int = 1,
        retry=None,
        item_timeout=None,
        checkpoint: Optional[str] = None,
        job_id: Optional[str] = None,
        on_error: str = "raise",
    ) -> SweepResult:
        """Evaluate every point and collect per-point observables.

        Parameters
        ----------
        points:
            Sweep points: resolvers, plain ``{symbol: value}`` mappings, or
            ``None``.
        observables:
            Any of ``"probabilities"``, ``"state_vector"``, ``"samples"``,
            ``"expectation"``.  ``"samples"`` is implied by
            ``repetitions > 0``.
        repetitions:
            Samples to draw per point (Gibbs sampling on the shared compile).
        objective:
            Required for ``"expectation"``: maps a point's probability
            vector to a scalar.  Must be picklable when ``jobs > 1``.
        seed:
            Base sampling seed; point ``i`` samples with ``seed + i``, so
            results are independent of ``jobs``.
        jobs:
            Worker processes.  With ``jobs > 1`` the compiled artifact is
            persisted to the simulator cache's directory (a temporary
            directory when it has none) and workers hydrate from it.
        retry, item_timeout, checkpoint, job_id, on_error:
            Fault-tolerance options forwarded to
            :meth:`repro.api.device.Device.run` — per-point retries, per-point
            wall-clock budgets, durable checkpointing for
            :func:`repro.resume_job`, and partial-result aggregation (see
            ``docs/robustness.md``).

        Returns
        -------
        SweepResult

        Raises
        ------
        ValueError
            For unknown observables, or ``"expectation"`` without
            ``objective``, or ``"samples"`` without ``repetitions``.
        """
        from ..api.device import as_resolver

        resolvers = [as_resolver(point) for point in points]
        job = self._device.run(
            self.circuit,
            params=resolvers,
            observables=observables,
            repetitions=repetitions,
            seed=seed,
            jobs=jobs,
            qubit_order=self._qubit_order,
            initial_bits=self._initial_bits,
            objective=objective,
            # The sweep's documented sampling semantics: Gibbs chains on the
            # shared compile (exact amplitude sampling stays a Device-level
            # opt-in).
            sampling="gibbs",
            retry=retry,
            item_timeout=item_timeout,
            checkpoint=checkpoint,
            job_id=job_id,
            on_error=on_error,
        )
        batch = job.result()
        if self._compiled is None and any(row["backend"] == KC_BACKEND for row in batch.rows):
            # A generic point forced the compile; adopt the device's
            # memoized artifact (no recompile even with caching disabled).
            self._compiled = self._device.compiled_master(
                self.circuit, qubit_order=self._qubit_order, initial_bits=self._initial_bits
            )
        return SweepResult(_sweep_rows(batch))

    def __repr__(self) -> str:
        if self.has_compiled:
            return (
                f"ParameterSweep(qubits={self.compiled.num_qubits}, "
                f"ac_nodes={self.compiled.arithmetic_circuit.num_nodes})"
            )
        return f"ParameterSweep(qubits={self._num_qubits}, dispatch={self.dispatch!r}, uncompiled)"
