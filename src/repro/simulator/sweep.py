"""Compile-once parameter-sweep engine.

The paper's economics are "compile once, query many": the exponential
CNF -> d-DNNF compile is paid per circuit *topology*, after which every
parameter binding costs a handful of vectorized passes.  This module turns
that into a first-class engine for the workloads that sweep parameters —
variational-energy landscapes, figure harnesses, hyperparameter scans:

* :class:`ParameterSweep` compiles a circuit once (through the
  knowledge-compilation simulator's topology cache) and evaluates any number
  of parameter points against the shared compile;
* points can be fanned out over a **process pool**: the compiled artifact is
  persisted into an on-disk cache directory and each worker hydrates it from
  there, so the compile still happens exactly once per sweep;
* sampling is deterministically seeded per point (``seed + index``), making
  serial and parallel runs produce identical results.

Helpers :func:`resolver_grid` and :func:`resolver_zip` build the common
sweep-point lists from per-symbol value arrays.

With ``dispatch="auto"`` the sweep additionally consults the Clifford
classifier (:mod:`repro.circuits.clifford`) **per point**: a point whose
bound angles land on the Clifford grid (e.g. a ``k*pi/2`` sub-grid of a
rotation sweep) is evaluated on the polynomial-cost stabilizer tableau, and
the knowledge compile is deferred until the first point that actually needs
it — a sweep whose points are all Clifford never compiles at all.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.clifford import classify_circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..knowledge.cache import CompiledCircuitCache
from ..linalg.tensor_ops import bits_to_index
from ..stabilizer import StabilizerSimulator
from ..stabilizer.simulator import DENSE_PROBABILITY_QUBITS
from .kc_simulator import (
    CompiledCircuit,
    KnowledgeCompilationSimulator,
    _encoding_fingerprint,
)
from .results import SampleResult

SweepPoint = Union[None, ParamResolver, Mapping[str, float]]

#: Observables a sweep can evaluate per point.
OBSERVABLES = ("probabilities", "state_vector", "samples", "expectation")


def as_resolver(point: SweepPoint) -> Optional[ParamResolver]:
    """Normalize one sweep point (``None`` / mapping / resolver) to a resolver."""
    if point is None or isinstance(point, ParamResolver):
        return point
    return ParamResolver(dict(point))


def resolver_zip(assignments: Mapping[str, Sequence[float]]) -> List[ParamResolver]:
    """Pointwise sweep: the i-th resolver binds every symbol to its i-th value.

    Raises ``ValueError`` if the value sequences have unequal lengths.
    """
    lengths = {name: len(values) for name, values in assignments.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"resolver_zip requires equal-length value sequences, got {lengths}")
    names = list(assignments)
    return [
        ParamResolver({name: float(assignments[name][index]) for name in names})
        for index in range(next(iter(lengths.values()), 0))
    ]


def resolver_grid(assignments: Mapping[str, Sequence[float]]) -> List[ParamResolver]:
    """Cartesian-product sweep over per-symbol value sequences."""
    names = list(assignments)
    return [
        ParamResolver({name: float(value) for name, value in zip(names, combination)})
        for combination in itertools.product(*(assignments[name] for name in names))
    ]


class SweepResult:
    """Per-point results of one :meth:`ParameterSweep.run`.

    ``rows`` is a list of plain dicts (one per point, in point order) with at
    least ``index`` and ``parameters``, plus one entry per requested
    observable: ``probabilities`` / ``state_vector`` (ndarrays), ``counts``
    (bitstring -> count dict) and/or ``expectation`` (float).
    """

    def __init__(self, rows: List[Dict[str, Any]]):
        self.rows = sorted(rows, key=lambda row: row["index"])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def _stack(self, key: str) -> np.ndarray:
        if not self.rows or key not in self.rows[0]:
            raise KeyError(f"sweep did not record {key!r}")
        return np.stack([row[key] for row in self.rows])

    def probabilities(self) -> np.ndarray:
        """``(num_points, 2**n)`` matrix of output distributions."""
        return self._stack("probabilities")

    def state_vectors(self) -> np.ndarray:
        """``(num_points, 2**n)`` matrix of final state vectors (ideal circuits)."""
        return self._stack("state_vector")

    def expectations(self) -> np.ndarray:
        """``(num_points,)`` vector of objective expectations."""
        if not self.rows or "expectation" not in self.rows[0]:
            raise KeyError("sweep did not record 'expectation'")
        return np.asarray([row["expectation"] for row in self.rows], dtype=float)

    def counts(self) -> List[Dict[str, int]]:
        """Per-point sampled bitstring counts."""
        if not self.rows or "counts" not in self.rows[0]:
            raise KeyError("sweep did not record 'counts'")
        return [row["counts"] for row in self.rows]

    def __repr__(self) -> str:
        keys = sorted(set(self.rows[0]) - {"index", "parameters"}) if self.rows else []
        return f"SweepResult(points={len(self.rows)}, observables={keys})"


def _initial_state_index(initial_bits: Optional[Sequence[int]]) -> int:
    """Basis-state index for a bit list (MSB first), 0 when unspecified."""
    return bits_to_index(initial_bits) if initial_bits else 0


def _stabilizer_eligible(
    circuit: Circuit,
    resolver: Optional[ParamResolver],
    observables: Sequence[str],
    num_qubits: int,
) -> bool:
    """Whether one sweep point can be evaluated on the stabilizer tableau.

    Requires every gate Clifford at this binding, Pauli-only noise, and —
    since a tableau holds a pure stabilizer state — noise only when nothing
    but samples is requested.  Dense probabilities additionally respect the
    stabilizer backend's reconstruction cap.  The ``state_vector``
    observable always stays on the compiled path: tableau state vectors are
    defined only up to global phase, and a sweep mixing phase conventions
    across points would hand callers spurious discontinuities.
    """
    if "state_vector" in observables:
        return False
    wants_dense = "probabilities" in observables or "expectation" in observables
    if wants_dense and num_qubits > DENSE_PROBABILITY_QUBITS:
        return False
    classification = classify_circuit(circuit, resolver)
    if not (classification.clifford and classification.pauli_noise):
        return False
    if classification.has_noise and wants_dense:
        return False
    return True


def _evaluate_point(
    simulator: KnowledgeCompilationSimulator,
    compiled: CompiledCircuit,
    index: int,
    resolver: Optional[ParamResolver],
    observables: Sequence[str],
    repetitions: int,
    seed: Optional[int],
    objective: Optional[Callable[[np.ndarray], float]],
) -> Dict[str, Any]:
    """Evaluate one sweep point against the shared compile (no recompiling)."""
    row: Dict[str, Any] = {
        "index": index,
        "parameters": {} if resolver is None else resolver.as_dict(),
    }
    probabilities: Optional[np.ndarray] = None
    if "probabilities" in observables or "expectation" in observables:
        probabilities = compiled.probabilities(resolver)
    if "probabilities" in observables:
        row["probabilities"] = probabilities
    if "expectation" in observables:
        row["expectation"] = float(objective(probabilities))  # type: ignore[misc]
    if "state_vector" in observables:
        row["state_vector"] = compiled.state_vector(resolver)
    if "samples" in observables:
        point_seed = None if seed is None else seed + index
        samples: SampleResult = simulator.sample(
            compiled, repetitions, resolver=resolver, seed=point_seed
        )
        row["counts"] = samples.bitstring_counts()
    return row


def _evaluate_point_stabilizer(
    stabilizer: StabilizerSimulator,
    circuit: Circuit,
    qubit_order: Optional[Sequence[Qubit]],
    initial_state: int,
    index: int,
    resolver: Optional[ParamResolver],
    observables: Sequence[str],
    repetitions: int,
    seed: Optional[int],
    objective: Optional[Callable[[np.ndarray], float]],
) -> Dict[str, Any]:
    """Evaluate one Clifford sweep point on the tableau (no compile at all)."""
    row: Dict[str, Any] = {
        "index": index,
        "parameters": {} if resolver is None else resolver.as_dict(),
        "backend": "stabilizer",
    }
    if "probabilities" in observables or "expectation" in observables:
        result = stabilizer.simulate(circuit, resolver, qubit_order, initial_state)
        probabilities = result.probabilities()
        if "probabilities" in observables:
            row["probabilities"] = probabilities
        if "expectation" in observables:
            row["expectation"] = float(objective(probabilities))  # type: ignore[misc]
    if "samples" in observables:
        point_seed = None if seed is None else seed + index
        samples = stabilizer.sample(
            circuit,
            repetitions,
            resolver=resolver,
            qubit_order=qubit_order,
            seed=point_seed,
            initial_state=initial_state,
        )
        row["counts"] = samples.bitstring_counts()
    return row


def _sweep_worker(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Process-pool worker: hydrate the compile from disk, evaluate points.

    With ``dispatch="auto"`` the compile is hydrated lazily — a worker whose
    points all route to the stabilizer tableau never touches the cache.
    """
    cache = CompiledCircuitCache(directory=payload["cache_dir"])
    simulator = KnowledgeCompilationSimulator(
        order_method=payload["order_method"],
        elide_internal=payload["elide_internal"],
        seed=payload["seed"],
        cache=cache,
    )
    compiled: List[Optional[CompiledCircuit]] = [None]

    def get_compiled() -> CompiledCircuit:
        if compiled[0] is None:
            compiled[0] = simulator.compile_circuit(
                payload["circuit"],
                qubit_order=payload["qubit_order"],
                initial_bits=payload["initial_bits"],
            )
        return compiled[0]

    stabilizer = StabilizerSimulator() if payload["dispatch"] == "auto" else None
    initial_state = _initial_state_index(payload["initial_bits"])
    rows = []
    for index, resolver, use_stabilizer in payload["points"]:
        if stabilizer is not None and use_stabilizer:
            rows.append(
                _evaluate_point_stabilizer(
                    stabilizer,
                    payload["circuit"],
                    payload["qubit_order"],
                    initial_state,
                    index,
                    resolver,
                    payload["observables"],
                    payload["repetitions"],
                    payload["seed"],
                    payload["objective"],
                )
            )
        else:
            rows.append(
                _evaluate_point(
                    simulator,
                    get_compiled(),
                    index,
                    resolver,
                    payload["observables"],
                    payload["repetitions"],
                    payload["seed"],
                    payload["objective"],
                )
            )
    return rows


class ParameterSweep:
    """Evaluate many parameter bindings of one circuit against one compile.

    Parameters
    ----------
    circuit:
        The (typically parameterized) circuit to sweep.
    simulator:
        A :class:`KnowledgeCompilationSimulator`; a default instance is
        created when omitted.  Its topology cache means constructing several
        sweeps over the same topology still compiles once.
    qubit_order, initial_bits:
        Forwarded to :meth:`KnowledgeCompilationSimulator.compile_circuit`.
    dispatch:
        ``"kc"`` (default) evaluates every point against the knowledge
        compile, which happens eagerly in the constructor.  ``"auto"``
        routes each point through the Clifford classifier first: points
        whose bound circuit is Clifford (with at most Pauli noise, samples
        only) run on the stabilizer tableau, and the compile is deferred to
        the first point that needs it — an all-Clifford sweep never
        compiles.  Stabilizer-evaluated rows carry ``row["backend"] ==
        "stabilizer"``.  The ``state_vector`` observable always evaluates
        on the compile (tableau state vectors are only defined up to global
        phase, which would make per-point phases inconsistent).

    Raises
    ------
    TypeError
        If ``simulator`` is not a knowledge-compilation simulator (the
        engine's contract is structure reuse, which dense backends lack).
    ValueError
        For an unknown ``dispatch`` mode.
    """

    def __init__(
        self,
        circuit: Circuit,
        simulator: Optional[KnowledgeCompilationSimulator] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        dispatch: str = "kc",
    ):
        self.simulator = simulator or KnowledgeCompilationSimulator()
        if not isinstance(self.simulator, KnowledgeCompilationSimulator):
            raise TypeError("ParameterSweep requires a KnowledgeCompilationSimulator")
        if dispatch not in ("kc", "auto"):
            raise ValueError(f"dispatch must be 'kc' or 'auto', got {dispatch!r}")
        self.circuit = circuit
        self.dispatch = dispatch
        self._qubit_order = list(qubit_order) if qubit_order is not None else None
        self._initial_bits = list(initial_bits) if initial_bits is not None else None
        self._num_qubits = (
            len(self._qubit_order) if self._qubit_order is not None else circuit.num_qubits
        )
        self._stabilizer = StabilizerSimulator() if dispatch == "auto" else None
        self._compiled: Optional[CompiledCircuit] = None
        if dispatch == "kc":
            self._compiled = self.simulator.compile_circuit(
                circuit, qubit_order=self._qubit_order, initial_bits=self._initial_bits
            )

    @property
    def compiled(self) -> CompiledCircuit:
        """The shared knowledge compile (created on first use under ``"auto"``)."""
        if self._compiled is None:
            self._compiled = self.simulator.compile_circuit(
                self.circuit, qubit_order=self._qubit_order, initial_bits=self._initial_bits
            )
        return self._compiled

    @property
    def has_compiled(self) -> bool:
        """True once the knowledge compile has actually been performed."""
        return self._compiled is not None

    # ------------------------------------------------------------------
    def run(
        self,
        points: Iterable[SweepPoint],
        observables: Sequence[str] = ("probabilities",),
        repetitions: int = 0,
        objective: Optional[Callable[[np.ndarray], float]] = None,
        seed: Optional[int] = 0,
        jobs: int = 1,
    ) -> SweepResult:
        """Evaluate every point and collect per-point observables.

        Parameters
        ----------
        points:
            Sweep points: resolvers, plain ``{symbol: value}`` mappings, or
            ``None``.
        observables:
            Any of ``"probabilities"``, ``"state_vector"``, ``"samples"``,
            ``"expectation"``.  ``"samples"`` is implied by
            ``repetitions > 0``.
        repetitions:
            Samples to draw per point (Gibbs sampling on the shared compile).
        objective:
            Required for ``"expectation"``: maps a point's probability
            vector to a scalar.  Must be picklable when ``jobs > 1``.
        seed:
            Base sampling seed; point ``i`` samples with ``seed + i``, so
            results are independent of ``jobs``.
        jobs:
            Worker processes.  With ``jobs > 1`` the compiled artifact is
            persisted to the simulator cache's directory (a temporary
            directory when it has none) and workers hydrate from it.

        Returns
        -------
        SweepResult

        Raises
        ------
        ValueError
            For unknown observables, or ``"expectation"`` without
            ``objective``, or ``"samples"`` without ``repetitions``.
        """
        resolvers = [as_resolver(point) for point in points]
        observables = list(observables)
        if repetitions and "samples" not in observables:
            observables.append("samples")
        unknown = set(observables) - set(OBSERVABLES)
        if unknown:
            raise ValueError(f"unknown observables: {sorted(unknown)}")
        if "expectation" in observables and objective is None:
            raise ValueError("the 'expectation' observable requires an objective callable")
        if "samples" in observables and repetitions <= 0:
            raise ValueError("the 'samples' observable requires repetitions > 0")

        if jobs <= 1 or len(resolvers) <= 1:
            rows = []
            for index, resolver in enumerate(resolvers):
                if self._stabilizer is not None and _stabilizer_eligible(
                    self.circuit, resolver, observables, self._num_qubits
                ):
                    rows.append(
                        _evaluate_point_stabilizer(
                            self._stabilizer,
                            self.circuit,
                            self._qubit_order,
                            _initial_state_index(self._initial_bits),
                            index,
                            resolver,
                            observables,
                            repetitions,
                            seed,
                            objective,
                        )
                    )
                else:
                    rows.append(
                        _evaluate_point(
                            self.simulator, self.compiled, index, resolver,
                            observables, repetitions, seed, objective,
                        )
                    )
            return SweepResult(rows)
        return self._run_parallel(resolvers, observables, repetitions, seed, objective, jobs)

    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        resolvers: List[Optional[ParamResolver]],
        observables: List[str],
        repetitions: int,
        seed: Optional[int],
        objective: Optional[Callable[[np.ndarray], float]],
        jobs: int,
    ) -> SweepResult:
        jobs = min(jobs, len(resolvers))
        cache = self.simulator.cache
        cleanup: Optional[tempfile.TemporaryDirectory] = None
        if cache is not None and cache.directory is not None:
            cache_dir = cache.directory
        else:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-sweep-cache-")
            cache_dir = cleanup.name
        try:
            # Classify each point once here; workers receive the routing
            # decision in their payload, keeping parent and worker trivially
            # consistent and halving the classification work.
            routes = [
                self.dispatch == "auto"
                and _stabilizer_eligible(self.circuit, resolver, observables, self._num_qubits)
                for resolver in resolvers
            ]
            # Under "auto" the compile (and its persistence for workers) is
            # only needed when some point actually routes to the KC backend.
            if self.dispatch == "kc" or not all(routes):
                self._persist_compile(cache_dir)
            elide_internal = (
                self.compiled.elided if self.has_compiled else self.simulator.elide_internal
            )
            points = [
                (index, resolver, use_stabilizer)
                for index, (resolver, use_stabilizer) in enumerate(zip(resolvers, routes))
            ]
            blocks = [
                {
                    "circuit": self.circuit,
                    "qubit_order": self._qubit_order,
                    "initial_bits": self._initial_bits,
                    "order_method": self.simulator.order_method,
                    "elide_internal": elide_internal,
                    "dispatch": self.dispatch,
                    "cache_dir": cache_dir,
                    "observables": observables,
                    "repetitions": repetitions,
                    "seed": seed,
                    "objective": objective,
                    "points": points[start::jobs],
                }
                for start in range(jobs)
            ]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                rows = [row for block_rows in pool.map(_sweep_worker, blocks) for row in block_rows]
        finally:
            if cleanup is not None:
                cleanup.cleanup()
        return SweepResult(rows)

    def _persist_compile(self, directory: str) -> None:
        """Write this sweep's compiled artifact where workers will look for it."""
        disk = CompiledCircuitCache(directory=directory)
        key = self.simulator.cache_key_for(
            self.circuit,
            qubit_order=self._qubit_order,
            initial_bits=self._initial_bits,
            elide_internal=self.compiled.elided,
        )
        if disk.load_payload(key) is None:
            disk.store_payload(
                key,
                {
                    "arithmetic_circuit": self.compiled.arithmetic_circuit,
                    "fingerprint": _encoding_fingerprint(self.compiled.encoding),
                },
            )

    def __repr__(self) -> str:
        if self.has_compiled:
            return (
                f"ParameterSweep(qubits={self.compiled.num_qubits}, "
                f"ac_nodes={self.compiled.arithmetic_circuit.num_nodes})"
            )
        return f"ParameterSweep(qubits={self._num_qubits}, dispatch={self.dispatch!r}, uncompiled)"
