"""Simulator backends and shared result containers.

The knowledge-compilation simulator (the paper's contribution) lives in
:mod:`repro.simulator.kc_simulator`; the baselines live in their own
packages (:mod:`repro.statevector`, :mod:`repro.densitymatrix`,
:mod:`repro.tensornetwork`, and the batched quantum-trajectory backend
:mod:`repro.trajectory`).  All of them implement the
:class:`~repro.simulator.base.Simulator` contract: ``simulate`` /
``sample`` with identical circuit, resolver, qubit-order, initial-state
and seeding semantics.
"""

from .base import Simulator
from .results import DensityMatrixResult, SampleResult, StateVectorResult

__all__ = [
    "Simulator",
    "SampleResult",
    "StateVectorResult",
    "DensityMatrixResult",
]
