"""Simulator backends and shared result containers.

The knowledge-compilation simulator (the paper's contribution) lives in
:mod:`repro.simulator.kc_simulator`; the baselines live in their own
packages (:mod:`repro.statevector`, :mod:`repro.densitymatrix`,
:mod:`repro.tensornetwork`).
"""

from .base import Simulator
from .results import DensityMatrixResult, SampleResult, StateVectorResult

__all__ = [
    "Simulator",
    "SampleResult",
    "StateVectorResult",
    "DensityMatrixResult",
]
