"""Simulator backends and shared result containers.

The knowledge-compilation simulator (the paper's contribution) lives in
:mod:`repro.simulator.kc_simulator`; the baselines live in their own
packages (:mod:`repro.statevector`, :mod:`repro.densitymatrix`,
:mod:`repro.tensornetwork`, and the batched quantum-trajectory backend
:mod:`repro.trajectory`).  All of them implement the
:class:`~repro.simulator.base.Simulator` contract: ``simulate`` /
``sample`` with identical circuit, resolver, qubit-order, initial-state
and seeding semantics.

:mod:`repro.simulator.sweep` builds the compile-once parameter-sweep engine
on top of the knowledge-compilation backend's topology cache, and
:mod:`repro.simulator.hybrid` routes Clifford circuits to the polynomial-cost
stabilizer backend (:mod:`repro.stabilizer`) automatically.
"""

from .base import Simulator
from .hybrid import BackendDecision, HybridSimulator, select_backend
from .results import DensityMatrixResult, SampleResult, StateVectorResult
from .sweep import ParameterSweep, SweepResult, resolver_grid, resolver_zip

__all__ = [
    "Simulator",
    "SampleResult",
    "StateVectorResult",
    "DensityMatrixResult",
    "BackendDecision",
    "HybridSimulator",
    "select_backend",
    "ParameterSweep",
    "SweepResult",
    "resolver_grid",
    "resolver_zip",
]
