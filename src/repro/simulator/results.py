"""Result containers shared by all simulator backends.

Every backend ultimately produces either a dense representation of the final
state (state vector or density matrix) or a collection of measurement
samples.  These classes expose a uniform interface so tests, workloads and
the experiment harness can be written once and run against any backend.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import (
    density_measurement_probabilities,
    index_to_bits,
    measurement_probabilities,
)


class SampleResult:
    """A collection of measurement samples over a fixed qubit order."""

    def __init__(self, qubits: Sequence[Qubit], samples: Iterable[Tuple[int, ...]]):
        self.qubits = list(qubits)
        self.samples: List[Tuple[int, ...]] = [tuple(int(b) for b in s) for s in samples]
        for sample in self.samples:
            if len(sample) != len(self.qubits):
                raise ValueError("sample length does not match number of qubits")

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def counts(self) -> Counter:
        """Histogram of observed bitstrings."""
        return Counter(self.samples)

    def bitstring_counts(self) -> Dict[str, int]:
        """Histogram keyed by '0101'-style strings (qubit order as given)."""
        return {"".join(str(b) for b in key): value for key, value in self.counts().items()}

    def empirical_distribution(self) -> np.ndarray:
        """Empirical probability over all 2^n basis states (dense array)."""
        # Imported lazily: repro.sampling.gibbs imports this module.
        from ..sampling.metrics import empirical_distribution

        return empirical_distribution(self.samples, len(self.qubits))

    def expectation_of_bit(self, position: int) -> float:
        """Mean value of the bit at ``position`` across samples."""
        if not self.samples:
            raise ValueError("no samples")
        return float(np.mean([s[position] for s in self.samples]))

    def most_common(self, n: int = 1) -> List[Tuple[Tuple[int, ...], int]]:
        return self.counts().most_common(n)

    def __repr__(self) -> str:
        return f"SampleResult(qubits={len(self.qubits)}, samples={len(self.samples)})"


class StateVectorResult:
    """Final pure state of an ideal simulation."""

    def __init__(self, qubits: Sequence[Qubit], state_vector: np.ndarray):
        self.qubits = list(qubits)
        state_vector = np.asarray(state_vector, dtype=complex)
        if state_vector.shape != (2 ** len(self.qubits),):
            raise ValueError("state vector length does not match qubit count")
        self.state_vector = state_vector

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def probabilities(self) -> np.ndarray:
        return measurement_probabilities(self.state_vector)

    def amplitude(self, bits: Sequence[int]) -> complex:
        """Amplitude of the given bitstring (qubit order as in ``self.qubits``)."""
        index = 0
        for bit in bits:
            index = (index << 1) | (int(bit) & 1)
        return complex(self.state_vector[index])

    def density_matrix(self) -> np.ndarray:
        return np.outer(self.state_vector, self.state_vector.conj())

    def sample(self, repetitions: int, rng: Optional[np.random.Generator] = None) -> SampleResult:
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        indices = rng.choice(len(probabilities), size=repetitions, p=probabilities)
        samples = [index_to_bits(int(i), self.num_qubits) for i in indices]
        return SampleResult(self.qubits, samples)

    def dirac_notation(self, decimals: int = 3, threshold: float = 1e-6) -> str:
        """Human-readable superposition string such as ``0.707|00> + 0.707|11>``."""
        terms = []
        for index, amplitude in enumerate(self.state_vector):
            if abs(amplitude) <= threshold:
                continue
            bits = "".join(str(b) for b in index_to_bits(index, self.num_qubits))
            value = np.round(amplitude, decimals)
            terms.append(f"({value.real:+g}{value.imag:+g}j)|{bits}>")
        return " + ".join(terms) if terms else "0"

    def __repr__(self) -> str:
        return f"StateVectorResult(qubits={self.num_qubits})"


class DensityMatrixResult:
    """Final mixed state of a noisy simulation."""

    def __init__(self, qubits: Sequence[Qubit], density_matrix: np.ndarray):
        self.qubits = list(qubits)
        density_matrix = np.asarray(density_matrix, dtype=complex)
        dim = 2 ** len(self.qubits)
        if density_matrix.shape != (dim, dim):
            raise ValueError("density matrix shape does not match qubit count")
        self.density_matrix = density_matrix

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def probabilities(self) -> np.ndarray:
        return density_measurement_probabilities(self.density_matrix)

    def probability_of(self, bits: Sequence[int]) -> float:
        index = 0
        for bit in bits:
            index = (index << 1) | (int(bit) & 1)
        return float(np.real(self.density_matrix[index, index]))

    def purity(self) -> float:
        """Tr(rho^2); equals 1 for pure states."""
        return float(np.real(np.trace(self.density_matrix @ self.density_matrix)))

    def sample(self, repetitions: int, rng: Optional[np.random.Generator] = None) -> SampleResult:
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("density matrix has non-positive trace")
        probabilities = probabilities / total
        indices = rng.choice(len(probabilities), size=repetitions, p=probabilities)
        samples = [index_to_bits(int(i), self.num_qubits) for i in indices]
        return SampleResult(self.qubits, samples)

    def __repr__(self) -> str:
        return f"DensityMatrixResult(qubits={self.num_qubits})"
