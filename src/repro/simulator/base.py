"""Common simulator interface implemented by every backend.

The experiment harness (Figures 8 and 9) times "draw 1000 samples from the
final wavefunction" for several backends; a shared abstract interface keeps
those comparisons honest: every backend exposes the same ``simulate`` /
``sample`` entry points with identical circuit, parameter-resolver,
qubit-order and initial-state inputs.

Random-number contract
----------------------
Every backend owns one default generator, seeded by the ``seed`` passed to
its constructor.  ``sample(..., seed=None)`` draws from that shared default
generator (consecutive calls advance it), while an explicit per-call ``seed``
creates a fresh generator so the call is reproducible in isolation.  Both
paths go through :meth:`Simulator._rng`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from .results import SampleResult


class Simulator:
    """Abstract simulator backend."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = None):
        self._default_rng = np.random.default_rng(seed)

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ):
        """Run the circuit and return a backend-specific result object.

        ``initial_state`` is the computational-basis index of the starting
        state (qubit 0 as the most significant bit, matching
        :func:`repro.linalg.tensor_ops.basis_state`).  Every backend honors
        it; backends that cannot prepare an arbitrary basis state for a given
        input must raise ``ValueError`` rather than silently ignore it.
        """
        raise NotImplementedError

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw measurement samples from the circuit's final wavefunction.

        Args:
            circuit: The circuit to sample.
            repetitions: Number of bitstring samples to draw.
            resolver: Binds any symbolic parameters.
            qubit_order: Qubit-to-basis-position order (first qubit = most
                significant bit); defaults to the circuit's sorted qubits.
            seed: Per-call seed making this call reproducible in isolation;
                ``None`` draws from the backend's default generator.
            initial_state: Computational-basis index of the starting state
                (same contract as :meth:`simulate`); every backend honors it.

        Returns:
            A :class:`SampleResult` of ``repetitions`` bitstrings.
        """
        raise NotImplementedError

    def _rng(self, seed: Optional[int] = None) -> np.random.Generator:
        """Per-call generator for an explicit ``seed``; the shared default otherwise."""
        if seed is None:
            return self._default_rng
        return np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
