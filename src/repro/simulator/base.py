"""Common simulator interface implemented by every backend.

The experiment harness (Figures 8 and 9) times "draw 1000 samples from the
final wavefunction" for several backends; a shared abstract interface keeps
those comparisons honest: every backend exposes the same ``simulate`` /
``sample`` entry points with identical circuit and parameter-resolver inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from .results import SampleResult


class Simulator:
    """Abstract simulator backend."""

    name = "abstract"

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
    ):
        """Run the circuit and return a backend-specific result object."""
        raise NotImplementedError

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
    ) -> SampleResult:
        """Draw measurement samples from the circuit's final wavefunction."""
        raise NotImplementedError

    def _rng(self, seed: Optional[int]) -> np.random.Generator:
        return np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
