"""Automatic stabilizer-vs-dense backend dispatch.

A large slice of the benchmark suite — Bell/GHZ preparation, Deutsch–Jozsa,
Bernstein–Vazirani, Simon, hidden shift, error-correction-style Clifford
skeletons — is pure Clifford and therefore ``O(poly(n))`` on the stabilizer
tableau, while everything else needs a dense (or knowledge-compiled)
backend.  This module makes that choice automatic:

* :func:`select_backend` classifies a circuit (via
  :func:`repro.circuits.clifford.classify_circuit`) and names the backend
  that should run it, with a human-readable reason;
* :class:`HybridSimulator` is a drop-in :class:`~repro.simulator.base.Simulator`
  that owns a :class:`~repro.stabilizer.StabilizerSimulator` plus a
  configurable fallback backend and routes every ``simulate`` / ``sample``
  call per circuit.  The routing actually taken is recorded in
  :attr:`HybridSimulator.last_decision` so tests (and the experiment
  harness) can assert dispatch behaviour.

Routing rules
-------------
* all gates Clifford, no noise  -> ``stabilizer`` for both entry points;
* all gates Clifford, all noise single-qubit Pauli mixtures ->
  ``stabilizer`` for ``sample`` (stochastic Pauli unravelling); ``simulate``
  falls back, because a tableau holds a pure stabilizer state, not a mixed
  state;
* anything else -> the fallback backend, with the blocking operation named
  in the decision's reason.

Noisy ``simulate`` calls need a mixed-state representation, so they route
to a separate ``noisy_fallback`` (a density-matrix simulator by default)
rather than the pure-state fallback.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from ..circuits.circuit import Circuit
from ..circuits.clifford import classify_circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..stabilizer import StabilizerSimulator
from .base import Simulator
from .results import SampleResult


class BackendDecision(NamedTuple):
    """One routing decision: the chosen backend name plus the reason."""

    backend: str
    reason: str


def select_backend(
    circuit: Circuit,
    resolver: Optional[ParamResolver] = None,
    fallback: str = "state_vector",
    sampling: bool = True,
) -> BackendDecision:
    """Choose the backend for ``circuit``: ``"stabilizer"`` or ``fallback``.

    ``sampling=False`` asks for the ``simulate`` route, where noisy circuits
    always fall back (a tableau cannot represent a mixed state).
    """
    classification = classify_circuit(circuit, resolver)
    if classification.clifford and classification.pauli_noise:
        if classification.has_noise:
            if sampling:
                return BackendDecision("stabilizer", "clifford + pauli-noise")
            return BackendDecision(
                fallback, "noisy simulate needs a mixed-state representation"
            )
        return BackendDecision("stabilizer", "clifford")
    return BackendDecision(fallback, classification.blocker or "non-clifford circuit")


class HybridSimulator(Simulator):
    """Per-circuit automatic dispatch between the tableau and a dense backend.

    Parameters
    ----------
    fallback:
        Any :class:`~repro.simulator.base.Simulator` handling the
        non-Clifford route; defaults to a fresh
        :class:`~repro.statevector.StateVectorSimulator` seeded with
        ``seed``.
    noisy_fallback:
        The backend for ``simulate`` calls on *noisy* circuits, which need a
        mixed-state representation the default fallback lacks.  Defaults to
        a :class:`~repro.densitymatrix.DensityMatrixSimulator` when
        ``fallback`` is defaulted, and to ``fallback`` itself when the
        caller supplied one (their backend, their noise contract).
    seed:
        Seeds every owned backend's default generator.
    """

    name = "hybrid"

    def __init__(
        self,
        fallback: Optional[Simulator] = None,
        noisy_fallback: Optional[Simulator] = None,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if fallback is None:
            from ..statevector import StateVectorSimulator

            fallback = StateVectorSimulator(seed=seed)
            if noisy_fallback is None:
                from ..densitymatrix import DensityMatrixSimulator

                noisy_fallback = DensityMatrixSimulator(seed=seed)
        self.fallback = fallback
        self.noisy_fallback = noisy_fallback if noisy_fallback is not None else fallback
        self.stabilizer = StabilizerSimulator(seed=seed)
        #: The decision taken by the most recent ``simulate``/``sample`` call.
        self.last_decision: Optional[BackendDecision] = None

    def _fallback_for(self, circuit: Circuit, sampling: bool) -> Simulator:
        """``sample`` always uses ``fallback``; noisy ``simulate`` needs mixed states."""
        if not sampling and circuit.has_noise:
            return self.noisy_fallback
        return self.fallback

    def decide(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        sampling: bool = True,
    ) -> BackendDecision:
        """The routing :func:`select_backend` would take for ``circuit``."""
        return select_backend(
            circuit,
            resolver,
            fallback=self._fallback_for(circuit, sampling).name,
            sampling=sampling,
        )

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ):
        """Run the circuit on the routed backend.

        Returns a :class:`~repro.stabilizer.StabilizerResult` on the tableau
        route and the fallback backend's native result otherwise; both expose
        ``qubits``, ``probabilities()`` and ``sample()``.
        """
        decision = self.decide(circuit, resolver, sampling=False)
        self.last_decision = decision
        if decision.backend == "stabilizer":
            return self.stabilizer.simulate(circuit, resolver, qubit_order, initial_state)
        return self._fallback_for(circuit, sampling=False).simulate(
            circuit, resolver, qubit_order, initial_state
        )

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
    ) -> SampleResult:
        """Draw samples from the routed backend (tableau when possible)."""
        decision = self.decide(circuit, resolver, sampling=True)
        self.last_decision = decision
        if decision.backend == "stabilizer":
            return self.stabilizer.sample(circuit, repetitions, resolver, qubit_order, seed)
        return self.fallback.sample(circuit, repetitions, resolver, qubit_order, seed)

    def __repr__(self) -> str:
        return f"<HybridSimulator fallback={type(self.fallback).__name__}>"
