"""Automatic stabilizer-vs-dense backend dispatch.

A large slice of the benchmark suite — Bell/GHZ preparation, Deutsch–Jozsa,
Bernstein–Vazirani, Simon, hidden shift, error-correction-style Clifford
skeletons — is pure Clifford and therefore ``O(poly(n))`` on the stabilizer
tableau, while everything else needs a dense (or knowledge-compiled)
backend.

This module is now a thin compatibility layer over the unified execution
API (:mod:`repro.api`):

* :func:`select_backend` and :class:`BackendDecision` are re-exported from
  :mod:`repro.api.routing` — the single routing rule shared with
  ``repro.device("auto")``;
* :class:`HybridSimulator` keeps the drop-in
  :class:`~repro.simulator.base.Simulator` surface (``simulate`` /
  ``sample`` / ``decide`` / ``last_decision``) but delegates routing and
  execution to an internal :class:`~repro.api.device.Device` built over its
  own backend instances, so per-call behaviour (including default-generator
  sequencing) is unchanged.

Routing rules are documented in :mod:`repro.api.routing`; noisy
``simulate`` calls route to a separate ``noisy_fallback`` (a density-matrix
simulator by default) because they need a mixed-state representation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..api.routing import BackendDecision, select_backend
from ..circuits.circuit import Circuit

if TYPE_CHECKING:  # imported lazily at runtime (device.py imports this package)
    from ..api.device import Device
from ..circuits.parameters import ParamResolver
from ..circuits.passes import OptimizeSpec, resolve_pipeline, split_clifford_prefix
from ..circuits.qubits import Qubit
from ..linalg.tensor_ops import apply_unitary_to_state
from ..stabilizer import StabilizerSimulator
from ..stabilizer.simulator import DENSE_PROBABILITY_QUBITS
from .base import Simulator
from .results import SampleResult, StateVectorResult

__all__ = ["BackendDecision", "HybridSimulator", "select_backend"]


class HybridSimulator(Simulator):
    """Per-circuit automatic dispatch between the tableau and a dense backend.

    Parameters
    ----------
    fallback:
        Any :class:`~repro.simulator.base.Simulator` handling the
        non-Clifford route; defaults to a fresh
        :class:`~repro.statevector.StateVectorSimulator` seeded with
        ``seed``.
    noisy_fallback:
        The backend for ``simulate`` calls on *noisy* circuits, which need a
        mixed-state representation the default fallback lacks.  Defaults to
        a :class:`~repro.densitymatrix.DensityMatrixSimulator` when
        ``fallback`` is defaulted, and to ``fallback`` itself when the
        caller supplied one (their backend, their noise contract).
    seed:
        Seeds every owned backend's default generator.
    optimize:
        ``None``/``False`` (default) routes circuits as given;
        ``"auto"``/``True`` rewrites each circuit with
        :func:`repro.circuits.passes.default_pipeline` before routing (a
        :class:`~repro.circuits.passes.PassPipeline` runs that pipeline) and
        additionally enables **Clifford-prefix splitting** on the dense
        route: an ideal circuit whose head is Clifford runs that head on the
        stabilizer tableau and only the dense tail pays exponential cost
        (``last_decision.reason`` reports the split).
    """

    name = "hybrid"

    def __init__(
        self,
        fallback: Optional[Simulator] = None,
        noisy_fallback: Optional[Simulator] = None,
        seed: Optional[int] = None,
        optimize: OptimizeSpec = None,
    ):
        super().__init__(seed)
        self._pipeline = resolve_pipeline(optimize)
        if fallback is None:
            from ..statevector import StateVectorSimulator

            fallback = StateVectorSimulator(seed=seed)
            if noisy_fallback is None:
                from ..densitymatrix import DensityMatrixSimulator

                noisy_fallback = DensityMatrixSimulator(seed=seed)
        self.fallback = fallback
        self.noisy_fallback = noisy_fallback if noisy_fallback is not None else fallback
        self.stabilizer = StabilizerSimulator(seed=seed)
        # Instances are keyed by backend name; two *distinct* fallback
        # instances sharing a name would collide, so the noisy one gets a
        # synthetic key in that case (the Device resolves attached-instance
        # keys before consulting the registry).
        noisy_key = self.noisy_fallback.name
        if noisy_key == self.fallback.name and self.noisy_fallback is not self.fallback:
            noisy_key = f"{noisy_key}#noisy"
        from ..api.device import Device

        self._device = Device(
            backend="auto",
            seed=seed,
            fallback=self.fallback.name,
            noisy_fallback=noisy_key,
            instances={
                "stabilizer": self.stabilizer,
                self.fallback.name: self.fallback,
                noisy_key: self.noisy_fallback,
            },
        )
        #: The decision taken by the most recent ``simulate``/``sample`` call.
        self.last_decision: Optional[BackendDecision] = None

    @property
    def device(self) -> "Device":
        """The underlying :class:`~repro.api.device.Device` (batched runs)."""
        return self._device

    def decide(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        sampling: bool = True,
    ) -> BackendDecision:
        """The routing :func:`select_backend` would take for ``circuit``."""
        return self._device.decide(circuit, resolver, sampling=sampling)

    def _optimized(self, circuit: Circuit) -> Circuit:
        if self._pipeline is None:
            return circuit
        return self._pipeline.run(circuit).circuit

    def _prefix_state(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver],
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
        sampling: bool,
    ):
        """Tableau-prefix + dense-tail execution, or ``None`` when inapplicable.

        Fires only with ``optimize`` enabled, on ideal circuits the router
        sends to the dense fallback, when the circuit opens with a
        non-trivial Clifford block and is small enough to expand the tableau
        state densely.  Returns the final :class:`StateVectorResult`.
        """
        if self._pipeline is None or circuit.noise_operations():
            return None
        qubits = list(qubit_order) if qubit_order is not None else circuit.all_qubits()
        if len(qubits) > DENSE_PROBABILITY_QUBITS:
            return None
        decision = self._device.decide(circuit, resolver, sampling=sampling)
        if decision.backend != self.fallback.name:
            return None
        prefix, remainder = split_clifford_prefix(circuit, resolver)
        prefix_count = prefix.gate_count()
        tail_unitaries = remainder.unitary_operations()
        if prefix_count < 1 or not tail_unitaries:
            return None
        state = self.stabilizer.simulate(
            prefix, resolver, qubit_order=qubits, initial_state=initial_state
        ).state_vector
        position = {qubit: index for index, qubit in enumerate(qubits)}
        for operation in tail_unitaries:
            state = apply_unitary_to_state(
                state,
                operation.gate.unitary(resolver),
                [position[qubit] for qubit in operation.qubits],
                len(qubits),
            )
        self.last_decision = BackendDecision(
            self.fallback.name,
            f"clifford prefix ({prefix_count} ops) on tableau, "
            f"dense tail ({len(tail_unitaries)} ops)",
        )
        return StateVectorResult(qubits, state)

    def simulate(
        self,
        circuit: Circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ):
        """Run the circuit on the routed backend.

        Returns a :class:`~repro.stabilizer.StabilizerResult` on the tableau
        route and the fallback backend's native result otherwise; both expose
        ``qubits``, ``probabilities()`` and ``sample()``.
        """
        circuit = self._optimized(circuit)
        split = self._prefix_state(circuit, resolver, qubit_order, initial_state, sampling=False)
        if split is not None:
            return split
        result = self._device.simulate(circuit, resolver, qubit_order, initial_state)
        self.last_decision = self._device.last_decision
        return result

    def sample(
        self,
        circuit: Circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
    ) -> SampleResult:
        """Draw samples from the routed backend (tableau when possible)."""
        circuit = self._optimized(circuit)
        split = self._prefix_state(circuit, resolver, qubit_order, initial_state, sampling=True)
        if split is not None:
            return split.sample(repetitions, rng=self._rng(seed))
        result = self._device.sample(
            circuit,
            repetitions,
            resolver=resolver,
            qubit_order=qubit_order,
            seed=seed,
            initial_state=initial_state,
        )
        self.last_decision = self._device.last_decision
        return result

    def __repr__(self) -> str:
        return f"<HybridSimulator fallback={type(self.fallback).__name__}>"
