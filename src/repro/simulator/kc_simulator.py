"""The knowledge-compilation simulator — the paper's primary contribution.

Pipeline (Figure 4 of the paper):

1. circuit -> complex-valued Bayesian network (:mod:`repro.bayesnet`);
2. Bayesian network -> weighted CNF (:mod:`repro.cnf`);
3. CNF -> d-DNNF / arithmetic circuit (:mod:`repro.knowledge`), with
   intermediate qubit states elided and the circuit smoothed;
4. repeated amplitude queries (upward passes) and Gibbs sampling (upward +
   downward passes) with per-run numeric parameters.

The compile step is performed once per circuit *structure*; variational
iterations only re-bind weight values.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..bayesnet.from_circuit import QuantumBayesNet, circuit_to_bayesnet
from ..circuits.circuit import Circuit
from ..circuits.parameters import ParameterValue, ParamResolver
from ..circuits.passes import OptimizeSpec, PipelineStats, resolve_pipeline
from ..circuits.qubits import Qubit
from ..circuits.topology import bind_canonical_parameters, canonicalize_circuit
from ..cnf.encoder import CNFEncoding, encode_bayesnet
from ..errors import CompilationError, UnsupportedCircuitError
from ..knowledge.arithmetic_circuit import ArithmeticCircuit
from ..knowledge.cache import CompiledCircuitCache, default_cache
from ..knowledge.compiler import KnowledgeCompiler
from ..knowledge.transform import forget, smooth
from ..linalg.tensor_ops import index_to_bits
from .base import Simulator
from .results import DensityMatrixResult, SampleResult, StateVectorResult

#: Sentinel distinguishing "use the process-wide shared cache" (the default)
#: from an explicit ``cache=None`` (caching disabled).
USE_DEFAULT_CACHE = object()


def _encoding_fingerprint(encoding: CNFEncoding) -> str:
    """Cheap structural fingerprint validating disk-cached compiles.

    The polynomial front end (circuit -> Bayesian network -> CNF) is re-run
    on every disk-cache load; a stored arithmetic circuit is only accepted if
    the freshly built encoding matches the one it was compiled from, so a
    stale or foreign cache file degrades to a recompile rather than a wrong
    answer.
    """
    description = (
        encoding.cnf.num_vars,
        encoding.cnf.num_clauses,
        tuple(encoding.weight_variables),
        tuple(sorted(encoding.forced_literals)),
        tuple(sorted((name, tuple(bits)) for name, bits in encoding.node_bits.items())),
    )
    return hashlib.sha256(repr(description).encode("utf-8")).hexdigest()


class RetainedVariable:
    """A Bayesian-network variable that survives elision and can be queried.

    Either a final qubit-state node (binary) or a noise branch-selector node
    (cardinality = number of Kraus operators, log-encoded over several CNF
    bits).
    """

    def __init__(self, node_name: str, cardinality: int, kind: str, bit_vars: List[int]):
        self.node_name = node_name
        self.cardinality = cardinality
        self.kind = kind  # "final" or "noise"
        self.bit_vars = list(bit_vars)  # CNF variable per bit, MSB first

    @property
    def width(self) -> int:
        return len(self.bit_vars)

    def bit_values(self, value: int) -> List[int]:
        """The bit pattern (MSB first) for ``value``."""
        if not 0 <= value < 2 ** self.width:
            raise ValueError(f"value {value} out of range for {self.node_name}")
        return [(value >> (self.width - 1 - j)) & 1 for j in range(self.width)]

    def value_from_bits(self, bits: Sequence[int]) -> int:
        value = 0
        for bit in bits:
            value = (value << 1) | (int(bit) & 1)
        return value

    def __repr__(self) -> str:
        return f"RetainedVariable({self.node_name!r}, kind={self.kind!r}, card={self.cardinality})"


class _EvidenceIndex:
    """Precomputed fancy-index arrays binding a list of retained variables.

    Splits the variables' CNF bits into *free* bits (written into the literal
    value table) and *forced* bits (fixed by CNF simplification; an assignment
    disagreeing with one has amplitude exactly zero).  Binding evidence is
    then a couple of vectorised shift/mask/assign operations instead of
    nested Python loops over variables and bits, and the same index arrays
    serve whole batches of assignments at once.
    """

    def __init__(self, variables: Sequence[RetainedVariable], encoding: CNFEncoding):
        free_vars: List[int] = []
        free_columns: List[int] = []
        free_shifts: List[int] = []
        forced_columns: List[int] = []
        forced_shifts: List[int] = []
        forced_bits: List[int] = []
        for column, variable in enumerate(variables):
            width = variable.width
            for position, bit_var in enumerate(variable.bit_vars):
                shift = width - 1 - position  # MSB first
                forced = encoding.forced_value(bit_var)
                if forced is None:
                    free_vars.append(bit_var)
                    free_columns.append(column)
                    free_shifts.append(shift)
                else:
                    forced_columns.append(column)
                    forced_shifts.append(shift)
                    forced_bits.append(int(forced))
        self.num_variables = len(variables)
        self.limits = np.asarray([2 ** variable.width for variable in variables], dtype=np.int64)
        self.free_vars = np.asarray(free_vars, dtype=np.int64)
        self.free_columns = np.asarray(free_columns, dtype=np.int64)
        self.free_shifts = np.asarray(free_shifts, dtype=np.int64)
        self.forced_columns = np.asarray(forced_columns, dtype=np.int64)
        self.forced_shifts = np.asarray(forced_shifts, dtype=np.int64)
        self.forced_bits = np.asarray(forced_bits, dtype=np.int64)

    def apply(self, literal_values: np.ndarray, values: np.ndarray) -> bool:
        """Bind one assignment (``values`` has one entry per variable).

        Returns ``True`` if the assignment contradicts a forced bit.
        """
        if np.any((values < 0) | (values >= self.limits)):
            raise ValueError("retained-variable value out of range")
        if len(self.free_vars):
            bits = (values[self.free_columns] >> self.free_shifts) & 1
            literal_values[self.free_vars, 1] = bits
            literal_values[self.free_vars, 0] = 1 - bits
        if len(self.forced_columns):
            observed = (values[self.forced_columns] >> self.forced_shifts) & 1
            return bool(np.any(observed != self.forced_bits))
        return False

    def apply_batch(self, literal_values: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Bind a ``(B, num_variables)`` assignment batch.

        Writes into the ``(B, num_vars + 1, 2)`` literal batch and returns the
        ``(B,)`` boolean mask of rows contradicting a forced bit (amplitude
        exactly zero — the scalar path's shortcut).
        """
        batch = values.shape[0]
        if np.any((values < 0) | (values >= self.limits)):
            raise ValueError("retained-variable value out of range")
        if len(self.free_vars):
            bits = (values[:, self.free_columns] >> self.free_shifts) & 1
            literal_values[:, self.free_vars, 1] = bits
            literal_values[:, self.free_vars, 0] = 1 - bits
        if len(self.forced_columns):
            observed = (values[:, self.forced_columns] >> self.forced_shifts) & 1
            return np.any(observed != self.forced_bits, axis=1)
        return np.zeros(batch, dtype=bool)


class CompiledCircuit:
    """A circuit compiled once, queryable many times with different parameters."""

    def __init__(
        self,
        circuit: Circuit,
        network: QuantumBayesNet,
        encoding: CNFEncoding,
        arithmetic_circuit: ArithmeticCircuit,
        elided: bool,
        order_method: str,
    ):
        self.circuit = circuit
        self.network = network
        self.encoding = encoding
        self.arithmetic_circuit = arithmetic_circuit
        self.elided = elided
        self.order_method = order_method

        self.qubits: List[Qubit] = list(network.qubit_order)
        self.final_variables: List[RetainedVariable] = []
        self.noise_variables: List[RetainedVariable] = []
        for name in network.final_node_names:
            node = network.node(name)
            self.final_variables.append(
                RetainedVariable(name, node.cardinality, "final", encoding.bits_of(name))
            )
        for name in network.noise_node_names:
            node = network.node(name)
            self.noise_variables.append(
                RetainedVariable(name, node.cardinality, "noise", encoding.bits_of(name))
            )

        # Index arrays for vectorised weight/evidence binding (built once).
        self._weight_vars = np.asarray(encoding.weight_variables, dtype=np.int64)
        self._final_index = _EvidenceIndex(self.final_variables, encoding)
        self._noise_index = _EvidenceIndex(self.noise_variables, encoding)
        self._retained_index = _EvidenceIndex(self.retained_variables, encoding)
        self._index_by_name: Dict[str, _EvidenceIndex] = {
            variable.node_name: _EvidenceIndex([variable], encoding)
            for variable in self.retained_variables
        }

        # Per-resolver cache: (key, bound literal template, constant factor).
        self._weights_cache: Optional[Tuple[Optional[int], np.ndarray, complex]] = None
        # Canonical-parameter translation for rebound views (see rebound_for):
        # (canonical symbol name, original ParameterValue) pairs, or None when
        # this object's circuit is the compiled template itself.
        self._canonical_bindings: Optional[List[Tuple[str, ParameterValue]]] = None

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def retained_variables(self) -> List[RetainedVariable]:
        return self.final_variables + self.noise_variables

    def compilation_metrics(self) -> Dict[str, int]:
        """Table 6-style metrics: gates, CNF clauses, AC nodes/edges/size."""
        return {
            "qubits": self.num_qubits,
            "gates": self.circuit.gate_count(include_noise=True),
            "bn_nodes": self.network.num_nodes,
            "cnf_variables": self.encoding.cnf.num_vars,
            "cnf_clauses": self.encoding.cnf.num_clauses,
            "ac_nodes": self.arithmetic_circuit.num_nodes,
            "ac_edges": self.arithmetic_circuit.num_edges,
            "ac_size_bytes": self.arithmetic_circuit.size_bytes(),
        }

    # ------------------------------------------------------------------
    # Parameter binding
    # ------------------------------------------------------------------
    def rebound_for(
        self,
        circuit: Circuit,
        bindings: Optional[Sequence[Tuple[str, ParameterValue]]],
        qubit_order: Optional[Sequence[Qubit]] = None,
    ) -> "CompiledCircuit":
        """A lightweight view of this compile bound to another circuit.

        The view shares every heavy structure (network, encoding, arithmetic
        circuit, evidence indices) with this object but reports ``circuit``'s
        qubits and translates resolvers through ``bindings`` — the
        canonical-symbol assignments produced by
        :func:`repro.circuits.topology.canonicalize_circuit`.  This is how a
        topology-cache hit rebinds new parameter values into an existing
        compile instead of recompiling.
        """
        view = copy.copy(self)
        view.circuit = circuit
        view._canonical_bindings = list(bindings) if bindings else None
        view._weights_cache = None
        if qubit_order is not None:
            view.qubits = list(qubit_order)
        else:
            qubits = circuit.all_qubits()
            if len(qubits) == len(self.qubits):
                view.qubits = qubits
        return view

    def effective_resolver(self, resolver: Optional[ParamResolver] = None) -> Optional[ParamResolver]:
        """Translate a caller resolver into the compiled template's symbols.

        For rebound views this evaluates each canonical symbol's original
        expression under ``resolver`` (concrete angles need no resolver) and
        merges the result over the caller's own assignments, so symbols the
        canonicalization left untouched still resolve.  For directly compiled
        circuits this is the identity.

        Raises
        ------
        ValueError
            If an original angle is symbolic and ``resolver`` is ``None``.
        """
        return bind_canonical_parameters(self._canonical_bindings or (), resolver)

    def _resolver_key(self, resolver: Optional[ParamResolver]) -> Optional[int]:
        resolver = self.effective_resolver(resolver)
        if resolver is None:
            return None
        return hash(tuple(sorted(resolver.as_dict().items())))

    def _base_template(self, resolver: Optional[ParamResolver] = None) -> Tuple[np.ndarray, complex]:
        """Literal-value template with weights bound, memoized per resolver.

        The template is shared — callers must copy (or broadcast-copy) before
        writing evidence into it.  Weight emission goes through the
        encoding's vectorized :class:`~repro.cnf.encoder.WeightEmitter`: one
        table evaluation per parameterized node plus one fancy-indexed
        assignment, which is the entire per-point cost of a compile-once
        parameter sweep.
        """
        effective = self.effective_resolver(resolver)
        key = None if effective is None else hash(tuple(sorted(effective.as_dict().items())))
        if self._weights_cache is not None and self._weights_cache[0] == key:
            _, template, constant = self._weights_cache
            return template, constant
        weight_values, constant = self.encoding.weight_emitter().emit(effective)
        template = self.arithmetic_circuit.default_literal_values()
        if len(self._weight_vars):
            template[self._weight_vars, 1] = weight_values
        self._weights_cache = (key, template, constant)
        return template, constant

    def base_literal_values(self, resolver: Optional[ParamResolver] = None) -> Tuple[np.ndarray, complex]:
        """Literal values with weights bound and every state bit left free.

        Returns ``(literal_values, constant_factor)``; callers overwrite the
        retained-variable bit entries with evidence before evaluating.
        Weight binding is a single fancy-indexed assignment into a template
        that is memoized per resolver binding.
        """
        template, constant = self._base_template(resolver)
        return template.copy(), constant

    def base_literal_values_batch(
        self, batch: int, resolver: Optional[ParamResolver] = None
    ) -> Tuple[np.ndarray, complex]:
        """A ``(batch, num_vars + 1, 2)`` stack of weight-bound literal values."""
        template, constant = self._base_template(resolver)
        return np.broadcast_to(template, (batch,) + template.shape).copy(), constant

    def apply_evidence(
        self,
        literal_values: np.ndarray,
        assignment: Mapping[str, int],
    ) -> Optional[complex]:
        """Set bit entries for ``assignment`` (node name -> value).

        Returns ``0j`` immediately if the assignment contradicts a literal
        forced during CNF simplification (the amplitude is exactly zero) and
        ``None`` otherwise.
        """
        contradiction = False
        for name, observed in assignment.items():
            index = self._index_by_name.get(name)
            if index is None:
                continue
            contradiction |= index.apply(
                literal_values, np.asarray([int(observed)], dtype=np.int64)
            )
        return 0j if contradiction else None

    def apply_evidence_batch(
        self,
        literal_values: np.ndarray,
        assignments: np.ndarray,
        index: Optional[_EvidenceIndex] = None,
    ) -> np.ndarray:
        """Bind a ``(B, R)`` matrix of retained-variable values.

        Columns follow :attr:`retained_variables` order (final qubits first,
        then noise selectors) unless another :class:`_EvidenceIndex` is
        given.  Returns the ``(B,)`` mask of rows whose amplitude is exactly
        zero because they contradict a forced literal.
        """
        index = self._retained_index if index is None else index
        assignments = np.asarray(assignments, dtype=np.int64)
        if assignments.ndim != 2 or assignments.shape[1] != index.num_variables:
            raise ValueError(
                f"assignments must have shape (B, {index.num_variables}); "
                f"got {assignments.shape}"
            )
        return index.apply_batch(literal_values, assignments)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def assignment_for(
        self, bits: Sequence[int], noise_branches: Optional[Sequence[int]] = None
    ) -> Dict[str, int]:
        if len(bits) != self.num_qubits:
            raise ValueError("bits length must equal the number of qubits")
        assignment: Dict[str, int] = {
            variable.node_name: int(bit) for variable, bit in zip(self.final_variables, bits)
        }
        if noise_branches is not None:
            if len(noise_branches) != len(self.noise_variables):
                raise ValueError("noise_branches length must equal the number of noise channels")
            for variable, branch in zip(self.noise_variables, noise_branches):
                assignment[variable.node_name] = int(branch)
        return assignment

    def amplitude(
        self,
        bits: Sequence[int],
        noise_branches: Optional[Sequence[int]] = None,
        resolver: Optional[ParamResolver] = None,
    ) -> complex:
        """Amplitude of the output bitstring (given noise branch outcomes, if noisy)."""
        if self.noise_variables and noise_branches is None:
            raise ValueError("noisy circuit: a noise branch assignment is required for amplitudes")
        literal_values, constant = self.base_literal_values(resolver)
        assignment = self.assignment_for(bits, noise_branches)
        shortcut = self.apply_evidence(literal_values, assignment)
        if shortcut is not None:
            return shortcut
        return self.arithmetic_circuit.evaluate(literal_values) * constant

    def amplitudes(
        self,
        assignments: np.ndarray,
        noise_branches: Optional[np.ndarray] = None,
        resolver: Optional[ParamResolver] = None,
        chunk_size: int = 1024,
    ) -> np.ndarray:
        """Amplitudes of a batch of output bitstrings in chunked batched passes.

        ``assignments`` is a ``(B, num_qubits)`` bit matrix; for noisy
        circuits ``noise_branches`` is the matching ``(B, num_noise)`` branch
        matrix.  Each chunk of rows costs one batched upward pass over the
        arithmetic circuit, so all ``B`` amplitudes are computed in
        ``ceil(B / chunk_size)`` passes instead of ``B`` scalar ones.
        """
        assignments = np.atleast_2d(np.asarray(assignments, dtype=np.int64))
        total = assignments.shape[0]
        if assignments.shape[1] != self.num_qubits:
            raise ValueError("assignments must have shape (B, num_qubits)")
        if self.noise_variables and noise_branches is None:
            raise ValueError("noisy circuit: a noise branch assignment is required for amplitudes")
        if noise_branches is not None:
            noise_branches = np.atleast_2d(np.asarray(noise_branches, dtype=np.int64))
            if noise_branches.shape[0] == 1 and total > 1:
                noise_branches = np.broadcast_to(
                    noise_branches, (total, noise_branches.shape[1])
                )
            if noise_branches.shape != (total, len(self.noise_variables)):
                raise ValueError("noise_branches must have shape (B, num_noise_channels)")
        amplitudes = np.empty(total, dtype=complex)
        chunk_size = max(1, int(chunk_size))
        for start in range(0, total, chunk_size):
            stop = min(total, start + chunk_size)
            literal_batch, constant = self.base_literal_values_batch(stop - start, resolver)
            zero_rows = self._final_index.apply_batch(literal_batch, assignments[start:stop])
            if noise_branches is not None:
                zero_rows = zero_rows | self._noise_index.apply_batch(
                    literal_batch, noise_branches[start:stop]
                )
            roots = self.arithmetic_circuit.evaluate_batch(literal_batch)
            roots *= constant
            roots[zero_rows] = 0.0
            amplitudes[start:stop] = roots
        return amplitudes

    def _all_bitstrings(self) -> np.ndarray:
        """The ``(2**n, n)`` bit matrix in basis order (qubit 0 = MSB)."""
        indices = np.arange(2 ** self.num_qubits, dtype=np.int64)
        shifts = np.arange(self.num_qubits - 1, -1, -1, dtype=np.int64)
        return (indices[:, np.newaxis] >> shifts) & 1

    def state_vector(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Full final state vector of an ideal circuit (exponential; validation only)."""
        if self.noise_variables:
            raise UnsupportedCircuitError("circuit is noisy; use density_matrix()")
        return self.amplitudes(self._all_bitstrings(), resolver=resolver)

    def _noise_branch_product(self):
        cardinalities = [variable.cardinality for variable in self.noise_variables]
        return itertools.product(*[range(c) for c in cardinalities])

    def density_matrix(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Full density matrix, summing over noise branches (validation only)."""
        dim = 2 ** self.num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        bit_matrix = self._all_bitstrings()
        for branches in self._noise_branch_product():
            branch_row = np.asarray(branches, dtype=np.int64)[np.newaxis]
            vector = self.amplitudes(bit_matrix, noise_branches=branch_row, resolver=resolver)
            rho += np.outer(vector, vector.conj())
        return rho

    def probabilities(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Exact output measurement distribution (validation only).

        Built on :meth:`amplitudes`: the noisy case sums ``|amplitude|^2``
        per noise branch without materialising the full density matrix.
        """
        if not self.noise_variables:
            return np.abs(self.state_vector(resolver)) ** 2
        dim = 2 ** self.num_qubits
        probabilities = np.zeros(dim, dtype=float)
        bit_matrix = self._all_bitstrings()
        for branches in self._noise_branch_product():
            branch_row = np.asarray(branches, dtype=np.int64)[np.newaxis]
            vector = self.amplitudes(bit_matrix, noise_branches=branch_row, resolver=resolver)
            probabilities += np.abs(vector) ** 2
        return probabilities.clip(min=0.0)

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit(qubits={self.num_qubits}, ac_nodes={self.arithmetic_circuit.num_nodes}, "
            f"noise_vars={len(self.noise_variables)})"
        )


class KnowledgeCompilationSimulator(Simulator):
    """Simulator backend based on knowledge compilation of noisy circuits.

    Parameters
    ----------
    order_method:
        Elimination-ordering heuristic for the decision order
        (``"min_fill"``, ``"min_degree"``, ``"lexicographic"`` or
        ``"hypergraph"``).
    elide_internal:
        Forget intermediate qubit-state variables after compilation (the
        paper's optimization; final states and noise selectors remain
        queryable).
    seed:
        Seed for the backend's default random generator (Gibbs sampling).
    burn_in_sweeps:
        Default number of Gibbs burn-in sweeps per ``sample`` call.
    cache:
        Compiled-circuit cache consulted by :meth:`compile_circuit`.  The
        default is the process-wide shared
        :class:`~repro.knowledge.cache.CompiledCircuitCache`; pass an
        explicit instance for isolation (e.g. one with a disk directory for
        cross-process sweeps) or ``None`` to disable caching entirely.
    """

    name = "knowledge_compilation"

    def __init__(
        self,
        order_method: str = "hypergraph",
        elide_internal: bool = True,
        seed: Optional[int] = None,
        burn_in_sweeps: int = 4,
        cache: object = USE_DEFAULT_CACHE,
    ):
        super().__init__(seed)
        self.order_method = order_method
        self.elide_internal = elide_internal
        self.burn_in_sweeps = burn_in_sweeps
        self._cache_setting = cache
        # Warm Gibbs samplers keyed by compiled-circuit identity, so seedless
        # repeated sample() calls continue their chain ensembles instead of
        # paying the initial-state search and burn-in again; resolver changes
        # re-bind the cached sampler in place.
        self._sampler_cache: "OrderedDict[int, object]" = OrderedDict()
        #: Rewrite stats from the most recent ``compile_circuit(optimize=...)``.
        self.last_optimization: Optional[PipelineStats] = None

    @property
    def cache(self) -> Optional[CompiledCircuitCache]:
        """The compiled-circuit cache in effect (``None`` when disabled)."""
        if self._cache_setting is USE_DEFAULT_CACHE:
            return default_cache()
        return self._cache_setting  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def cache_key_for(
        self,
        circuit: Circuit,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        elide_internal: Optional[bool] = None,
    ) -> str:
        """The cache key ``compile_circuit`` would use for this compile.

        Combines the circuit's topology fingerprint with this simulator's
        ordering heuristic and elision setting — everything that determines
        the compiled artifact.
        """
        elide = self.elide_internal if elide_internal is None else elide_internal
        canonical = canonicalize_circuit(circuit, qubit_order=qubit_order, initial_bits=initial_bits)
        return self._cache_key(canonical.topology_key, elide)

    def _cache_key(self, topology_key: str, elide: bool) -> str:
        """The single source of truth for the cache-key format."""
        return f"{topology_key}-{self.order_method}-e{int(elide)}"

    def compile_circuit(
        self,
        circuit: Circuit,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        elide_internal: Optional[bool] = None,
        optimize: OptimizeSpec = None,
    ) -> CompiledCircuit:
        """Compile a circuit's *topology* once, for repeated parameterized queries.

        The circuit is first canonicalized: every rotation-family angle —
        symbolic or concrete — is lifted to a canonical symbol, and the
        resulting template is compiled (or fetched from the cache, keyed by
        topology + ordering + elision).  The returned
        :class:`CompiledCircuit` is a lightweight view binding the template
        back to ``circuit``'s own parameter values, so a sweep over twenty
        parameter points compiles exactly once.

        Parameters
        ----------
        circuit:
            The circuit to compile; a :class:`CompiledCircuit` passes through
            unchanged.
        qubit_order:
            Qubit-to-basis-position order (defaults to sorted qubits).
        initial_bits:
            Initial computational-basis bits, baked into the compile.
        elide_internal:
            Per-call override of the constructor's ``elide_internal``.
        optimize:
            ``None``/``False`` (default) compiles the circuit as given;
            ``True``/``"auto"`` runs :func:`repro.circuits.passes.default_pipeline`
            first, a :class:`~repro.circuits.passes.PassPipeline` runs that
            pipeline.  Rewriting happens *before* canonicalization, so the
            optimized symbolic ansatz and its resolved instances still share
            one topology key and one cached compile.  Stats land in
            :attr:`last_optimization`.  Note the light-cone contract: for a
            circuit containing measurement gates, the compiled distribution
            is guaranteed only over the *measured* qubits.

        Returns
        -------
        CompiledCircuit
            A queryable compiled circuit bound to ``circuit``'s parameters.
        """
        if isinstance(circuit, CompiledCircuit):
            return circuit
        pipeline = resolve_pipeline(optimize)
        if pipeline is not None:
            optimized = pipeline.run(circuit)
            circuit = optimized.circuit
            self.last_optimization = optimized.stats
        elide = self.elide_internal if elide_internal is None else elide_internal
        canonical = canonicalize_circuit(circuit, qubit_order=qubit_order, initial_bits=initial_bits)
        cache = self.cache
        if cache is None:
            master = self._compile_template(canonical.template, qubit_order, initial_bits, elide)
        else:
            key = self._cache_key(canonical.topology_key, elide)
            master = cache.lookup(key)
            if master is None:
                master = self._compile_template(
                    canonical.template, qubit_order, initial_bits, elide, cache=cache, key=key
                )
                cache.store(key, master)
        return master.rebound_for(circuit, canonical.bindings, qubit_order)

    def _compile_template(
        self,
        template: Circuit,
        qubit_order: Optional[Sequence[Qubit]],
        initial_bits: Optional[Sequence[int]],
        elide: bool,
        cache: Optional[CompiledCircuitCache] = None,
        key: Optional[str] = None,
    ) -> CompiledCircuit:
        """Run the full pipeline on a canonical template circuit.

        The polynomial front end (Bayesian network + CNF encoding) always
        runs; the exponential d-DNNF compile is skipped when ``cache`` holds
        a disk payload for ``key`` whose encoding fingerprint matches.
        """
        network = circuit_to_bayesnet(template, qubit_order=qubit_order, initial_bits=initial_bits)
        encoding = encode_bayesnet(network)
        fingerprint = _encoding_fingerprint(encoding)

        arithmetic_circuit: Optional[ArithmeticCircuit] = None
        if cache is not None and key is not None:
            payload = cache.load_payload(key)
            if payload is not None and payload.get("fingerprint") == fingerprint:
                candidate = payload.get("arithmetic_circuit")
                if isinstance(candidate, ArithmeticCircuit):
                    arithmetic_circuit = candidate

        if arithmetic_circuit is None:
            compiler = KnowledgeCompiler(order_method=self.order_method)
            state_bits = [bit for bits in encoding.node_bits.values() for bit in bits]
            try:
                root, manager, _stats = compiler.compile(
                    encoding.cnf, decision_variables=state_bits
                )
            except (RecursionError, MemoryError, ValueError) as error:
                raise CompilationError(
                    f"d-DNNF compilation failed for a {len(template.all_qubits())}-qubit "
                    f"circuit ({self.order_method} ordering): {error}"
                ) from error

            if elide:
                elidable: List[int] = []
                finals = set(network.final_node_names)
                for node in network.nodes:
                    if node.kind in ("initial", "qubit") and node.name not in finals:
                        elidable.extend(encoding.bits_of(node.name))
                root = forget(manager, root, elidable)
                keep_vars = sorted(set(encoding.cnf.variables()) - set(elidable))
            else:
                keep_vars = sorted(encoding.cnf.variables())

            root = smooth(manager, root, keep_vars)
            arithmetic_circuit = ArithmeticCircuit(root, encoding.cnf.num_vars)
            if cache is not None and key is not None:
                cache.store_payload(
                    key, {"arithmetic_circuit": arithmetic_circuit, "fingerprint": fingerprint}
                )

        return CompiledCircuit(template, network, encoding, arithmetic_circuit, elide, self.order_method)

    def _ensure_compiled(self, circuit) -> CompiledCircuit:
        if isinstance(circuit, CompiledCircuit):
            return circuit
        return self.compile_circuit(circuit)

    # ------------------------------------------------------------------
    def amplitude(
        self,
        circuit,
        bits: Sequence[int],
        noise_branches: Optional[Sequence[int]] = None,
        resolver: Optional[ParamResolver] = None,
    ) -> complex:
        return self._ensure_compiled(circuit).amplitude(bits, noise_branches, resolver)

    def simulate(
        self,
        circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> StateVectorResult:
        compiled = self._compiled_with_initial_state(circuit, qubit_order, initial_state)
        return StateVectorResult(compiled.qubits, compiled.state_vector(resolver))

    def simulate_density_matrix(
        self,
        circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_state: int = 0,
    ) -> DensityMatrixResult:
        compiled = self._compiled_with_initial_state(circuit, qubit_order, initial_state)
        return DensityMatrixResult(compiled.qubits, compiled.density_matrix(resolver))

    def _compiled_with_initial_state(
        self,
        circuit,
        qubit_order: Optional[Sequence[Qubit]],
        initial_state: int,
    ) -> CompiledCircuit:
        """Compile honoring ``initial_state``; the starting state is baked in at compile time."""
        if isinstance(circuit, CompiledCircuit):
            if initial_state != 0:
                raise ValueError(
                    "a CompiledCircuit fixes its initial state at compile time; "
                    "pass initial_bits to compile_circuit instead of initial_state"
                )
            return circuit
        initial_bits = None
        if initial_state:
            num_qubits = len(qubit_order) if qubit_order is not None else circuit.num_qubits
            initial_bits = list(index_to_bits(initial_state, num_qubits))
        return self.compile_circuit(circuit, qubit_order=qubit_order, initial_bits=initial_bits)

    def sample(
        self,
        circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        initial_state: int = 0,
        burn_in_sweeps: Optional[int] = None,
        steps_per_sample: int = 1,
        num_chains: Optional[int] = None,
    ) -> SampleResult:
        """Draw output samples via Gibbs sampling on the compiled arithmetic circuit.

        ``num_chains`` controls the size of the lockstep chain ensemble (see
        :class:`repro.sampling.gibbs.GibbsSampler`); the default lets the
        sampler pick one based on ``repetitions``.  A non-zero
        ``initial_state`` is baked into the compile (same contract as
        :meth:`simulate`); a :class:`CompiledCircuit` input already fixed its
        starting state at compile time and rejects the argument.

        Seedless calls reuse a cached sampler per compiled circuit, so
        repeated sampling continues the warm chain ensemble and skips the
        cold start; when the resolver binding changes (the variational
        loop), the sampler re-binds weights in place and only repeats its
        burn-in rounds.  Passing ``seed`` creates a fresh sampler,
        preserving call-for-call reproducibility.
        """
        from ..sampling.gibbs import GibbsSampler

        if isinstance(circuit, CompiledCircuit):
            if initial_state != 0:
                raise ValueError(
                    "a CompiledCircuit fixes its initial state at compile time; "
                    "pass initial_bits to compile_circuit instead of initial_state"
                )
            compiled = circuit
        else:
            compiled = self._compiled_with_initial_state(circuit, qubit_order, initial_state)
        if seed is not None:
            sampler = GibbsSampler(compiled, resolver=resolver, rng=self._rng(seed))
        else:
            key = id(compiled)
            sampler = self._sampler_cache.get(key)
            if sampler is None or sampler.compiled is not compiled:
                sampler = GibbsSampler(compiled, resolver=resolver, rng=self._rng())
                self._sampler_cache[key] = sampler
                while len(self._sampler_cache) > 8:
                    self._sampler_cache.popitem(last=False)
            else:
                self._sampler_cache.move_to_end(key)
                if compiled._resolver_key(resolver) != compiled._resolver_key(sampler.resolver):
                    # New parameter binding for the same compiled structure
                    # (the variational loop): keep the warm chains, re-bind
                    # weights and let the sampler repeat its burn-in before
                    # recording.
                    sampler.rebind(resolver)
        sweeps = self.burn_in_sweeps if burn_in_sweeps is None else burn_in_sweeps
        return sampler.sample(
            repetitions,
            burn_in_sweeps=sweeps,
            steps_per_sample=steps_per_sample,
            num_chains=num_chains,
        )
