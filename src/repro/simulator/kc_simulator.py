"""The knowledge-compilation simulator — the paper's primary contribution.

Pipeline (Figure 4 of the paper):

1. circuit -> complex-valued Bayesian network (:mod:`repro.bayesnet`);
2. Bayesian network -> weighted CNF (:mod:`repro.cnf`);
3. CNF -> d-DNNF / arithmetic circuit (:mod:`repro.knowledge`), with
   intermediate qubit states elided and the circuit smoothed;
4. repeated amplitude queries (upward passes) and Gibbs sampling (upward +
   downward passes) with per-run numeric parameters.

The compile step is performed once per circuit *structure*; variational
iterations only re-bind weight values.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..bayesnet.from_circuit import QuantumBayesNet, circuit_to_bayesnet
from ..circuits.circuit import Circuit
from ..circuits.parameters import ParamResolver
from ..circuits.qubits import Qubit
from ..cnf.encoder import CNFEncoding, encode_bayesnet
from ..knowledge.arithmetic_circuit import ArithmeticCircuit
from ..knowledge.compiler import KnowledgeCompiler
from ..knowledge.transform import forget, smooth
from ..linalg.tensor_ops import index_to_bits
from .base import Simulator
from .results import DensityMatrixResult, SampleResult, StateVectorResult


class RetainedVariable:
    """A Bayesian-network variable that survives elision and can be queried.

    Either a final qubit-state node (binary) or a noise branch-selector node
    (cardinality = number of Kraus operators, log-encoded over several CNF
    bits).
    """

    def __init__(self, node_name: str, cardinality: int, kind: str, bit_vars: List[int]):
        self.node_name = node_name
        self.cardinality = cardinality
        self.kind = kind  # "final" or "noise"
        self.bit_vars = list(bit_vars)  # CNF variable per bit, MSB first

    @property
    def width(self) -> int:
        return len(self.bit_vars)

    def bit_values(self, value: int) -> List[int]:
        """The bit pattern (MSB first) for ``value``."""
        if not 0 <= value < 2 ** self.width:
            raise ValueError(f"value {value} out of range for {self.node_name}")
        return [(value >> (self.width - 1 - j)) & 1 for j in range(self.width)]

    def value_from_bits(self, bits: Sequence[int]) -> int:
        value = 0
        for bit in bits:
            value = (value << 1) | (int(bit) & 1)
        return value

    def __repr__(self) -> str:
        return f"RetainedVariable({self.node_name!r}, kind={self.kind!r}, card={self.cardinality})"


class CompiledCircuit:
    """A circuit compiled once, queryable many times with different parameters."""

    def __init__(
        self,
        circuit: Circuit,
        network: QuantumBayesNet,
        encoding: CNFEncoding,
        arithmetic_circuit: ArithmeticCircuit,
        elided: bool,
        order_method: str,
    ):
        self.circuit = circuit
        self.network = network
        self.encoding = encoding
        self.arithmetic_circuit = arithmetic_circuit
        self.elided = elided
        self.order_method = order_method

        self.qubits: List[Qubit] = list(network.qubit_order)
        self.final_variables: List[RetainedVariable] = []
        self.noise_variables: List[RetainedVariable] = []
        for name in network.final_node_names:
            node = network.node(name)
            self.final_variables.append(
                RetainedVariable(name, node.cardinality, "final", encoding.bits_of(name))
            )
        for name in network.noise_node_names:
            node = network.node(name)
            self.noise_variables.append(
                RetainedVariable(name, node.cardinality, "noise", encoding.bits_of(name))
            )

        self._weights_cache: Optional[Tuple[Optional[int], Dict[int, complex], complex]] = None

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def retained_variables(self) -> List[RetainedVariable]:
        return self.final_variables + self.noise_variables

    def compilation_metrics(self) -> Dict[str, int]:
        """Table 6-style metrics: gates, CNF clauses, AC nodes/edges/size."""
        return {
            "qubits": self.num_qubits,
            "gates": self.circuit.gate_count(include_noise=True),
            "bn_nodes": self.network.num_nodes,
            "cnf_variables": self.encoding.cnf.num_vars,
            "cnf_clauses": self.encoding.cnf.num_clauses,
            "ac_nodes": self.arithmetic_circuit.num_nodes,
            "ac_edges": self.arithmetic_circuit.num_edges,
            "ac_size_bytes": self.arithmetic_circuit.size_bytes(),
        }

    # ------------------------------------------------------------------
    # Parameter binding
    # ------------------------------------------------------------------
    def _resolver_key(self, resolver: Optional[ParamResolver]) -> Optional[int]:
        if resolver is None:
            return None
        return hash(tuple(sorted(resolver.as_dict().items())))

    def base_literal_values(self, resolver: Optional[ParamResolver] = None) -> Tuple[np.ndarray, complex]:
        """Literal values with weights bound and every state bit left free.

        Returns ``(literal_values, constant_factor)``; callers overwrite the
        retained-variable bit entries with evidence before evaluating.
        Weight lookups are memoized per resolver binding.
        """
        key = self._resolver_key(resolver)
        if self._weights_cache is not None and self._weights_cache[0] == key:
            weights, constant = self._weights_cache[1], self._weights_cache[2]
        else:
            weights = self.encoding.weights(resolver)
            constant = self.encoding.constant_factor(resolver)
            self._weights_cache = (key, weights, constant)
        literal_values = self.arithmetic_circuit.default_literal_values()
        for variable, value in weights.items():
            literal_values[variable, 1] = value
        return literal_values, constant

    def apply_evidence(
        self,
        literal_values: np.ndarray,
        assignment: Mapping[str, int],
    ) -> Optional[complex]:
        """Set bit entries for ``assignment`` (node name -> value).

        Returns ``0j`` immediately if the assignment contradicts a literal
        forced during CNF simplification (the amplitude is exactly zero) and
        ``None`` otherwise.
        """
        for variable in self.retained_variables:
            if variable.node_name not in assignment:
                continue
            observed = int(assignment[variable.node_name])
            bits = variable.bit_values(observed)
            for bit_var, bit in zip(variable.bit_vars, bits):
                forced = self.encoding.forced_value(bit_var)
                if forced is not None:
                    if int(forced) != bit:
                        return 0j
                    continue
                literal_values[bit_var, 1] = 1.0 if bit else 0.0
                literal_values[bit_var, 0] = 0.0 if bit else 1.0
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def assignment_for(
        self, bits: Sequence[int], noise_branches: Optional[Sequence[int]] = None
    ) -> Dict[str, int]:
        if len(bits) != self.num_qubits:
            raise ValueError("bits length must equal the number of qubits")
        assignment: Dict[str, int] = {
            variable.node_name: int(bit) for variable, bit in zip(self.final_variables, bits)
        }
        if noise_branches is not None:
            if len(noise_branches) != len(self.noise_variables):
                raise ValueError("noise_branches length must equal the number of noise channels")
            for variable, branch in zip(self.noise_variables, noise_branches):
                assignment[variable.node_name] = int(branch)
        return assignment

    def amplitude(
        self,
        bits: Sequence[int],
        noise_branches: Optional[Sequence[int]] = None,
        resolver: Optional[ParamResolver] = None,
    ) -> complex:
        """Amplitude of the output bitstring (given noise branch outcomes, if noisy)."""
        if self.noise_variables and noise_branches is None:
            raise ValueError("noisy circuit: a noise branch assignment is required for amplitudes")
        literal_values, constant = self.base_literal_values(resolver)
        assignment = self.assignment_for(bits, noise_branches)
        shortcut = self.apply_evidence(literal_values, assignment)
        if shortcut is not None:
            return shortcut
        return self.arithmetic_circuit.evaluate(literal_values) * constant

    def state_vector(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Full final state vector of an ideal circuit (exponential; validation only)."""
        if self.noise_variables:
            raise ValueError("circuit is noisy; use density_matrix()")
        dim = 2 ** self.num_qubits
        state = np.zeros(dim, dtype=complex)
        for index in range(dim):
            bits = index_to_bits(index, self.num_qubits)
            state[index] = self.amplitude(bits, resolver=resolver)
        return state

    def density_matrix(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Full density matrix, summing over noise branches (validation only)."""
        dim = 2 ** self.num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        cardinalities = [variable.cardinality for variable in self.noise_variables]
        for branches in itertools.product(*[range(c) for c in cardinalities]):
            vector = np.zeros(dim, dtype=complex)
            for index in range(dim):
                bits = index_to_bits(index, self.num_qubits)
                vector[index] = self.amplitude(bits, noise_branches=branches, resolver=resolver)
            rho += np.outer(vector, vector.conj())
        return rho

    def probabilities(self, resolver: Optional[ParamResolver] = None) -> np.ndarray:
        """Exact output measurement distribution (validation only)."""
        if not self.noise_variables:
            return np.abs(self.state_vector(resolver)) ** 2
        return np.real(np.diag(self.density_matrix(resolver))).clip(min=0.0)

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit(qubits={self.num_qubits}, ac_nodes={self.arithmetic_circuit.num_nodes}, "
            f"noise_vars={len(self.noise_variables)})"
        )


class KnowledgeCompilationSimulator(Simulator):
    """Simulator backend based on knowledge compilation of noisy circuits."""

    name = "knowledge_compilation"

    def __init__(
        self,
        order_method: str = "hypergraph",
        elide_internal: bool = True,
        seed: Optional[int] = None,
        burn_in_sweeps: int = 4,
    ):
        self.order_method = order_method
        self.elide_internal = elide_internal
        self.burn_in_sweeps = burn_in_sweeps
        self._default_rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def compile_circuit(
        self,
        circuit: Circuit,
        qubit_order: Optional[Sequence[Qubit]] = None,
        initial_bits: Optional[Sequence[int]] = None,
        elide_internal: Optional[bool] = None,
    ) -> CompiledCircuit:
        """Compile a circuit's structure once, for repeated parameterized queries."""
        elide = self.elide_internal if elide_internal is None else elide_internal
        network = circuit_to_bayesnet(circuit, qubit_order=qubit_order, initial_bits=initial_bits)
        encoding = encode_bayesnet(network)
        compiler = KnowledgeCompiler(order_method=self.order_method)
        state_bits = [bit for bits in encoding.node_bits.values() for bit in bits]
        root, manager, _stats = compiler.compile(encoding.cnf, decision_variables=state_bits)

        if elide:
            elidable: List[int] = []
            finals = set(network.final_node_names)
            for node in network.nodes:
                if node.kind in ("initial", "qubit") and node.name not in finals:
                    elidable.extend(encoding.bits_of(node.name))
            root = forget(manager, root, elidable)
            keep_vars = sorted(set(encoding.cnf.variables()) - set(elidable))
        else:
            keep_vars = sorted(encoding.cnf.variables())

        root = smooth(manager, root, keep_vars)
        arithmetic_circuit = ArithmeticCircuit(root, encoding.cnf.num_vars)
        return CompiledCircuit(circuit, network, encoding, arithmetic_circuit, elide, self.order_method)

    def _ensure_compiled(self, circuit) -> CompiledCircuit:
        if isinstance(circuit, CompiledCircuit):
            return circuit
        return self.compile_circuit(circuit)

    # ------------------------------------------------------------------
    def amplitude(
        self,
        circuit,
        bits: Sequence[int],
        noise_branches: Optional[Sequence[int]] = None,
        resolver: Optional[ParamResolver] = None,
    ) -> complex:
        return self._ensure_compiled(circuit).amplitude(bits, noise_branches, resolver)

    def simulate(
        self,
        circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
    ) -> StateVectorResult:
        compiled = (
            circuit
            if isinstance(circuit, CompiledCircuit)
            else self.compile_circuit(circuit, qubit_order=qubit_order)
        )
        return StateVectorResult(compiled.qubits, compiled.state_vector(resolver))

    def simulate_density_matrix(
        self,
        circuit,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
    ) -> DensityMatrixResult:
        compiled = (
            circuit
            if isinstance(circuit, CompiledCircuit)
            else self.compile_circuit(circuit, qubit_order=qubit_order)
        )
        return DensityMatrixResult(compiled.qubits, compiled.density_matrix(resolver))

    def sample(
        self,
        circuit,
        repetitions: int,
        resolver: Optional[ParamResolver] = None,
        qubit_order: Optional[Sequence[Qubit]] = None,
        seed: Optional[int] = None,
        burn_in_sweeps: Optional[int] = None,
        steps_per_sample: int = 1,
    ) -> SampleResult:
        """Draw output samples via Gibbs sampling on the compiled arithmetic circuit."""
        from ..sampling.gibbs import GibbsSampler

        compiled = (
            circuit
            if isinstance(circuit, CompiledCircuit)
            else self.compile_circuit(circuit, qubit_order=qubit_order)
        )
        rng = self._rng(seed) if seed is not None else self._default_rng
        sampler = GibbsSampler(compiled, resolver=resolver, rng=rng)
        sweeps = self.burn_in_sweeps if burn_in_sweeps is None else burn_in_sweeps
        return sampler.sample(repetitions, burn_in_sweeps=sweeps, steps_per_sample=steps_per_sample)
