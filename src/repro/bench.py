"""Shared emitter for benchmark artifacts (``BENCH_*.json``).

Every benchmark in ``benchmarks/`` that persists machine-readable results
— the per-suite ``BENCH_api.json`` / ``BENCH_optimizer.json`` /
``BENCH_robustness.json`` emitters and the unified ``bench_all.py``
harness behind ``BENCH_all.json`` — funnels its write through
:func:`emit_bench`, so artifact I/O inherits the project's atomic-write
discipline (see :mod:`repro.atomicio`): a crash mid-emit leaves the old
artifact intact, never a torn file, and the reprolint ``atomic-write``
audit covers the single shared site instead of one raw ``write_text``
per benchmark.

Payloads are plain JSON trees of numbers/strings the caller has already
rounded; ``emit_bench`` rejects NaN/Infinity so a failed measurement can
never masquerade as a tracked metric.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Union

from .atomicio import atomic_write_text

__all__ = ["emit_bench", "load_bench"]


def emit_bench(path: Union[str, "os.PathLike[str]"], payload: Dict[str, Any]) -> None:
    """Atomically write one ``BENCH_*.json`` artifact.

    The serialized form is stable (two-space indent, trailing newline,
    insertion-ordered keys) so committed artifacts diff cleanly across
    regeneration runs.
    """
    text = json.dumps(payload, indent=2, allow_nan=False) + "\n"
    atomic_write_text(path, text)


def load_bench(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` artifact emitted by :func:`emit_bench`."""
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise ValueError(f"{os.fspath(path)!r} is not a benchmark artifact object")
    return loaded
