"""Job lifecycle tests: cancellation, error propagation, seeding parity.

The satellite contract of the Device/Job redesign:

* cancelling a job mid-batch stops not-yet-started tasks, keeps completed
  rows reachable, and makes ``result()`` raise ``JobCancelledError``;
* a worker exception crosses the process boundary with its **original**
  type (the remote traceback attached as ``__cause__``);
* serial (``jobs=1``), pooled (``jobs>1``) and async (``block=False``)
  runs of the same seeded batch are bit-identical (``seed + index``
  fan-out is independent of scheduling).
"""

import time

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    JobCancelledError,
    LineQubit,
    Rx,
    UnsupportedCircuitError,
    depolarize,
    device,
)
from repro.api import scheduler
from repro.errors import BackendCapabilityError


def _echo_task(payload):
    return [(payload["index"], payload["value"])]


def _slow_task(payload):
    time.sleep(payload.get("sleep", 0.2))
    return [(payload["index"], payload["value"])]


def _failing_task(payload):
    raise UnsupportedCircuitError(f"boom on {payload['index']}")


class TestSchedulerLifecycle:
    def test_inline_job_is_done_immediately(self):
        job = scheduler.submit([(_echo_task, {"index": i, "value": i * i}) for i in range(4)])
        assert job.status() == scheduler.DONE
        assert job.result() == [0, 1, 4, 9]

    def test_async_job_completes_in_background(self):
        tasks = [(_echo_task, {"index": i, "value": i}) for i in range(6)]
        job = scheduler.submit(tasks, jobs=2, block=False)
        assert job.result(timeout=60) == list(range(6))
        assert job.status() == scheduler.DONE

    def test_cancel_mid_batch_keeps_partial_results(self):
        # One worker, staggered tasks: cancel as soon as the first row lands.
        tasks = [(_slow_task, {"index": i, "value": i, "sleep": 0.3}) for i in range(8)]
        job = scheduler.submit(tasks, jobs=1, block=False)
        deadline = time.time() + 30
        while not job.partial_results() and time.time() < deadline:
            time.sleep(0.02)
        assert job.cancel()
        job.wait(timeout=30)
        assert job.status() == scheduler.CANCELLED
        partial = job.partial_results()
        assert 1 <= len(partial) < len(tasks)
        with pytest.raises(JobCancelledError):
            job.result()
        # Cancelling a finished job is a no-op.
        assert not job.cancel()

    def test_worker_failure_reraises_original_type(self):
        tasks = [(_echo_task, {"index": 0, "value": 0}), (_failing_task, {"index": 1})]
        job = scheduler.submit(tasks, jobs=2, block=True)
        assert job.status() == scheduler.FAILED
        with pytest.raises(UnsupportedCircuitError, match="boom on 1"):
            job.result()
        # The remote traceback rides along as the cause.
        try:
            job.result()
        except UnsupportedCircuitError as error:
            assert "worker traceback" in str(error.__cause__)

    def test_inline_failure_reraises_original_type(self):
        job = scheduler.submit([(_failing_task, {"index": 0})])
        with pytest.raises(UnsupportedCircuitError):
            job.result()

    def test_stream_yields_rows_in_arrival_order(self):
        tasks = [(_echo_task, {"index": i, "value": -i}) for i in range(5)]
        job = scheduler.submit(tasks, jobs=2, block=False)
        rows = dict(job.stream(timeout=60))
        assert rows == {i: -i for i in range(5)}


@pytest.fixture(scope="module")
def mixed_batch():
    q = LineQubit.range(3)
    bell = Circuit([H(q[0]), CNOT(q[0], q[1])])
    rotated = [
        Circuit([H(q[0]), Rx(0.1 + 0.2 * k)(q[1]), CNOT(q[1], q[2])]) for k in range(4)
    ]
    noisy = bell.with_noise(lambda: depolarize(0.05))
    return [bell, noisy, *rotated, bell, noisy]


class TestDeviceJobLifecycle:
    def test_serial_parallel_and_async_runs_are_identical(self, mixed_batch):
        runs = {}
        for label, kwargs in {
            "serial": dict(jobs=1, block=True),
            "parallel": dict(jobs=2, block=True),
            "async": dict(jobs=2, block=False),
        }.items():
            job = device("auto", seed=11).run(
                mixed_batch, repetitions=40, seed=17, **kwargs
            )
            result = job.result(timeout=120)
            runs[label] = (result.backends(), result.counts())
        assert runs["serial"] == runs["parallel"] == runs["async"]

    def test_worker_exception_keeps_original_type_through_device(self, mixed_batch):
        noisy = mixed_batch[1]
        job = device("kc", seed=0).run(
            [noisy, noisy], repetitions=10, sampling="exact", jobs=2, block=False
        )
        with pytest.raises(BackendCapabilityError, match="exact sampling"):
            job.result(timeout=120)
        assert job.status() == scheduler.FAILED

    def test_device_job_cancellation(self, mixed_batch):
        # Enough repetitions that the single worker cannot drain the queue
        # before cancel() lands.
        job = device("auto", seed=3).run(
            mixed_batch * 6, repetitions=2000, seed=5, jobs=1, block=False
        )
        job.cancel()
        job.wait(timeout=120)
        assert job.status() == scheduler.CANCELLED
        with pytest.raises(JobCancelledError):
            job.result()
        assert len(job.partial_results()) < len(mixed_batch) * 6

    def test_streaming_partial_results(self, mixed_batch):
        job = device("auto", seed=1).run(
            mixed_batch, repetitions=10, seed=2, jobs=2, block=False
        )
        seen = sorted(index for index, _row in job.stream(timeout=120))
        assert seen == list(range(len(mixed_batch)))
