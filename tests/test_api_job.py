"""Job lifecycle tests: cancellation, error propagation, seeding parity.

The satellite contract of the Device/Job redesign:

* cancelling a job mid-batch stops not-yet-started tasks, keeps completed
  rows reachable, and makes ``result()`` raise ``JobCancelledError``;
* a worker exception crosses the process boundary with its **original**
  type (the remote traceback attached as ``__cause__``);
* serial (``jobs=1``), pooled (``jobs>1``) and async (``block=False``)
  runs of the same seeded batch are bit-identical (``seed + index``
  fan-out is independent of scheduling).
"""

import time

import numpy as np
import pytest

from repro import (
    CNOT,
    Circuit,
    H,
    JobCancelledError,
    JobTimeoutError,
    LineQubit,
    Rx,
    TransientError,
    UnsupportedCircuitError,
    depolarize,
    device,
)
from repro.api import scheduler
from repro.errors import BackendCapabilityError


def _echo_task(payload):
    return [(payload["index"], payload["value"])]


def _slow_task(payload):
    time.sleep(payload.get("sleep", 0.2))
    return [(payload["index"], payload["value"])]


def _failing_task(payload):
    raise UnsupportedCircuitError(f"boom on {payload['index']}")


class TestSchedulerLifecycle:
    def test_inline_job_is_done_immediately(self):
        job = scheduler.submit([(_echo_task, {"index": i, "value": i * i}) for i in range(4)])
        assert job.status() == scheduler.DONE
        assert job.result() == [0, 1, 4, 9]

    def test_async_job_completes_in_background(self):
        tasks = [(_echo_task, {"index": i, "value": i}) for i in range(6)]
        job = scheduler.submit(tasks, jobs=2, block=False)
        assert job.result(timeout=60) == list(range(6))
        assert job.status() == scheduler.DONE

    def test_cancel_mid_batch_keeps_partial_results(self):
        # One worker, staggered tasks: cancel as soon as the first row lands.
        tasks = [(_slow_task, {"index": i, "value": i, "sleep": 0.3}) for i in range(8)]
        job = scheduler.submit(tasks, jobs=1, block=False)
        deadline = time.time() + 30
        while not job.partial_results() and time.time() < deadline:
            time.sleep(0.02)
        assert job.cancel()
        job.wait(timeout=30)
        assert job.status() == scheduler.CANCELLED
        partial = job.partial_results()
        assert 1 <= len(partial) < len(tasks)
        with pytest.raises(JobCancelledError):
            job.result()
        # Cancelling a finished job is a no-op.
        assert not job.cancel()

    def test_worker_failure_reraises_original_type(self):
        tasks = [(_echo_task, {"index": 0, "value": 0}), (_failing_task, {"index": 1})]
        job = scheduler.submit(tasks, jobs=2, block=True)
        assert job.status() == scheduler.FAILED
        with pytest.raises(UnsupportedCircuitError, match="boom on 1"):
            job.result()
        # The remote traceback rides along as the cause.
        try:
            job.result()
        except UnsupportedCircuitError as error:
            assert "worker traceback" in str(error.__cause__)

    def test_inline_failure_reraises_original_type(self):
        job = scheduler.submit([(_failing_task, {"index": 0})])
        with pytest.raises(UnsupportedCircuitError):
            job.result()

    def test_stream_yields_rows_in_arrival_order(self):
        tasks = [(_echo_task, {"index": i, "value": -i}) for i in range(5)]
        job = scheduler.submit(tasks, jobs=2, block=False)
        rows = dict(job.stream(timeout=60))
        assert rows == {i: -i for i in range(5)}


@pytest.fixture(scope="module")
def mixed_batch():
    q = LineQubit.range(3)
    bell = Circuit([H(q[0]), CNOT(q[0], q[1])])
    rotated = [
        Circuit([H(q[0]), Rx(0.1 + 0.2 * k)(q[1]), CNOT(q[1], q[2])]) for k in range(4)
    ]
    noisy = bell.with_noise(lambda: depolarize(0.05))
    return [bell, noisy, *rotated, bell, noisy]


class TestDeviceJobLifecycle:
    def test_serial_parallel_and_async_runs_are_identical(self, mixed_batch):
        runs = {}
        for label, kwargs in {
            "serial": dict(jobs=1, block=True),
            "parallel": dict(jobs=2, block=True),
            "async": dict(jobs=2, block=False),
        }.items():
            job = device("auto", seed=11).run(
                mixed_batch, repetitions=40, seed=17, **kwargs
            )
            result = job.result(timeout=120)
            runs[label] = (result.backends(), result.counts())
        assert runs["serial"] == runs["parallel"] == runs["async"]

    def test_worker_exception_keeps_original_type_through_device(self, mixed_batch):
        noisy = mixed_batch[1]
        job = device("kc", seed=0).run(
            [noisy, noisy], repetitions=10, sampling="exact", jobs=2, block=False
        )
        with pytest.raises(BackendCapabilityError, match="exact sampling"):
            job.result(timeout=120)
        assert job.status() == scheduler.FAILED

    def test_device_job_cancellation(self, mixed_batch):
        # Enough repetitions that the single worker cannot drain the queue
        # before cancel() lands.
        job = device("auto", seed=3).run(
            mixed_batch * 6, repetitions=2000, seed=5, jobs=1, block=False
        )
        job.cancel()
        job.wait(timeout=120)
        assert job.status() == scheduler.CANCELLED
        with pytest.raises(JobCancelledError):
            job.result()
        assert len(job.partial_results()) < len(mixed_batch) * 6

    def test_streaming_partial_results(self, mixed_batch):
        job = device("auto", seed=1).run(
            mixed_batch, repetitions=10, seed=2, jobs=2, block=False
        )
        seen = sorted(index for index, _row in job.stream(timeout=120))
        assert seen == list(range(len(mixed_batch)))


class TestJobTimeouts:
    def test_wait_timeout_raises_job_timeout_error(self):
        tasks = [(_slow_task, {"index": 0, "value": 0, "sleep": 5.0})]
        job = scheduler.submit(tasks, jobs=1, block=False)
        try:
            with pytest.raises(JobTimeoutError):
                job.wait(timeout=0.1)
        finally:
            job.cancel()
            job.wait(timeout=60)

    def test_result_timeout_raises_job_timeout_error(self):
        tasks = [(_slow_task, {"index": 0, "value": 0, "sleep": 5.0})]
        job = scheduler.submit(tasks, jobs=1, block=False)
        try:
            with pytest.raises(JobTimeoutError):
                job.result(timeout=0.1)
        finally:
            job.cancel()
            job.wait(timeout=60)

    def test_job_timeout_error_is_timeout_error_compatible(self):
        # Callers catching the builtin TimeoutError keep working.
        tasks = [(_slow_task, {"index": 0, "value": 0, "sleep": 5.0})]
        job = scheduler.submit(tasks, jobs=1, block=False)
        try:
            with pytest.raises(TimeoutError):
                job.wait(timeout=0.1)
        finally:
            job.cancel()
            job.wait(timeout=60)

    def test_wait_returns_true_on_completion(self):
        job = scheduler.submit([(_echo_task, {"index": 0, "value": 7})])
        assert job.wait(timeout=1) is True
        assert job.wait() is True  # terminal jobs never block


class TestCancelRaces:
    def test_cancel_mid_item_keeps_completed_partials(self):
        # Fault-tolerant pooled engine: cancel while an item is mid-flight;
        # rows completed before the cancel stay reachable.
        tasks = [
            (_slow_task, {"index": i, "value": i, "sleep": 0.05 if i < 2 else 2.0}, (i,), f"item-{i}")
            for i in range(6)
        ]
        job = scheduler.submit(
            tasks, jobs=1, block=False, retry=scheduler.RetryPolicy(max_attempts=1)
        )
        deadline = time.time() + 30
        while len(job.partial_results()) < 2 and time.time() < deadline:
            time.sleep(0.02)
        assert job.cancel()
        job.wait(timeout=60)
        assert job.status() == scheduler.CANCELLED
        partial = job.partial_results()
        assert 2 <= len(partial) < len(tasks)
        assert partial[0] == 0 and partial[1] == 1
        with pytest.raises(JobCancelledError):
            job.result()

    def test_cancel_after_completion_is_noop(self):
        job = scheduler.submit([(_echo_task, {"index": 0, "value": 1})])
        assert job.status() == scheduler.DONE
        assert not job.cancel()
        assert job.status() == scheduler.DONE
        assert job.result() == [1]  # result still reachable after the no-op

    def test_double_cancel_is_idempotent(self):
        tasks = [(_slow_task, {"index": i, "value": i, "sleep": 0.5}) for i in range(4)]
        job = scheduler.submit(tasks, jobs=1, block=False)
        first = job.cancel()
        second = job.cancel()
        assert first
        assert not second
        job.wait(timeout=60)
        assert job.status() == scheduler.CANCELLED

    def test_cancel_during_retry_backoff_stops_promptly(self):
        # The inline resilient loop must observe the cancel while sleeping
        # out a retry delay instead of burning the full attempt budget.
        def _always_transient(payload):
            raise TransientError("never succeeds")

        policy = scheduler.RetryPolicy(
            max_attempts=50, backoff_base=0.2, backoff_factor=1.0, jitter=0.0
        )
        tasks = [(_always_transient, {"index": 0}, (0,), "item-0")]
        started = time.time()

        import threading

        job_holder = {}

        def _cancel_soon():
            deadline = time.time() + 10
            while "job" not in job_holder and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.3)
            job_holder["job"].cancel()

        canceller = threading.Thread(target=_cancel_soon)
        canceller.start()
        job = scheduler.submit(tasks, jobs=2, block=False, retry=policy)
        job_holder["job"] = job
        job.wait(timeout=60)
        canceller.join()
        assert job.status() == scheduler.CANCELLED
        assert time.time() - started < 30

    def test_cancelled_fault_tolerant_job_raises_cancelled_not_job_error(self):
        tasks = [
            (_slow_task, {"index": i, "value": i, "sleep": 1.0}, (i,), f"item-{i}")
            for i in range(4)
        ]
        job = scheduler.submit(
            tasks, jobs=1, block=False, retry=scheduler.RetryPolicy(max_attempts=2)
        )
        job.cancel()
        job.wait(timeout=60)
        with pytest.raises(JobCancelledError):
            job.result()
