"""Compiled-circuit cache correctness: topology keys, disk round trips,
parameter rebinding and parallel-harness determinism."""

import os

import numpy as np
import pytest

from repro.circuits import Circuit, LineQubit, ParamResolver, Symbol
from repro.circuits.gates import CNOT, H, Rx, Ry, Rz, X, ZZ
from repro.circuits.noise import depolarize, phase_damp
from repro.circuits.topology import canonicalize_circuit, circuit_topology_key
from repro.experiments import runner
from repro.knowledge.cache import CompiledCircuitCache
from repro.simulator.kc_simulator import KnowledgeCompilationSimulator
from repro.simulator.sweep import ParameterSweep, resolver_grid, resolver_zip
from repro.statevector import StateVectorSimulator


def _ansatz_circuit(symbols=True, values=(0.37, 1.1)):
    """A small QAOA-style circuit, symbolic or resolved at ``values``."""
    q = LineQubit.range(3)
    g, b = Symbol("g"), Symbol("b")
    circuit = Circuit(
        [H(x) for x in q]
        + [ZZ(2 * g)(q[0], q[1]), ZZ(2 * g)(q[1], q[2])]
        + [Rx(2 * b)(x) for x in q]
    )
    if symbols:
        return circuit
    return circuit.resolve_parameters(ParamResolver({"g": values[0], "b": values[1]}))


class TestTopologyKeys:
    def test_same_topology_different_values_share_key(self):
        key_a = circuit_topology_key(_ansatz_circuit(symbols=False, values=(0.37, 1.1)))
        key_b = circuit_topology_key(_ansatz_circuit(symbols=False, values=(0.9, 0.4)))
        assert key_a == key_b

    def test_symbolic_and_resolved_share_key(self):
        assert circuit_topology_key(_ansatz_circuit(symbols=True)) == circuit_topology_key(
            _ansatz_circuit(symbols=False)
        )

    def test_symbol_names_do_not_matter(self):
        q = LineQubit.range(2)
        a = Circuit([H(q[0]), ZZ(2 * Symbol("alpha"))(q[0], q[1])])
        b = Circuit([H(q[0]), ZZ(2 * Symbol("beta"))(q[0], q[1])])
        assert circuit_topology_key(a) == circuit_topology_key(b)

    def test_different_wiring_changes_key(self):
        q = LineQubit.range(3)
        a = Circuit([H(q[0]), CNOT(q[0], q[1]), CNOT(q[1], q[2])])
        b = Circuit([H(q[0]), CNOT(q[0], q[1]), CNOT(q[0], q[2])])
        assert circuit_topology_key(a) != circuit_topology_key(b)

    def test_different_gate_class_changes_key(self):
        q = LineQubit.range(1)
        assert circuit_topology_key(Circuit([Rx(0.7)(q[0])])) != circuit_topology_key(
            Circuit([Ry(0.7)(q[0])])
        )

    def test_initial_bits_change_key(self):
        q = LineQubit.range(2)
        circuit = Circuit([H(q[0]), CNOT(q[0], q[1])])
        assert circuit_topology_key(circuit) != circuit_topology_key(circuit, initial_bits=[1, 0])

    def test_noise_strength_changes_key(self):
        # Noise values are baked into the compiled weights (not lifted), so
        # different strengths must not share a compile.
        q = LineQubit.range(2)
        base = Circuit([H(q[0]), CNOT(q[0], q[1])])
        a = base.with_noise(lambda: depolarize(0.005))
        b = base.with_noise(lambda: depolarize(0.01))
        assert circuit_topology_key(a) != circuit_topology_key(b)
        assert circuit_topology_key(a) == circuit_topology_key(
            base.with_noise(lambda: depolarize(0.005))
        )

    def test_degenerate_angle_not_lifted(self):
        # Ry(0) is the identity: compiled concretely it forces the idle bit,
        # so it must neither be lifted nor share a key with a generic angle.
        q = LineQubit.range(1)
        degenerate = canonicalize_circuit(Circuit([Ry(0.0)(q[0])]))
        generic = canonicalize_circuit(Circuit([Ry(0.7)(q[0])]))
        assert not degenerate.bindings
        assert len(generic.bindings) == 1
        assert degenerate.topology_key != generic.topology_key

    def test_generic_monomial_angle_is_lifted(self):
        q = LineQubit.range(1)
        assert circuit_topology_key(Circuit([Rz(0.3)(q[0])])) == circuit_topology_key(
            Circuit([Rz(1.9)(q[0])])
        )

    def test_canonical_bind_translates_expressions(self):
        canonical = canonicalize_circuit(_ansatz_circuit(symbols=True))
        assert canonical.is_rewritten
        bound = canonical.bind(ParamResolver({"g": 0.5, "b": 0.25}))
        values = bound.as_dict()
        # ZZ angles are 2*g, Rx angles are 2*b; canonical slots in order.
        assert [values[name] for name, _ in canonical.bindings] == [1.0, 1.0, 0.5, 0.5, 0.5]
        # The caller's own symbols pass through for non-rewritten uses.
        assert values["g"] == 0.5 and values["b"] == 0.25
        with pytest.raises(ValueError):
            canonical.bind(None)  # symbolic originals need a resolver

    def test_canonical_bind_concrete_needs_no_resolver(self):
        canonical = canonicalize_circuit(_ansatz_circuit(symbols=False, values=(0.3, 0.4)))
        bound = canonical.bind(None)
        assert len(bound.as_dict()) == len(canonical.bindings)
        unrewritten = canonicalize_circuit(Circuit([H(q) for q in LineQubit.range(2)]))
        assert not unrewritten.is_rewritten
        assert unrewritten.bind(None) is None


class TestCacheRebinding:
    def test_cache_hit_rebinding_matches_fresh_compile(self):
        cache = CompiledCircuitCache()
        cached_sim = KnowledgeCompilationSimulator(seed=0, cache=cache)
        fresh_sim = KnowledgeCompilationSimulator(seed=0, cache=None)

        first = _ansatz_circuit(symbols=False, values=(0.37, 1.1))
        second = _ansatz_circuit(symbols=False, values=(0.9, 0.4))
        cached_sim.compile_circuit(first)
        assert cache.stats.stores == 1

        compiled_second = cached_sim.compile_circuit(second)
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1  # no recompilation

        expected = fresh_sim.compile_circuit(second).probabilities()
        assert np.max(np.abs(compiled_second.probabilities() - expected)) < 1e-12
        reference = np.abs(StateVectorSimulator().simulate(second).state_vector) ** 2
        assert np.max(np.abs(compiled_second.probabilities() - reference)) < 1e-10

    def test_symbolic_resolver_on_cached_template(self):
        cache = CompiledCircuitCache()
        simulator = KnowledgeCompilationSimulator(seed=0, cache=cache)
        # Prime the cache with a resolved instance, then query symbolically.
        simulator.compile_circuit(_ansatz_circuit(symbols=False))
        symbolic = simulator.compile_circuit(_ansatz_circuit(symbols=True))
        assert cache.stats.memory_hits == 1
        resolver = ParamResolver({"g": 0.61, "b": 0.23})
        reference = (
            np.abs(
                StateVectorSimulator()
                .simulate(_ansatz_circuit(symbols=True).resolve_parameters(resolver))
                .state_vector
            )
            ** 2
        )
        assert np.max(np.abs(symbolic.probabilities(resolver) - reference)) < 1e-10

    def test_different_topology_misses(self):
        cache = CompiledCircuitCache()
        simulator = KnowledgeCompilationSimulator(seed=0, cache=cache)
        q = LineQubit.range(2)
        simulator.compile_circuit(Circuit([H(q[0]), CNOT(q[0], q[1])]))
        simulator.compile_circuit(Circuit([H(q[0]), CNOT(q[0], q[1]), X(q[0])]))
        assert cache.stats.memory_hits == 0
        assert cache.stats.stores == 2

    def test_order_method_and_elision_partition_the_cache(self):
        cache = CompiledCircuitCache()
        circuit = _ansatz_circuit(symbols=False)
        KnowledgeCompilationSimulator(order_method="hypergraph", cache=cache).compile_circuit(circuit)
        KnowledgeCompilationSimulator(order_method="min_fill", cache=cache).compile_circuit(circuit)
        simulator = KnowledgeCompilationSimulator(order_method="hypergraph", cache=cache)
        simulator.compile_circuit(circuit, elide_internal=False)
        assert cache.stats.stores == 3
        assert cache.stats.memory_hits == 0

    def test_sampling_through_cached_view(self):
        cache = CompiledCircuitCache()
        simulator = KnowledgeCompilationSimulator(seed=3, cache=cache)
        simulator.compile_circuit(_ansatz_circuit(symbols=False, values=(0.3, 0.8)))
        second = _ansatz_circuit(symbols=False, values=(0.7, 0.2))
        compiled = simulator.compile_circuit(second)
        counts = simulator.sample(compiled, 400, seed=9).bitstring_counts()
        assert sum(counts.values()) == 400
        probabilities = np.abs(StateVectorSimulator().simulate(second).state_vector) ** 2
        empirical = np.zeros(8)
        for bits, count in counts.items():
            empirical[int(bits, 2)] = count / 400.0
        assert np.abs(empirical - probabilities).sum() < 0.35  # loose TVD sanity bound


class TestDiskCache:
    def test_round_trip_equality(self, tmp_path):
        q = LineQubit.range(3)
        g, b = Symbol("g"), Symbol("b")
        circuit = Circuit(
            [H(x) for x in q] + [ZZ(2 * g)(q[0], q[1]), Rx(b)(q[2])]
        ).with_noise(lambda: phase_damp(0.2))
        resolver = ParamResolver({"g": 0.44, "b": 1.3})

        first_cache = CompiledCircuitCache(directory=str(tmp_path))
        first = KnowledgeCompilationSimulator(seed=1, cache=first_cache).compile_circuit(circuit)
        expected = first.probabilities(resolver)
        assert any(name.endswith(".pkl") for name in os.listdir(tmp_path))

        # A fresh cache over the same directory models a new process.
        second_cache = CompiledCircuitCache(directory=str(tmp_path))
        second = KnowledgeCompilationSimulator(seed=1, cache=second_cache).compile_circuit(circuit)
        assert second_cache.stats.disk_hits == 1
        assert np.max(np.abs(second.probabilities(resolver) - expected)) < 1e-12
        assert np.max(np.abs(second.density_matrix(resolver) - first.density_matrix(resolver))) < 1e-12

    def test_corrupt_payload_degrades_to_recompile(self, tmp_path):
        circuit = _ansatz_circuit(symbols=False)
        cache = CompiledCircuitCache(directory=str(tmp_path))
        simulator = KnowledgeCompilationSimulator(cache=cache)
        key = simulator.cache_key_for(circuit)
        simulator.compile_circuit(circuit)
        path = tmp_path / f"{key}.pkl"
        assert path.exists()
        path.write_bytes(b"not a pickle")

        fresh_cache = CompiledCircuitCache(directory=str(tmp_path))
        compiled = KnowledgeCompilationSimulator(cache=fresh_cache).compile_circuit(circuit)
        assert fresh_cache.stats.disk_hits == 0
        reference = np.abs(StateVectorSimulator().simulate(circuit).state_vector) ** 2
        assert np.max(np.abs(compiled.probabilities() - reference)) < 1e-10

    def test_lru_eviction_keeps_bound(self):
        cache = CompiledCircuitCache(max_entries=2)
        simulator = KnowledgeCompilationSimulator(cache=cache)
        q = LineQubit.range(1)
        for depth in range(1, 5):
            simulator.compile_circuit(Circuit([H(q[0])] * depth))
        assert len(cache) == 2

    def test_unpicklable_payload_never_leaks_temp_files(self, tmp_path):
        # A payload pickling failure must degrade to "not cached" — no
        # exception, no orphaned .tmp file, no torn destination file.
        cache = CompiledCircuitCache(directory=str(tmp_path))
        cache.store_payload("bad-key", {"value": lambda: None})
        leftovers = os.listdir(tmp_path)
        assert leftovers == []
        assert cache.load_payload("bad-key") is None

    def test_failed_write_preserves_previous_payload(self, tmp_path):
        cache = CompiledCircuitCache(directory=str(tmp_path))
        cache.store_payload("key", {"value": 1})
        cache.store_payload("key", {"value": lambda: None})  # fails to pickle
        payload = cache.load_payload("key")
        assert payload is not None and payload["value"] == 1

    def test_concurrent_writers_never_produce_torn_reads(self, tmp_path):
        # Many threads hammering the same key: every read observes a complete
        # payload (os.replace publication), never a partial pickle.
        import threading

        cache = CompiledCircuitCache(directory=str(tmp_path))
        blob = {"data": list(range(5000))}
        errors = []

        def writer(worker):
            for iteration in range(20):
                cache.store_payload("shared", dict(blob, worker=worker, i=iteration))

        def reader():
            for _ in range(200):
                payload = cache.load_payload("shared")
                if payload is not None and payload["data"] != blob["data"]:
                    errors.append("torn read")

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        final = cache.load_payload("shared")
        assert final is not None and final["data"] == blob["data"]
        assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]


class TestSweepEngine:
    def test_resolver_helpers(self):
        zipped = resolver_zip({"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert [r.as_dict() for r in zipped] == [{"a": 0.1, "b": 0.3}, {"a": 0.2, "b": 0.4}]
        grid = resolver_grid({"a": [0.1, 0.2], "b": [0.3]})
        assert len(grid) == 2
        with pytest.raises(ValueError):
            resolver_zip({"a": [0.1], "b": [0.3, 0.4]})

    def test_sweep_matches_per_point_state_vectors(self):
        circuit = _ansatz_circuit(symbols=True)
        sweep = ParameterSweep(circuit, KnowledgeCompilationSimulator(seed=2, cache=CompiledCircuitCache()))
        points = resolver_zip({"g": np.linspace(0.1, 1.0, 5), "b": np.linspace(0.9, 0.2, 5)})
        result = sweep.run(points, observables=["probabilities", "state_vector"])
        for row, resolver in zip(result, points):
            resolved = circuit.resolve_parameters(resolver)
            reference = StateVectorSimulator().simulate(resolved).state_vector
            assert np.max(np.abs(row["state_vector"] - reference)) < 1e-10
            assert np.max(np.abs(row["probabilities"] - np.abs(reference) ** 2)) < 1e-10

    def test_parallel_sweep_is_deterministic(self):
        sweep = ParameterSweep(
            _ansatz_circuit(symbols=True),
            KnowledgeCompilationSimulator(seed=5, cache=CompiledCircuitCache()),
        )
        points = resolver_zip({"g": np.linspace(0.2, 1.1, 6), "b": np.linspace(0.1, 0.8, 6)})
        serial = sweep.run(points, observables=["probabilities"], repetitions=40, seed=17)
        parallel = sweep.run(points, observables=["probabilities"], repetitions=40, seed=17, jobs=2)
        assert np.array_equal(serial.probabilities(), parallel.probabilities())
        assert serial.counts() == parallel.counts()

    def test_invalid_arguments(self):
        sweep = ParameterSweep(
            _ansatz_circuit(symbols=True),
            KnowledgeCompilationSimulator(cache=CompiledCircuitCache()),
        )
        with pytest.raises(ValueError):
            sweep.run([None], observables=["entanglement"])
        with pytest.raises(ValueError):
            sweep.run([None], observables=["expectation"])
        with pytest.raises(ValueError):
            sweep.run([None], observables=["samples"])
        with pytest.raises(ValueError, match="dispatch"):
            ParameterSweep(
                _ansatz_circuit(symbols=True),
                KnowledgeCompilationSimulator(cache=CompiledCircuitCache()),
                dispatch="always",
            )


class TestSweepCliffordDispatch:
    """dispatch="auto": Clifford points run on the tableau, compile is lazy."""

    def _sweep(self):
        return ParameterSweep(
            _ansatz_circuit(symbols=True),
            KnowledgeCompilationSimulator(seed=2, cache=CompiledCircuitCache()),
            dispatch="auto",
        )

    def test_mixed_grid_matches_dense_reference(self):
        sweep = self._sweep()
        assert not sweep.has_compiled
        points = resolver_zip(
            {"g": [0.0, np.pi / 2, 0.37, np.pi], "b": [np.pi / 2, 0.0, 0.81, np.pi / 2]}
        )
        result = sweep.run(points, observables=["probabilities"])
        assert sweep.has_compiled  # the generic point forced exactly one compile
        backends = [row.get("backend", "kc") for row in result]
        assert backends == ["stabilizer", "stabilizer", "kc", "stabilizer"]
        circuit = _ansatz_circuit(symbols=True)
        for row, resolver in zip(result, points):
            resolved = circuit.resolve_parameters(resolver)
            reference = StateVectorSimulator().simulate(resolved).probabilities()
            assert np.max(np.abs(row["probabilities"] - reference)) < 1e-9

    def test_all_clifford_sweep_never_compiles(self):
        sweep = self._sweep()
        points = resolver_zip({"g": [0.0, np.pi], "b": [np.pi / 2, 3 * np.pi / 2]})
        result = sweep.run(points, observables=["probabilities"], repetitions=20, seed=3)
        assert not sweep.has_compiled
        assert all(row["backend"] == "stabilizer" for row in result)

    def test_parallel_auto_dispatch_matches_serial(self):
        points = resolver_zip(
            {"g": [0.0, 0.4, np.pi / 2, 1.1], "b": [np.pi, 0.3, 0.0, 0.9]}
        )
        serial = self._sweep().run(points, observables=["probabilities"], repetitions=30, seed=11)
        parallel = self._sweep().run(
            points, observables=["probabilities"], repetitions=30, seed=11, jobs=2
        )
        assert np.array_equal(serial.probabilities(), parallel.probabilities())
        assert serial.counts() == parallel.counts()
        assert [row.get("backend", "kc") for row in serial] == [
            row.get("backend", "kc") for row in parallel
        ]


def _strip_timings(results):
    """Experiment rows minus wall-clock columns (compare values, not speed)."""
    stripped = []
    for result in results:
        stripped.append(
            (
                result.name,
                [
                    {key: value for key, value in row.items() if "seconds" not in key}
                    for row in result.rows
                ],
            )
        )
    return stripped


class TestRunnerDeterminism:
    def test_parallel_runner_fixed_seeds(self, tmp_path):
        specs = runner.build_specs(quick=True, only=["bell_example", "figure1"])
        assert len(specs) == 2
        first = runner.run_specs(specs, jobs=2, cache_dir=str(tmp_path / "a"))
        second = runner.run_specs(specs, jobs=2, cache_dir=str(tmp_path / "b"))
        serial = runner.run_specs(specs, jobs=1)
        assert _strip_timings(first) == _strip_timings(second) == _strip_timings(serial)

    def test_build_specs_filters_and_rejects_typos(self):
        names = [spec.name for spec in runner.build_specs(quick=True)]
        assert "bell_example" in names and "ablation_orderings" in names
        with pytest.raises(ValueError):
            runner.build_specs(only=["no_such_experiment"])
